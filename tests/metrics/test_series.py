"""Unit tests for TimeSeries."""

import pytest

from repro.metrics.series import TimeSeries


class TestAppend:
    def test_append_and_access(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.times == [0.0, 1.0]
        assert series.values == [1.0, 2.0]
        assert series.points() == [(0.0, 1.0), (1.0, 2.0)]
        assert len(series) == 2
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_time_must_not_go_backwards(self):
        series = TimeSeries("s")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.append(4.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2


class TestAccessors:
    def make(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]:
            series.append(t, v)
        return series

    def test_last(self):
        assert TimeSeries("s").last is None
        assert self.make().last == 40.0

    def test_value_at_step_interpolation(self):
        series = self.make()
        assert series.value_at(-1.0) is None
        assert series.value_at(0.0) == 10.0
        assert series.value_at(15.0) == 20.0
        assert series.value_at(100.0) == 40.0

    def test_window(self):
        series = self.make()
        assert series.window(5.0, 25.0) == [(10.0, 20.0), (20.0, 30.0)]
        with pytest.raises(ValueError, match="empty window"):
            series.window(10.0, 5.0)

    def test_mean(self):
        series = self.make()
        assert series.mean() == 25.0
        assert series.mean(10.0, 20.0) == 25.0

    def test_mean_empty(self):
        assert TimeSeries("s").mean() == 0.0

    def test_tail_mean(self):
        series = self.make()
        assert series.tail_mean(0.5) == 35.0  # last two samples
        assert series.tail_mean(1.0) == 25.0
        # fraction so small it keeps at least one sample
        assert series.tail_mean(0.01) == 40.0

    def test_tail_mean_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            self.make().tail_mean(0.0)

    def test_tail_mean_empty(self):
        assert TimeSeries("s").tail_mean() == 0.0

    def test_defensive_copies(self):
        series = self.make()
        series.times.append(99.0)
        assert len(series.times) == 4


class TestP2Quantile:
    def test_validation(self):
        from repro.metrics.series import P2Quantile

        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(1.0)

    def test_empty(self):
        from repro.metrics.series import P2Quantile

        accumulator = P2Quantile(0.5)
        assert accumulator.value() is None
        assert len(accumulator) == 0

    def test_exact_below_six_samples(self):
        from repro.metrics.series import P2Quantile

        numpy = pytest.importorskip("numpy")
        data = [5.0, 1.0, 4.0, 2.0, 3.0]
        for n in range(1, 6):
            for q in (0.5, 0.95, 0.99):
                accumulator = P2Quantile(q)
                for x in data[:n]:
                    accumulator.add(x)
                expected = float(numpy.percentile(data[:n], q * 100))
                assert accumulator.value() == pytest.approx(expected), (n, q)

    def test_tracks_numpy_on_large_streams(self):
        import random

        from repro.metrics.series import P2Quantile

        numpy = pytest.importorskip("numpy")
        rng = random.Random(7)
        for q, tolerance in ((0.5, 0.05), (0.95, 0.05), (0.99, 0.10)):
            samples = [rng.expovariate(1.0) for _ in range(20000)]
            accumulator = P2Quantile(q)
            for x in samples:
                accumulator.add(x)
            expected = float(numpy.percentile(samples, q * 100))
            # P^2 is an estimate: relative error within a few percent
            assert abs(accumulator.value() - expected) <= tolerance * expected

    def test_monotone_in_q(self):
        import random

        from repro.metrics.series import P2Quantile

        rng = random.Random(11)
        samples = [rng.lognormvariate(0.0, 1.0) for _ in range(5000)]
        p50, p95, p99 = P2Quantile(0.5), P2Quantile(0.95), P2Quantile(0.99)
        for x in samples:
            p50.add(x)
            p95.add(x)
            p99.add(x)
        assert p50.value() <= p95.value() <= p99.value()

    def test_extremes_stretch_markers(self):
        from repro.metrics.series import P2Quantile

        accumulator = P2Quantile(0.5)
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, -100.0, 100.0]:
            accumulator.add(x)
        assert -100.0 <= accumulator.value() <= 100.0


class TestQuantileSet:
    def test_snapshot_keys(self):
        from repro.metrics.series import QuantileSet

        quantiles = QuantileSet("rt")
        assert quantiles.snapshot() == {
            "count": 0, "mean": None, "min": None, "max": None,
            "p50": None, "p95": None, "p99": None,
        }
        for x in (3.0, 1.0, 2.0):
            quantiles.add(x)
        snap = quantiles.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(2.0)
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["p50"] == pytest.approx(2.0)

    def test_quantile_lookup(self):
        from repro.metrics.series import QuantileSet

        quantiles = QuantileSet("rt", quantiles=(0.5,))
        quantiles.add(1.0)
        assert quantiles.quantile(0.5) == 1.0
        with pytest.raises(KeyError):
            quantiles.quantile(0.95)

    def test_needs_a_quantile(self):
        from repro.metrics.series import QuantileSet

        with pytest.raises(ValueError, match="at least one"):
            QuantileSet("rt", quantiles=())

    def test_fractional_quantile_key(self):
        from repro.metrics.series import QuantileSet

        quantiles = QuantileSet("rt", quantiles=(0.999,))
        quantiles.add(1.0)
        assert "p99_9" in quantiles.snapshot()
