"""Unit tests for TimeSeries."""

import pytest

from repro.metrics.series import TimeSeries


class TestAppend:
    def test_append_and_access(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert series.times == [0.0, 1.0]
        assert series.values == [1.0, 2.0]
        assert series.points() == [(0.0, 1.0), (1.0, 2.0)]
        assert len(series) == 2
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_time_must_not_go_backwards(self):
        series = TimeSeries("s")
        series.append(5.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.append(4.0, 1.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("s")
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2


class TestAccessors:
    def make(self):
        series = TimeSeries("s")
        for t, v in [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]:
            series.append(t, v)
        return series

    def test_last(self):
        assert TimeSeries("s").last is None
        assert self.make().last == 40.0

    def test_value_at_step_interpolation(self):
        series = self.make()
        assert series.value_at(-1.0) is None
        assert series.value_at(0.0) == 10.0
        assert series.value_at(15.0) == 20.0
        assert series.value_at(100.0) == 40.0

    def test_window(self):
        series = self.make()
        assert series.window(5.0, 25.0) == [(10.0, 20.0), (20.0, 30.0)]
        with pytest.raises(ValueError, match="empty window"):
            series.window(10.0, 5.0)

    def test_mean(self):
        series = self.make()
        assert series.mean() == 25.0
        assert series.mean(10.0, 20.0) == 25.0

    def test_mean_empty(self):
        assert TimeSeries("s").mean() == 0.0

    def test_tail_mean(self):
        series = self.make()
        assert series.tail_mean(0.5) == 35.0  # last two samples
        assert series.tail_mean(1.0) == 25.0
        # fraction so small it keeps at least one sample
        assert series.tail_mean(0.01) == 40.0

    def test_tail_mean_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            self.make().tail_mean(0.0)

    def test_tail_mean_empty(self):
        assert TimeSeries("s").tail_mean() == 0.0

    def test_defensive_copies(self):
        series = self.make()
        series.times.append(99.0)
        assert len(series.times) == 4
