"""Unit tests for RunSummary assembly."""

import pytest

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.mediator import Mediator
from repro.metrics.collectors import MetricsHub
from repro.metrics.summary import build_summary


def run_tiny_system(factory, sim, n_queries=3, fail_after=None):
    """Drive a tiny mediated system and return its pieces."""
    providers = [factory.provider(f"p{i}") for i in range(2)]
    consumer = factory.consumer("c0")
    hub = MetricsHub()
    mediator = Mediator(
        factory.sim, factory.network, factory.registry, CapacityBasedPolicy(),
        observer=hub,
    )
    consumer.attach_mediator(mediator)
    consumer.on_completion(hub.record_completion)
    hub.start_sampling(sim, factory.registry, interval=5.0)
    for i in range(n_queries):
        sim.schedule_at(float(i), lambda: consumer.issue("c0", service_demand=2.0))
    sim.run_until(50.0)
    return providers, consumer, hub, mediator


class TestBuildSummary:
    def test_core_fields(self, factory, sim, network):
        providers, consumer, hub, mediator = run_tiny_system(factory, sim)
        summary = build_summary("capacity", 50.0, hub, factory.registry, mediator, network)
        assert summary.policy == "capacity"
        assert summary.duration == 50.0
        assert summary.queries_issued == 3
        assert summary.queries_completed == 3
        assert summary.queries_failed == 0
        assert summary.mean_response_time > 0
        assert summary.throughput == pytest.approx(3 / 50.0)
        assert summary.providers_total == 2
        assert summary.providers_remaining == 2
        assert summary.capacity_remaining_fraction == 1.0
        assert summary.network_messages == network.messages_sent

    def test_per_consumer_breakdown(self, factory, sim, network):
        providers, consumer, hub, mediator = run_tiny_system(factory, sim)
        summary = build_summary("capacity", 50.0, hub, factory.registry, mediator, network)
        assert len(summary.consumers) == 1
        row = summary.consumers[0]
        assert row.consumer_id == "c0"
        assert row.issued == 3
        assert row.completed == 3
        assert row.online

    def test_remaining_fraction_property(self, factory, sim, network):
        providers, consumer, hub, mediator = run_tiny_system(factory, sim)
        providers[0].leave()
        summary = build_summary("capacity", 50.0, hub, factory.registry, mediator, network)
        assert summary.providers_remaining == 1
        assert summary.providers_remaining_fraction == 0.5
        assert summary.capacity_remaining_fraction == 0.5

    def test_as_dict_is_flat_and_complete(self, factory, sim, network):
        providers, consumer, hub, mediator = run_tiny_system(factory, sim)
        summary = build_summary("capacity", 50.0, hub, factory.registry, mediator, network)
        flat = summary.as_dict()
        assert flat["policy"] == "capacity"
        assert "mean_rt" in flat
        assert "provider_sat_final" in flat
        assert all(not isinstance(v, (list, dict)) for v in flat.values())

    def test_zero_duration_throughput(self, factory, sim, network):
        hub = MetricsHub()
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        summary = build_summary("x", 0.0, hub, factory.registry, mediator, network)
        assert summary.throughput == 0.0

    def test_empty_population_fractions(self, factory, sim, network):
        hub = MetricsHub()
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        summary = build_summary("x", 10.0, hub, factory.registry, mediator, network)
        assert summary.providers_remaining_fraction == 0.0
        assert summary.capacity_remaining_fraction == 0.0
