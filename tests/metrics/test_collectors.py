"""Unit tests for the metrics hub."""

import pytest

from repro.metrics.collectors import MetricsHub
from repro.system.autonomy import Departure
from repro.system.query import AllocationRecord, QueryResult


def success_record(factory, consumer=None, provider=None, rt=10.0):
    consumer = consumer or factory.consumer()
    provider = provider or factory.provider()
    query = factory.query(consumer)
    record = AllocationRecord(query=query, decided_at=0.0, allocated=[provider])
    record.record_result(
        QueryResult(query=query, provider_id=provider.participant_id,
                    started_at=0.0, finished_at=rt)
    )
    return record


class TestEventRecords:
    def test_mediation_counters(self, factory):
        hub = MetricsHub()
        consumer = factory.consumer("c0")
        provider = factory.provider()
        ok = AllocationRecord(
            query=factory.query(consumer), decided_at=0.0, allocated=[provider]
        )
        fail = AllocationRecord(query=factory.query(consumer), decided_at=0.0)
        hub.record_mediation(ok)
        hub.record_mediation(fail)
        assert hub.queries_issued == 2
        assert hub.queries_allocated == 1
        assert hub.queries_failed == 1
        assert hub.failure_rate == 0.5
        assert hub.issued_by_consumer == {"c0": 2}
        assert hub.failed_by_consumer == {"c0": 1}

    def test_failure_rate_empty(self):
        assert MetricsHub().failure_rate == 0.0

    def test_completion_records_response_time(self, factory):
        hub = MetricsHub()
        record = success_record(factory, rt=12.0)
        hub.record_completion(record)
        assert hub.queries_completed == 1
        assert hub.response_times == [12.0]
        assert list(hub.response_times_by_consumer.values()) == [[12.0]]

    def test_completion_of_incomplete_record_rejected(self, factory):
        hub = MetricsHub()
        consumer = factory.consumer()
        record = AllocationRecord(
            query=factory.query(consumer), decided_at=0.0,
            allocated=[factory.provider()],
        )
        with pytest.raises(ValueError, match="incomplete"):
            hub.record_completion(record)

    def test_departures(self):
        hub = MetricsHub()
        hub.record_departure(Departure(10.0, "p1", "provider", 0.2))
        hub.record_departure(Departure(20.0, "c1", "consumer", 0.4))
        hub.record_departure(Departure(30.0, "p2", "provider", 0.1))
        assert hub.departures_by_kind() == {"provider": 2, "consumer": 1}


class TestSampling:
    def test_sample_once_populates_series(self, factory):
        hub = MetricsHub()
        provider = factory.provider()
        consumer = factory.consumer()
        hub.sample_once(0.0, factory.registry)
        assert hub.provider_satisfaction.last == 0.5  # neutral
        assert hub.providers_online.last == 1.0
        assert hub.consumers_online.last == 1.0
        assert hub.total_capacity.last == 1.0

    def test_periodic_sampling_via_simulator(self, factory, sim):
        hub = MetricsHub()
        factory.provider()
        hub.start_sampling(sim, factory.registry, interval=10.0)
        sim.run_until(35.0)
        # samples at t = 0, 10, 20, 30
        assert len(hub.provider_satisfaction) == 4

    def test_throughput_counts_window_completions(self, factory, sim):
        hub = MetricsHub()
        factory.provider("px")
        hub.start_sampling(sim, factory.registry, interval=10.0)
        record = success_record(factory)
        sim.schedule_at(5.0, lambda: hub.record_completion(record))
        sim.run_until(20.0)
        # window (0, 10] saw one completion -> 0.1 q/s
        assert hub.throughput.points()[1] == (10.0, 0.1)
        assert hub.throughput.points()[2] == (20.0, 0.0)

    def test_interval_validation(self, factory, sim):
        hub = MetricsHub()
        with pytest.raises(ValueError, match="interval"):
            hub.start_sampling(sim, factory.registry, interval=0.0)

    def test_offline_participants_excluded_from_means(self, factory):
        hub = MetricsHub()
        happy = factory.provider("happy")
        happy.record_proposal(1.0, performed=True)
        sad = factory.provider("sad")
        sad.record_proposal(-1.0, performed=True)
        sad.leave()
        hub.sample_once(0.0, factory.registry)
        assert hub.provider_satisfaction.last == 1.0  # only 'happy' online

    def test_utilization_statistics(self, factory):
        from repro.system.query import AllocationRecord as AR

        hub = MetricsHub()
        busy = factory.provider("busy", saturation_horizon=10.0)
        idle = factory.provider("idle", saturation_horizon=10.0)
        consumer = factory.consumer()
        query = factory.query(consumer, demand=10.0)
        busy.execute(AR(query=query, decided_at=0.0, allocated=[busy]))
        hub.sample_once(0.0, factory.registry)
        assert hub.utilization_mean.last == pytest.approx(0.5)
        assert hub.utilization_gini.last == pytest.approx(0.5)


class TestGroups:
    def test_group_registration_and_sampling(self, factory):
        hub = MetricsHub()
        a = factory.provider("a")
        a.record_proposal(1.0, performed=True)
        b = factory.provider("b")
        hub.register_group("g", "provider", ["a"])
        hub.sample_once(0.0, factory.registry)
        assert hub.group_satisfaction["g"].last == 1.0

    def test_consumer_groups(self, factory):
        hub = MetricsHub()
        consumer = factory.consumer("c0")
        consumer.record_query_satisfaction(0.9)
        hub.register_group("proj", "consumer", ["c0"])
        hub.sample_once(0.0, factory.registry)
        assert hub.group_satisfaction["proj"].last == pytest.approx(0.9)

    def test_offline_members_still_sampled(self, factory):
        """Scenario 2 analysis needs departed members' satisfaction."""
        hub = MetricsHub()
        provider = factory.provider("a")
        provider.record_proposal(-1.0, performed=True)
        provider.leave()
        hub.register_group("g", "provider", ["a"])
        hub.sample_once(0.0, factory.registry)
        assert hub.group_satisfaction["g"].last == 0.0

    def test_group_validation(self):
        hub = MetricsHub()
        with pytest.raises(ValueError, match="kind"):
            hub.register_group("g", "robot", ["x"])
        hub.register_group("g", "provider", ["x"])
        with pytest.raises(ValueError, match="duplicate group"):
            hub.register_group("g", "provider", ["y"])

    def test_series_map_includes_groups(self, factory):
        hub = MetricsHub()
        factory.provider("a")
        hub.register_group("g", "provider", ["a"])
        hub.sample_once(0.0, factory.registry)
        assert "group:g" in hub.series_map()
        assert "provider_satisfaction" in hub.series_map()
