"""Cross-shard forwarding behaviour: trigger, cost, merge order."""

import pytest

from repro.federation import FederationConfig
from repro.perf.hotpath import build_mediation_system
from repro.system.query import Query


def _query(consumer, n_results=2):
    return Query(
        consumer=consumer,
        topic="c0",
        service_demand=10.0,
        n_results=n_results,
        issued_at=0.0,
    )


def _facade(n_providers, shards, **kwargs):
    sim, mediator, consumer = build_mediation_system(
        "fast", n_providers=n_providers, shards=shards, **kwargs
    )
    return sim, mediator, consumer


class TestForwardingTrigger:
    def test_thin_home_pool_forwards(self):
        # 12 providers over 4 shards leaves every home pool far below
        # kn=10, so every mediation consults the peer shards.
        sim, mediator, consumer = _facade(12, 4)
        federation = mediator.federation
        home = federation.route("c0").shard_ordinal
        merged, peers = federation.merged_candidates(home, "c0")
        assert peers  # at least one contributing peer
        before = mediator.coordination_messages
        n = 20
        for _ in range(n):
            mediator.mediate(_query(consumer))
        sim.run()
        extra = mediator.coordination_messages - before
        # Baseline consultation messages + one request/reply pair per
        # contributing peer per forwarded mediation.
        assert extra >= 2 * len(peers) * n
        assert mediator.mediations == n
        assert mediator.failures == 0

    def test_rich_home_pool_never_forwards(self):
        sim, mediator, consumer = _facade(120, 2)
        federation = mediator.federation
        calls = []
        original = federation.merged_candidates
        federation.merged_candidates = lambda *a: calls.append(a) or original(*a)
        for _ in range(10):
            mediator.mediate(_query(consumer))
        sim.run()
        # ~60 capable providers per shard >= kn=10: the gate never opens.
        assert calls == []
        assert mediator.mediations == 10

    def test_k1_forwarding_inactive(self):
        from repro.federation import Federation, ShardMap

        config = FederationConfig(shards=1)
        federation = Federation(config, ShardMap(config))
        assert federation.forwarding_active is False


class TestForwardThreshold:
    def test_configured_threshold_wins(self):
        sim, mediator, _ = _facade(40, 2)
        federation = mediator.federation
        federation.config = FederationConfig(shards=2, forward_threshold=7)
        shard = federation.mediators[0]
        assert federation.forward_threshold_for(shard, _query(None)) == 7

    def test_falls_back_to_policy_kn(self):
        sim, mediator, _ = _facade(40, 2, kn=6)
        federation = mediator.federation
        shard = federation.mediators[0]
        assert federation.forward_threshold_for(shard, _query(None)) == 6

    def test_selectorless_policy_uses_n_results(self):
        sim, mediator, consumer = _facade(40, 2, policy="capacity")
        federation = mediator.federation
        shard = federation.mediators[0]
        assert (
            federation.forward_threshold_for(shard, _query(consumer, n_results=3))
            == 3
        )


class TestMergedCandidates:
    def test_home_first_then_peers_ascending(self):
        sim, mediator, _ = _facade(12, 4)
        federation = mediator.federation
        home = 2
        merged, peers = federation.merged_candidates(home, "c0")
        assert list(peers) == sorted(peers)
        assert home not in peers
        expected = list(federation.registries[home].capable_snapshot("c0"))
        for ordinal in peers:
            expected.extend(federation.registries[ordinal].capable_snapshot("c0"))
        assert list(merged) == expected

    def test_cache_invalidated_by_churn(self):
        sim, mediator, _ = _facade(12, 4)
        federation = mediator.federation
        merged_before, _ = federation.merged_candidates(0, "c0")
        victim = merged_before[-1]
        victim.online = False
        merged_after, _ = federation.merged_candidates(0, "c0")
        assert victim not in merged_after
        assert len(merged_after) == len(merged_before) - 1

    def test_cache_reused_while_registries_unchanged(self):
        """The merged pool is rebuilt only on a registry version bump:
        identical objects come back while no shard's membership or
        online set moved (the snapshot-cache fix -- before it, every
        forwarded mediation either rebuilt or, worse, served a pool
        that predated peer churn)."""
        sim, mediator, _ = _facade(12, 4)
        federation = mediator.federation
        merged_a, peers_a = federation.merged_candidates(0, "c0")
        merged_b, peers_b = federation.merged_candidates(0, "c0")
        assert merged_a is merged_b
        assert peers_a is peers_b

    def test_cache_refreshed_after_peer_membership_churn(self):
        """A provider joining a *peer* shard registry after the pool was
        cached must appear in the next merged pool."""
        sim, mediator, _ = _facade(12, 4)
        federation = mediator.federation
        merged_before, peers = federation.merged_candidates(0, "c0")
        peer = peers[0]
        peer_registry = federation.registries[peer]
        from repro.system.provider import Provider

        joiner = Provider(
            sim,
            mediator.network,
            participant_id="p-joiner",
            resource_shares={"c0": 1.0},
        )
        peer_registry.add_provider(joiner)
        merged_after, _ = federation.merged_candidates(0, "c0")
        assert merged_after is not merged_before
        assert joiner in merged_after

    def test_departures_and_rejoins_refresh_round_trip(self):
        """Offline -> cached pool shrinks; back online -> pool is whole
        again (two version bumps, two rebuilds)."""
        sim, mediator, _ = _facade(12, 4)
        federation = mediator.federation
        merged_full, _ = federation.merged_candidates(0, "c0")
        victim = merged_full[0]
        victim.online = False
        merged_less, _ = federation.merged_candidates(0, "c0")
        assert len(merged_less) == len(merged_full) - 1
        victim.online = True
        merged_again, _ = federation.merged_candidates(0, "c0")
        assert len(merged_again) == len(merged_full)
        assert victim in merged_again

    def test_every_capable_provider_covered(self):
        """The union of shard pools is the global pool: no provider is
        lost to the partition."""
        sim, mediator, _ = _facade(30, 4)
        federation = mediator.federation
        merged, _ = federation.merged_candidates(0, "c0")
        merged_ids = sorted(p.participant_id for p in merged)
        global_ids = sorted(
            p.participant_id
            for p in mediator.registry.capable_snapshot("c0")
        )
        assert merged_ids == global_ids


class TestForwardCost:
    def test_constant_latency_hop_is_2c(self):
        sim, mediator, _ = _facade(12, 4)
        shard = mediator.federation.mediators[0]
        # FixedLatency(0.05): the hop collapses analytically to 2c.
        assert shard._forward_hop((1, 2)) == pytest.approx(0.10)

    def test_forwarded_runs_deterministic(self):
        def _signature():
            sim, mediator, consumer = _facade(12, 4)
            for _ in range(15):
                mediator.mediate(_query(consumer))
            sim.run()
            return (
                mediator.mediations,
                mediator.failures,
                mediator.coordination_messages,
                [m.mediations for m in mediator.federation.mediators],
            )

        assert _signature() == _signature()
