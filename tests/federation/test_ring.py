"""Unit tests for the consistent-hash shard ring and shard map."""

import pytest

from repro.federation import FederationConfig, ShardMap, ShardRing
from repro.federation.ring import _ring_position


class TestRingPosition:
    def test_stable_known_value(self):
        # sha1-derived, so this value is an eternal constant: a change
        # here silently reshuffles every persisted shard assignment.
        assert _ring_position("topic:c0") == int.from_bytes(
            __import__("hashlib").sha1(b"topic:c0").digest()[:8], "big"
        )

    def test_distinct_keys_distinct_positions(self):
        positions = {_ring_position(f"provider:p{i}") for i in range(1000)}
        assert len(positions) == 1000


class TestShardRing:
    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardRing(0)

    def test_single_shard_short_circuits(self):
        ring = ShardRing(1)
        assert ring.shard_of("anything") == 0

    def test_deterministic_across_instances(self):
        a = ShardRing(8, virtual_nodes=32)
        b = ShardRing(8, virtual_nodes=32)
        keys = [f"provider:p{i:04d}" for i in range(500)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_memoized_lookup_stable(self):
        ring = ShardRing(4)
        first = ring.shard_of("topic:t1")
        assert ring.shard_of("topic:t1") == first
        assert ring._memo["topic:t1"] == first

    def test_covers_every_shard(self):
        ring = ShardRing(4)
        owners = {ring.shard_of(f"provider:p{i:05d}") for i in range(2000)}
        assert owners == {0, 1, 2, 3}

    def test_roughly_balanced(self):
        ring = ShardRing(4, virtual_nodes=64)
        counts = [0, 0, 0, 0]
        for i in range(8000):
            counts[ring.shard_of(f"provider:p{i:05d}")] += 1
        # Consistent hashing with 64 vnodes: each shard within a loose
        # band around the 2000 ideal (the bound is intentionally slack;
        # this guards against gross imbalance, not variance).
        assert all(800 <= c <= 3600 for c in counts), counts

    def test_consistent_under_shard_growth(self):
        """Adding a shard moves only a fraction of the keys -- the
        property that makes the hash *consistent*."""
        before = ShardRing(4, virtual_nodes=64)
        after = ShardRing(5, virtual_nodes=64)
        keys = [f"provider:p{i:05d}" for i in range(4000)]
        moved = sum(1 for k in keys if before.shard_of(k) != after.shard_of(k))
        # Ideal churn is 1/5 of the keys; allow double that.
        assert moved <= 2 * len(keys) / 5, moved


class TestShardMap:
    def test_query_routing_by_topic(self):
        shard_map = ShardMap(FederationConfig(shards=4))
        assert shard_map.shard_of_topic("c0") == ShardRing(4).shard_of("topic:c0")

    def test_hash_mode_ignores_topics(self):
        shard_map = ShardMap(FederationConfig(shards=4, partition="hash"))
        with_topics = shard_map.shard_of_provider("p1", topics=["t1", "t2"])
        without = shard_map.shard_of_provider("p1")
        assert with_topics == without

    def test_topic_mode_colocates_with_home_topic(self):
        shard_map = ShardMap(FederationConfig(shards=4, partition="topic"))
        # The provider lands where its (lexicographically first) topic's
        # queries land, so those queries never need a forward.
        assert shard_map.shard_of_provider(
            "p1", topics=["t2", "t1"]
        ) == shard_map.shard_of_topic("t1")

    def test_topic_mode_unrestricted_falls_back_to_id(self):
        topic_map = ShardMap(FederationConfig(shards=4, partition="topic"))
        hash_map = ShardMap(FederationConfig(shards=4, partition="hash"))
        assert topic_map.shard_of_provider("p1") == hash_map.shard_of_provider("p1")

    def test_single_shard_short_circuits(self):
        shard_map = ShardMap(FederationConfig(shards=1, partition="topic"))
        assert shard_map.shard_of_provider("p1", topics=["t9"]) == 0


class TestFederationConfig:
    def test_defaults(self):
        config = FederationConfig()
        assert config.shards == 1
        assert config.partition == "hash"
        assert config.forward_threshold is None
        assert config.virtual_nodes == 64

    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            FederationConfig(shards=0)
        with pytest.raises(ValueError, match="partition"):
            FederationConfig(partition="range")
        with pytest.raises(ValueError, match="virtual_nodes"):
            FederationConfig(virtual_nodes=0)
        with pytest.raises(ValueError, match="forward_threshold"):
            FederationConfig(forward_threshold=0)
