"""Process-parallel shard execution: digest parity and the protocol.

The contract of :mod:`repro.federation.parallel` is absolute: whatever
the worker count, the merged result's digest equals the single-process
digest byte for byte, or the runner falls back to serial (and then the
digest is trivially equal).  These tests pin

* the group planner's partition properties,
* the eligibility gate's reasons,
* digest parity on preset-derived configs (both engines, several
  worker counts, with and without churn),
* the conservative cross-group-forwarding fallback, and
* the ``Session.run(shard_workers=...)`` surface.
"""

from dataclasses import replace

import pytest

from repro.api.presets import scenario_spec
from repro.experiments.runner import run_once, wire_run
from repro.federation import (
    FederationConfig,
    parallel_ineligible_reason,
    plan_groups,
    run_parallel,
)


def _federated_config(scenario="scenario1", duration=90.0, shards=3, **over):
    spec = scenario_spec(scenario, duration=duration)
    # Presets draw per-message latency from [low, high); the parallel
    # path needs the constant model (its lookahead), so pin it.
    config = replace(
        spec.to_config(),
        federation=FederationConfig(shards=shards),
        latency_low=0.05,
        latency_high=0.05,
        **over,
    )
    return config, spec.policies[0]


# ----------------------------------------------------------------------
# plan_groups
# ----------------------------------------------------------------------


class TestPlanGroups:
    @pytest.mark.parametrize("shards,workers", [(1, 1), (3, 2), (5, 5), (50, 8)])
    def test_partition_properties(self, shards, workers):
        groups = plan_groups(shards, workers)
        flat = [s for group in groups for s in group]
        # A partition: every shard exactly once, in order, contiguous.
        assert flat == list(range(shards))
        assert all(
            group == tuple(range(group[0], group[0] + len(group)))
            for group in groups
        )
        # Balanced: sizes differ by at most one.
        sizes = [len(group) for group in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_workers_clamped_to_shards(self):
        assert len(plan_groups(2, 16)) == 2

    def test_deterministic(self):
        assert plan_groups(50, 8) == plan_groups(50, 8)

    @pytest.mark.parametrize("shards,workers", [(0, 1), (1, 0)])
    def test_rejects_nonpositive(self, shards, workers):
        with pytest.raises(ValueError):
            plan_groups(shards, workers)


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------


class TestEligibility:
    def test_eligible_config(self):
        config, _ = _federated_config()
        assert config.latency_low == config.latency_high
        assert parallel_ineligible_reason(config) is None

    def test_requires_federation(self):
        config, _ = _federated_config()
        assert "federation" in parallel_ineligible_reason(
            replace(config, federation=None)
        )

    def test_rejects_random_latency(self):
        config, _ = _federated_config()
        reason = parallel_ineligible_reason(
            replace(config, latency_low=0.01, latency_high=0.2)
        )
        assert "latency" in reason

    def test_rejects_failure_injection(self):
        from repro.system.failures import FailureConfig

        config, _ = _federated_config()
        reason = parallel_ineligible_reason(
            replace(
                config,
                failures=FailureConfig(mttf=1000.0),
                result_timeout=240.0,
            )
        )
        assert "failure" in reason

    def test_rejects_keep_records(self):
        config, _ = _federated_config()
        assert "keep_records" in parallel_ineligible_reason(
            replace(config, keep_records=True)
        )

    def test_rejects_provider_snapshots(self):
        config, _ = _federated_config()
        assert "snapshot" in parallel_ineligible_reason(
            replace(config, track_provider_snapshots=True)
        )

    def test_ineligible_config_falls_back_to_serial(self):
        config, policy = _federated_config(keep_records=True)
        report = run_parallel(config, policy, workers=2)
        assert report.mode == "serial-fallback"
        assert "keep_records" in report.reason
        assert (
            report.result.digest()
            == run_once(config, policy).digest()
        )


# ----------------------------------------------------------------------
# Digest parity
# ----------------------------------------------------------------------


class TestDigestParity:
    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_parallel_matches_serial(self, engine):
        config, policy = _federated_config()
        config = replace(config, engine=engine)
        serial = run_once(config, policy).digest()
        report = run_parallel(config, policy, workers=2)
        assert report.mode == "parallel"
        assert report.result.digest() == serial

    def test_every_worker_count_identical(self):
        config, policy = _federated_config(duration=60.0)
        serial = run_once(config, policy).digest()
        for workers in (1, 2, 3):
            report = run_parallel(config, policy, workers=workers)
            assert report.mode == "parallel"
            assert report.result.digest() == serial, (
                f"workers={workers} diverged from serial"
            )

    def test_workers_beyond_shards_clamp(self):
        config, policy = _federated_config(duration=60.0)
        report = run_parallel(config, policy, workers=16)
        assert report.mode == "parallel"
        assert len(report.groups) == 3  # clamped to the shard count
        assert (
            report.result.digest()
            == run_once(config, policy).digest()
        )

    def test_churn_scenario_parallel(self):
        # scenario4 exercises autonomous departures/rejoins; ownership
        # of the churn sweep must partition cleanly across workers.
        config, policy = _federated_config("scenario4", duration=90.0)
        serial = run_once(config, policy).digest()
        report = run_parallel(config, policy, workers=2)
        assert report.mode == "parallel"
        assert report.result.digest() == serial

    def test_replication_seeding_respected(self):
        config, policy = _federated_config(duration=60.0)
        serial = run_once(config, policy, replication=3).digest()
        report = run_parallel(config, policy, workers=2, replication=3)
        assert report.mode == "parallel"
        assert report.result.digest() == serial
        assert (
            report.result.digest()
            != run_once(config, policy, replication=0).digest()
        )


# ----------------------------------------------------------------------
# Conservative cross-group guard
# ----------------------------------------------------------------------


class TestForwardingGuard:
    def test_cross_group_forwarding_falls_back(self):
        # An absurd forward threshold makes every mediation consult the
        # peer shards; with 2 workers some peers are out-of-group, so
        # the guard must trip and the parent must rerun serially.
        config, policy = _federated_config(
            duration=60.0,
        )
        config = replace(
            config,
            federation=FederationConfig(shards=3, forward_threshold=1000),
        )
        serial = run_once(config, policy).digest()
        report = run_parallel(config, policy, workers=2)
        assert report.mode == "serial-fallback"
        assert "cross-group forwarding" in report.reason
        assert report.result.digest() == serial

    def test_single_group_forwarding_stays_parallel(self):
        # With one worker, every peer is in-group: forwarding runs
        # natively and the digest still matches serial.
        config, policy = _federated_config(duration=60.0)
        config = replace(
            config,
            federation=FederationConfig(shards=3, forward_threshold=1000),
        )
        serial = run_once(config, policy).digest()
        report = run_parallel(config, policy, workers=1)
        assert report.mode == "parallel"
        assert report.result.digest() == serial


# ----------------------------------------------------------------------
# Session surface
# ----------------------------------------------------------------------


class TestSessionShardWorkers:
    def _spec(self):
        from repro.api.builder import Experiment

        return (
            Experiment.builder()
            .named("shard-workers")
            .seed(11)
            .duration(60.0)
            .providers(9)
            .latency(0.05, 0.05)
            .federation(shards=3)
            .policy("sbqa")
            .replications(2)
            .build()
        )

    def test_result_json_identical_to_serial(self):
        from repro.api.session import Session

        spec = self._spec()
        serial = Session(spec).run(keep_runs=False)
        sharded = Session(spec).run(shard_workers=2)
        assert sharded.to_dict() == serial.to_dict()
        # The shard-workers path is within-run parallelism: the result
        # still reports the serial replication schedule.
        assert sharded.parallel is False

    def test_mutually_exclusive_with_parallel(self):
        from repro.api.session import Session

        with pytest.raises(ValueError, match="mutually exclusive"):
            Session(self._spec()).run(parallel=True, shard_workers=2)

    def test_keep_runs_rejected(self):
        from repro.api.session import Session

        with pytest.raises(ValueError, match="keep_runs"):
            Session(self._spec()).run(shard_workers=2, keep_runs=True)


# ----------------------------------------------------------------------
# Wire-level slice invariants
# ----------------------------------------------------------------------


class TestShardSlice:
    def test_slice_rejects_workload(self):
        from repro.federation.parallel import ShardSlice

        config, policy = _federated_config(duration=30.0)
        shard_slice = ShardSlice(group=(0,), shards=3)
        with pytest.raises(ValueError):
            wire_run(config, policy, workload=(), shard_slice=shard_slice)
