"""The bench-side federation surface: record shape, axes, CLI flags."""

import pytest

from repro.perf.hotpath import (
    BENCH_VERSION,
    FEDERATION_POINTS,
    build_mediation_system,
    format_report,
    measure_federation,
    run_bench,
)


class TestBuildMediationSystem:
    def test_seed_baseline_rejects_shards(self):
        with pytest.raises(ValueError, match="predates federation"):
            build_mediation_system("seed_baseline", shards=2)

    def test_federated_facade_mediates(self):
        from repro.federation import FederatedMediator

        sim, mediator, consumer = build_mediation_system(
            "fast", n_providers=60, shards=3
        )
        assert isinstance(mediator, FederatedMediator)
        assert mediator.federation.shards == 3

    def test_fast_scalar_pin_covers_every_shard(self):
        # The scalar pin wraps the whole federation build, so no shard
        # may have engaged the fused kernel (it reads the backend once,
        # at construction); the plain fast build engages it everywhere.
        sim, mediator, _ = build_mediation_system(
            "fast_scalar", n_providers=60, shards=3
        )
        assert all(
            shard._fused_columns is None
            for shard in mediator.federation.mediators
        )
        sim, mediator, _ = build_mediation_system(
            "fast", n_providers=60, shards=3
        )
        assert all(
            shard._fused_columns is not None
            for shard in mediator.federation.mediators
        )


class TestMeasureFederation:
    def test_record_shape_and_flat_ratio(self):
        result = measure_federation(
            points=((60, 1), (120, 2)), mediations=120, repeats=1
        )
        assert set(result) == {"points", "flat_ratio"}
        assert set(result["points"]) == {"60", "120"}
        row = result["points"]["120"]
        assert row["shards"] == 2
        assert row["mediate_per_s"] > 0
        assert result["flat_ratio"] == pytest.approx(
            result["points"]["120"]["mediate_per_s"]
            / result["points"]["60"]["mediate_per_s"]
        )


class TestRunBenchAxes:
    @pytest.fixture(scope="class")
    def record(self):
        return run_bench(
            smoke=True, mediations=120, repeats=1, check_parity=False
        )

    def test_version_and_sections(self, record):
        assert record["bench_version"] == BENCH_VERSION == 5
        assert "federation" in record
        assert "scaling_ratio" in record["speedup"]

    def test_parallel_federation_section(self, record):
        section = record["parallel_federation"]
        assert section["mode"] == "slice-max"
        assert section["serial"]["mediate_per_s"] > 0
        for row in section["workers"].values():
            assert row["mediate_per_s"] > 0
            assert row["groups"] <= section["shards"]
        assert record["speedup"]["parallel_vs_serial"] == (
            section["best_speedup"]
        )

    def test_report_renders_parallel_federation(self, record):
        report = format_report(record)
        assert "parallel federation" in report
        assert "slice-max" in report

    def test_report_renders_federation(self, record):
        report = format_report(record)
        assert "federation axis" in report
        assert "flatness" in report

    def test_max_n_caps_axes(self):
        record = run_bench(
            smoke=True, mediations=100, repeats=1, check_parity=False,
            max_n=150,
        )
        assert list(record["scaling"]) == ["120"]
        assert list(record["registry"]) == ["120"]
        assert all(
            row["n_providers"] <= 150
            for row in record["federation"]["points"].values()
        )

    def test_max_n_above_grid_joins_it(self):
        record = run_bench(
            smoke=True, mediations=100, repeats=1, check_parity=False,
            max_n=700, scale_providers=(120, 600),
        )
        assert list(record["scaling"]) == ["120", "600", "700"]

    def test_shards_pins_every_point(self):
        record = run_bench(
            smoke=True, mediations=100, repeats=1, check_parity=False,
            max_n=150, shards=3,
        )
        assert all(
            row["shards"] == 3
            for row in record["federation"]["points"].values()
        )

    def test_default_full_points_reach_100k(self):
        assert FEDERATION_POINTS[-1] == (100000, 50)


class TestCliGates:
    def test_run_shards_needs_session(self, capsys):
        from repro.cli import main

        code = main(["run", "scenario1", "--shards", "2"])
        assert code == 2
        assert "--shards" in capsys.readouterr().err
