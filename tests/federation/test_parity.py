"""The federation parity invariants.

``shards=1`` is the degenerate federation: one shard registry holding
every provider in registration order, one shard mediator built from the
unprefixed random root, a route that always answers shard 0, and a
forwarding gate that never opens.  Every draw therefore happens in the
same stream, in the same order, as the unsharded run -- so the summary
digests must match byte for byte, on every shipped scenario preset.

At ``shards>1`` the digests legitimately differ from the flat run (each
shard only sees a slice of the population), but the fast and event
engines must still agree with each other.
"""

from dataclasses import replace

import pytest

from repro.api.presets import available_scenarios, scenario_spec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import wire_run
from repro.federation import FederationConfig


def _digest(config: ExperimentConfig, policy_spec) -> str:
    return wire_run(config, policy_spec).finalize().digest()


@pytest.mark.parametrize("scenario", available_scenarios())
def test_k1_matches_unsharded_on_every_preset(scenario):
    spec = scenario_spec(scenario, duration=120.0)
    config = spec.to_config()
    federated = replace(config, federation=FederationConfig(shards=1))
    # The first policy exercises each preset's characteristic scenario
    # shape (autonomy, failures, focal consumers, ...); the full policy
    # matrix is covered on scenario1 below.
    policy_spec = spec.policies[0]
    assert _digest(federated, policy_spec) == _digest(config, policy_spec)


def test_k1_matches_unsharded_for_every_policy():
    spec = scenario_spec("scenario1", duration=120.0)
    config = spec.to_config()
    federated = replace(config, federation=FederationConfig(shards=1))
    for policy_spec in spec.policies:
        assert _digest(federated, policy_spec) == _digest(config, policy_spec)


def test_k1_matches_unsharded_event_engine():
    spec = scenario_spec("scenario1", duration=120.0)
    config = replace(spec.to_config(), engine="event")
    federated = replace(config, federation=FederationConfig(shards=1))
    policy_spec = spec.policies[0]
    assert _digest(federated, policy_spec) == _digest(config, policy_spec)


@pytest.mark.parametrize("partition", ["hash", "topic"])
def test_sharded_fast_event_parity(partition):
    """K=4: the engines must agree with each other (not with K=1)."""
    spec = scenario_spec("scenario1", duration=120.0)
    base = spec.to_config()
    policy_spec = spec.policies[0]
    federation = FederationConfig(shards=4, partition=partition)
    fast = _digest(replace(base, federation=federation), policy_spec)
    event = _digest(
        replace(base, engine="event", federation=federation), policy_spec
    )
    assert fast == event


def test_sharded_run_repeatable_in_process():
    spec = scenario_spec("scenario2", duration=120.0)
    config = replace(spec.to_config(), federation=FederationConfig(shards=4))
    policy_spec = spec.policies[0]
    assert _digest(config, policy_spec) == _digest(config, policy_spec)


def test_spec_round_trips_federation():
    from repro.api.spec import ExperimentSpec

    spec = scenario_spec("scenario1", duration=120.0)
    federated = replace(
        spec, federation=FederationConfig(shards=4, partition="topic")
    )
    data = federated.to_dict()
    assert data["federation"] == {
        "shards": 4,
        "partition": "topic",
        "forward_threshold": None,
        "virtual_nodes": 64,
    }
    again = ExperimentSpec.from_dict(data)
    assert again.federation == federated.federation
    assert again.to_config().federation == federated.federation
