"""Hash-seed independence of sharding and forwarding.

The shard map hashes with sha1 and every merge/threshold step iterates
deterministic structures, so shard assignment, forward ordering, and
the full federated result must be bit-identical across interpreters
with different ``PYTHONHASHSEED`` values.  These tests run the same
probes in subprocesses with different seeds (including ``random``) and
byte-compare the JSON they print.
"""

import json
import os
import subprocess
import sys

#: Shard assignment + routing probe: the per-provider shard map (both
#: partition modes), the topic routes, and the ring ownership table.
_ASSIGNMENT_SCRIPT = """
import json, sys
from repro.federation import FederationConfig, ShardMap

hash_map = ShardMap(FederationConfig(shards=5, partition="hash"))
topic_map = ShardMap(FederationConfig(shards=5, partition="topic"))
providers = [f"p{i:04d}" for i in range(300)]
topics = [f"t{i}" for i in range(12)]
out = {
    "hash": {p: hash_map.shard_of_provider(p) for p in providers},
    "topic_restricted": {
        p: topic_map.shard_of_provider(p, topics=[topics[i % 12], topics[(i + 5) % 12]])
        for i, p in enumerate(providers)
    },
    "routes": {t: hash_map.shard_of_topic(t) for t in topics},
}
json.dump(out, sys.stdout, sort_keys=True)
"""

#: Forwarded-mediation probe: a thin-pool federation where every
#: mediation forwards; prints the merged candidate order, the peer
#: ordinals, and the end-of-run counters.
_FORWARDING_SCRIPT = """
import json, sys
from repro.perf.hotpath import build_mediation_system
from repro.system.query import Query

sim, mediator, consumer = build_mediation_system("fast", n_providers=12, shards=4)
federation = mediator.federation
home = federation.route("c0").shard_ordinal
merged, peers = federation.merged_candidates(home, "c0")
for _ in range(15):
    mediator.mediate(Query(
        consumer=consumer, topic="c0", service_demand=10.0,
        n_results=2, issued_at=0.0,
    ))
sim.run()
out = {
    "home": home,
    "peers": list(peers),
    "merged": [p.participant_id for p in merged],
    "mediations": mediator.mediations,
    "failures": mediator.failures,
    "coordination_messages": mediator.coordination_messages,
    "per_shard": [m.mediations for m in federation.mediators],
}
json.dump(out, sys.stdout, sort_keys=True)
"""

#: Full federated run probe: summary digest of a K=3 scenario run.
_DIGEST_SCRIPT = """
import sys
from dataclasses import replace
from repro.api.presets import scenario_spec
from repro.experiments.runner import wire_run
from repro.federation import FederationConfig

spec = scenario_spec("scenario1", duration=120.0)
config = replace(spec.to_config(), federation=FederationConfig(shards=3))
sys.stdout.write(wire_run(config, spec.policies[0]).finalize().digest())
"""


#: Process-parallel digest probe: serial and every worker count must
#: produce one digest, whatever the interpreter's hash seed (worker
#: processes inherit it via fork, so a hash-order dependence anywhere
#: in slicing, flushing, or the parent merge would surface here).
_PARALLEL_SCRIPT = """
import sys
from dataclasses import replace
from repro.api.presets import scenario_spec
from repro.experiments.runner import run_once
from repro.federation import FederationConfig, run_parallel

spec = scenario_spec("scenario1", duration=90.0)
config = replace(
    spec.to_config(),
    federation=FederationConfig(shards=3),
    latency_low=0.05,
    latency_high=0.05,
)
policy = spec.policies[0]
digests = [run_once(config, policy).digest()]
for workers in (1, 2, 3):
    report = run_parallel(config, policy, workers=workers)
    assert report.mode == "parallel", report.reason
    digests.append(report.result.digest())
assert len(set(digests)) == 1, digests
sys.stdout.write(digests[0])
"""


def _run_with_hash_seed(script: str, seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def test_shard_assignment_identical_across_hash_seeds():
    baseline = json.loads(_run_with_hash_seed(_ASSIGNMENT_SCRIPT, "0"))
    for seed in ("1", "4242", "random"):
        assert json.loads(_run_with_hash_seed(_ASSIGNMENT_SCRIPT, seed)) == baseline


def test_forward_ordering_identical_across_hash_seeds():
    baseline = _run_with_hash_seed(_FORWARDING_SCRIPT, "0")
    for seed in ("4242", "random"):
        assert _run_with_hash_seed(_FORWARDING_SCRIPT, seed) == baseline


def test_federated_digest_identical_across_hash_seeds():
    baseline = _run_with_hash_seed(_DIGEST_SCRIPT, "0")
    assert len(baseline) == 64  # sha256 hex
    assert _run_with_hash_seed(_DIGEST_SCRIPT, "random") == baseline


def test_parallel_digest_identical_across_hash_seeds_and_workers():
    baseline = _run_with_hash_seed(_PARALLEL_SCRIPT, "0")
    assert len(baseline) == 64  # sha256 hex
    assert _run_with_hash_seed(_PARALLEL_SCRIPT, "random") == baseline
