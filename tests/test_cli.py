"""Tests for the sbqa command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_scenario_names(self):
        args = build_parser().parse_args(["run", "scenario1"])
        assert args.scenario == "scenario1"

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "scenario99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"scenario{i}" in out

    def test_run_small_scenario(self, capsys):
        code = main(
            ["run", "scenario1", "--duration", "300", "--providers", "40", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "scenario1" in out
        assert "Comparison" in out
        assert code in (0, 1)  # claims may be noisy at this tiny scale

    def test_run_exports_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        main(
            [
                "run", "scenario1",
                "--duration", "200", "--providers", "30",
                "--csv", str(csv_path),
            ]
        )
        assert csv_path.exists()
        content = csv_path.read_text()
        assert "series,t,value" in content
        assert "capacity/provider_satisfaction" in content

    def test_trace(self, capsys):
        assert main(["trace", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "knbest" in out
        assert "allocate" in out


class TestSweepCommand:
    def test_kn_sweep(self, capsys):
        code = main(
            [
                "sweep", "kn", "--values", "1,4",
                "--duration", "200", "--providers", "20", "--k", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kn sweep" in out
        assert "sbqa" not in out.splitlines()[0] or True
        assert "1" in out and "4" in out

    def test_omega_sweep_accepts_adaptive(self, capsys):
        code = main(
            [
                "sweep", "omega", "--values", "0,adaptive",
                "--duration", "200", "--providers", "20",
            ]
        )
        assert code == 0
        assert "omega sweep" in capsys.readouterr().out

    def test_memory_sweep_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep", "memory", "--values", "20,100",
                "--duration", "200", "--providers", "20",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "memory" in csv_path.read_text().splitlines()[0]

    def test_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "latency", "--values", "1"])

    def test_empty_values_error(self, capsys):
        code = main(
            ["sweep", "kn", "--values", " ,", "--duration", "100", "--providers", "10"]
        )
        assert code == 2

    def test_missing_values_error(self, capsys):
        assert main(["sweep", "kn"]) == 2
        assert "--values" in capsys.readouterr().err

    def test_zero_replications_rejected(self, capsys):
        code = main(["sweep", "kn", "--values", "1", "--replications", "0",
                     "--duration", "100", "--providers", "10"])
        assert code == 2
        assert "at least one replication" in capsys.readouterr().err

    def test_no_parameter_no_spec_error(self, capsys):
        assert main(["sweep"]) == 2
        assert "parameter or --spec" in capsys.readouterr().err


class TestSweepSpecDriven:
    """The declarative sweep path: spec --sweep emitters + sweep --spec."""

    def emit(self, tmp_path, *extra):
        path = tmp_path / "grid.json"
        code = main(
            ["spec", "scenario3", "--duration", "100", "--providers", "12",
             "--replications", "2",
             "--sweep", "sbqa.omega=0,adaptive", *extra, "-o", str(path)]
        )
        assert code == 0
        return path

    def test_spec_sweep_emits_sweep_spec(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        from repro.api.sweep import SweepSpec

        sweep = SweepSpec.load(path)
        assert sweep.name == "scenario3-sweep"
        assert len(sweep) == 2
        assert sweep.axes[0].path == "sbqa.omega"
        assert sweep.axes[0].values == (0, "adaptive")
        assert sweep.base.name == "scenario3"
        assert sweep.base.replications == 2

    def test_spec_sweep_zip_and_name(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        code = main(
            ["spec", "scenario3", "--duration", "100", "--providers", "12",
             "--sweep", "sbqa.k=4,8", "--sweep", "sbqa.kn=2,4",
             "--zip", "--sweep-name", "pool-grid", "-o", str(path)]
        )
        assert code == 0
        from repro.api.sweep import SweepSpec

        sweep = SweepSpec.load(path)
        assert sweep.name == "pool-grid"
        assert len(sweep) == 2  # zipped, not 2 x 2
        assert {a.zip_group for a in sweep.axes} == {"zip"}

    def test_spec_sweep_bad_axis_errors(self, tmp_path, capsys):
        code = main(
            ["spec", "scenario3", "--sweep", "nonsense", "-o",
             str(tmp_path / "x.json")]
        )
        assert code == 2
        assert "bad sweep axis" in capsys.readouterr().err

    def test_zip_without_sweep_axes_rejected(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        assert main(["spec", "scenario3", "--zip", "-o", str(path)]) == 2
        assert "--sweep" in capsys.readouterr().err
        assert not path.exists()
        assert main(["spec", "scenario3", "--sweep-name", "grid",
                     "-o", str(path)]) == 2
        assert not path.exists()

    def test_sweep_spec_runs_and_exports(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "digest.json"
        code = main(
            ["sweep", "--spec", str(path), "--csv", str(csv_path),
             "--json", str(json_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "omega=adaptive" in out
        assert "best per column" in out
        assert csv_path.read_text().splitlines()[0].startswith("sweep,point,omega")
        import json

        digest = json.loads(json_path.read_text())
        assert [p["label"] for p in digest["points"]] == ["omega=0", "omega=adaptive"]
        assert digest["points"][0]["comparisons"]  # 2 replications -> t-tests

    def test_sweep_spec_workers_stream_matches_serial_digest(self, tmp_path, capsys):
        """--workers N implies parallel; streamed output, identical digest."""
        path = self.emit(tmp_path)
        capsys.readouterr()
        serial_json = tmp_path / "serial.json"
        parallel_json = tmp_path / "parallel.json"
        assert main(["sweep", "--spec", str(path), "--json", str(serial_json)]) == 0
        capsys.readouterr()
        code = main(
            ["sweep", "--spec", str(path), "--workers", "2", "--stream",
             "--json", str(parallel_json)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "point omega=0:" in out  # streamed per-point blocks
        assert serial_json.read_bytes() == parallel_json.read_bytes()

    def test_sweep_replications_override(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        code = main(["sweep", "--spec", str(path), "--replications", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "±" not in out  # single replication: no spread cells

    def test_sweep_spec_base_overrides_apply(self, tmp_path, capsys):
        """--seed/--duration/--providers rewrite the grid's base, like
        `sbqa run --spec`; they must not be silently dropped."""
        path = self.emit(tmp_path)
        capsys.readouterr()
        json_a = tmp_path / "a.json"
        json_b = tmp_path / "b.json"
        assert main(["sweep", "--spec", str(path), "--json", str(json_a)]) == 0
        capsys.readouterr()
        assert main(["sweep", "--spec", str(path), "--seed", "99",
                     "--duration", "80", "--providers", "8",
                     "--json", str(json_b)]) == 0
        capsys.readouterr()
        import json

        base = json.loads(json_b.read_text())["sweep"]["base"]
        assert base["seed"] == 99
        assert base["duration"] == 80.0
        assert base["population"]["n_providers"] == 8
        assert json_a.read_text() != json_b.read_text()

    def test_sweep_spec_rejects_quick_only_k(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "--spec", str(path), "--k", "10"]) == 2
        assert "quick form only" in capsys.readouterr().err

    def test_sweep_spec_rejects_quick_only_values(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "--spec", str(path), "--values", "0.25,0.75"]) == 2
        assert "quick form only" in capsys.readouterr().err

    def test_sweep_spec_and_parameter_rejected(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "kn", "--values", "1", "--spec", str(path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_sweep_missing_spec_file_errors(self, capsys):
        assert main(["sweep", "--spec", "/nonexistent/grid.json"]) == 2
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_sweep_rejects_nonpositive_workers(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        capsys.readouterr()
        assert main(["sweep", "--spec", str(path), "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestTuneCommand:
    """The adaptive-tuning path: tune --spec with overrides and exports."""

    def emit(self, tmp_path, **kwargs):
        from repro.api.builder import Experiment

        spec = (
            Experiment.builder()
            .named("cli-tune")
            .seed(11)
            .duration(60.0)
            .providers(10)
            .policy("sbqa")
            .replications(kwargs.pop("replications", 4))
            .sweep()
            .named("cli-tune-grid")
            .axis("sbqa.kn", [1, 5])
            .tune()
            .named("cli-tune")
            .objective("consumer_sat_final")
            .rungs(3, 4)
            .build()
        )
        path = tmp_path / "tune.json"
        spec.save(path)
        return path

    def test_tune_runs_and_reports_winner(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        code = main(["tune", "--spec", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "winner" in out
        assert "exhaustive" in out
        assert "p_holm" in out

    def test_tune_stream_prints_rung_decisions(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        code = main(["tune", "--spec", str(path), "--stream"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[rung 1/2]" in out
        assert "incumbent" in out
        assert "eliminated kn=1" in out

    def test_tune_workers_stream_matches_serial_digest(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        serial_json = tmp_path / "serial.json"
        parallel_json = tmp_path / "parallel.json"
        assert main(["tune", "--spec", str(path), "--json",
                     str(serial_json)]) == 0
        assert main(["tune", "--spec", str(path), "--workers", "2",
                     "--stream", "--json", str(parallel_json)]) == 0
        assert serial_json.read_bytes() == parallel_json.read_bytes()

    def test_tune_csv_and_json_exports(self, tmp_path, capsys):
        import json

        path = self.emit(tmp_path)
        csv_path = tmp_path / "rows.csv"
        json_path = tmp_path / "digest.json"
        code = main(["tune", "--spec", str(path), "--csv", str(csv_path),
                     "--json", str(json_path)])
        assert code == 0
        assert csv_path.read_text().splitlines()[0].startswith("tune,point,kn")
        digest = json.loads(json_path.read_text())
        assert digest["winner"]["label"].startswith("kn=")
        assert digest["runs_executed"] + digest["runs_saved"] == digest[
            "exhaustive_runs"
        ]
        assert digest["trace"]

    def test_tune_budget_and_alpha_overrides(self, tmp_path, capsys):
        import json

        path = self.emit(tmp_path)
        json_path = tmp_path / "digest.json"
        # alpha=0.000001: nothing can be eliminated; the budget (7: one
        # short of both rungs' 6+2) must then stop before the last rung
        code = main(["tune", "--spec", str(path), "--budget", "7",
                     "--alpha", "0.000001", "--json", str(json_path)])
        assert code == 0
        digest = json.loads(json_path.read_text())
        assert digest["tune"]["budget"] == 7
        assert digest["tune"]["alpha"] == 0.000001
        assert digest["status"] == "budget_exhausted"
        assert digest["runs_executed"] <= 7

    def test_tune_budget_zero_lifts_the_cap(self, tmp_path, capsys):
        import json

        path = self.emit(tmp_path)
        json_path = tmp_path / "digest.json"
        assert main(["tune", "--spec", str(path), "--budget", "0",
                     "--json", str(json_path)]) == 0
        assert json.loads(json_path.read_text())["tune"]["budget"] is None

    def test_tune_objective_override(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        code = main(["tune", "--spec", str(path), "--objective", "mean_rt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean_rt (minimize)" in out

    def test_tune_objective_override_drops_pinned_direction(self, tmp_path, capsys):
        """A direction pinned in the file belongs to the file's metric;
        overriding the objective must fall back to the new metric's
        natural direction, not race it the wrong way."""
        import json

        path = self.emit(tmp_path)
        data = json.loads(path.read_text())
        data["direction"] = "maximize"  # pinned for consumer_sat_final
        path.write_text(json.dumps(data))
        code = main(["tune", "--spec", str(path), "--objective", "mean_rt"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean_rt (minimize)" in out  # not maximize

    def test_tune_too_small_budget_errors(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        assert main(["tune", "--spec", str(path), "--budget", "2"]) == 2
        assert "cannot cover the first rung" in capsys.readouterr().err

    def test_tune_missing_spec_file_errors(self, capsys):
        assert main(["tune", "--spec", "/nonexistent/tune.json"]) == 2
        assert "cannot read tune spec" in capsys.readouterr().err

    def test_tune_requires_spec_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune"])

    def test_tune_rejects_nonpositive_workers(self, tmp_path, capsys):
        path = self.emit(tmp_path)
        assert main(["tune", "--spec", str(path), "--workers", "0"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestSweepAlpha:
    def test_sweep_alpha_flows_into_table_and_digest(self, tmp_path, capsys):
        import json

        grid = tmp_path / "grid.json"
        main(["spec", "scenario3", "--duration", "100", "--providers", "12",
              "--replications", "2", "--sweep", "sbqa.omega=0,adaptive",
              "-o", str(grid)])
        capsys.readouterr()
        json_path = tmp_path / "digest.json"
        code = main(["sweep", "--spec", str(grid), "--alpha", "0.2",
                     "--json", str(json_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "p < 0.2" in out
        assert json.loads(json_path.read_text())["alpha"] == 0.2


class TestRunAll:
    def test_run_all_executes_every_scenario(self, capsys):
        code = main(
            ["run", "all", "--duration", "250", "--providers", "25", "--seed", "5"]
        )
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"scenario{i}" in out
        assert code in (0, 1)  # claims may be noisy at this tiny scale


class TestSpecDrivenRun:
    def test_run_without_scenario_or_spec_errors(self, capsys):
        assert main(["run"]) == 2
        assert "scenario id or --spec" in capsys.readouterr().err

    def test_spec_subcommand_writes_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        code = main(
            ["spec", "scenario3", "--duration", "150", "--providers", "20",
             "--replications", "2", "-o", str(path)]
        )
        assert code == 0
        assert path.exists()
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec.load(path)
        assert spec.name == "scenario3"
        assert spec.duration == 150.0
        assert spec.replications == 2

    def test_spec_subcommand_stdout(self, capsys):
        assert main(["spec", "scenario3", "--duration", "100"]) == 0
        out = capsys.readouterr().out
        assert '"spec_version"' in out

    def test_run_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        main(["spec", "scenario3", "--duration", "120", "--providers", "15",
              "-o", str(path)])
        capsys.readouterr()
        csv_path = tmp_path / "runs.csv"
        json_path = tmp_path / "digest.json"
        code = main(
            ["run", "--spec", str(path), "--csv", str(csv_path),
             "--json", str(json_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capacity" in out and "economic" in out
        assert csv_path.exists() and json_path.exists()

    def test_run_scenario_with_replications(self, capsys):
        code = main(
            ["run", "scenario1", "--duration", "120", "--providers", "15",
             "--replications", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replication(s)" in out
        assert "±" in out

    def test_run_spec_file_parallel_matches_serial(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        main(["spec", "scenario3", "--duration", "120", "--providers", "15",
              "--replications", "2", "-o", str(path)])
        capsys.readouterr()
        assert main(["run", "--spec", str(path)]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "--spec", str(path), "--parallel",
                     "--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_json_rejected_on_classic_path(self, capsys):
        assert main(["run", "scenario1", "--duration", "60",
                     "--json", "out.json"]) == 2
        assert "--json" in capsys.readouterr().err

    def test_scenario_and_spec_together_rejected(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        main(["spec", "scenario3", "--duration", "60", "-o", str(path)])
        capsys.readouterr()
        assert main(["run", "scenario1", "--spec", str(path)]) == 2
        assert "not both" in capsys.readouterr().err


class TestWorkloadCommand:
    def test_synthetic_to_file(self, tmp_path, capsys):
        from repro.workloads.traces import TraceSpec

        path = tmp_path / "diurnal.json"
        code = main(
            ["workload", "diurnal", "-o", str(path), "--duration", "30",
             "--seed", "5", "--base-rate", "3"]
        )
        assert code == 0
        trace = TraceSpec.load(path)
        assert trace.shape == "diurnal"
        assert trace.duration == 30.0
        assert trace.seed == 5
        assert trace.materialize()

    def test_synthetic_to_stdout(self, capsys):
        import json

        code = main(["workload", "heavy-tail", "--duration", "20"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shape"] == "heavy-tail"
        assert "trace_version" in payload

    def test_param_overrides(self, tmp_path, capsys):
        from repro.workloads.traces import TraceSpec

        path = tmp_path / "crowd.json"
        code = main(
            ["workload", "flash-crowd", "-o", str(path), "--duration", "40",
             "--param", "spike_factor=2", "--param", "spike_start=5"]
        )
        assert code == 0
        trace = TraceSpec.load(path)
        assert trace.params["spike_factor"] == 2.0
        assert trace.params["spike_start"] == 5.0

    def test_bad_param_errors(self, tmp_path, capsys):
        code = main(
            ["workload", "diurnal", "--duration", "10", "--param", "wobble=1"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_digest_out_rejected_for_synthetic(self, tmp_path, capsys):
        code = main(
            ["workload", "diurnal", "--duration", "10",
             "--digest-out", str(tmp_path / "d.json")]
        )
        assert code == 2
        assert "record" in capsys.readouterr().err

    def test_synthetic_flags_rejected_for_record(self, tmp_path, capsys):
        code = main(
            ["workload", "record", "--duration", "10", "--consumers", "x"]
        )
        assert code == 2
        assert "synthetic" in capsys.readouterr().err

    def test_record_writes_trace_and_digest(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "rec.json"
        digest_path = tmp_path / "digest.json"
        code = main(
            ["workload", "record", "-o", str(trace_path), "--duration", "60",
             "--seed", "7", "--digest-out", str(digest_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "recorded" in captured.err
        digest = json.loads(digest_path.read_text())
        assert len(digest["digest"]) == 64
        assert digest["seed"] == 7


class TestServeCommand:
    def test_replay_matches_recorded_digest(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "rec.json"
        digest_path = tmp_path / "digest.json"
        assert main(
            ["workload", "record", "-o", str(trace_path), "--duration", "60",
             "--seed", "7", "--digest-out", str(digest_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["serve", "--replay", str(trace_path), "--duration", "60",
             "--seed", "7"]
        )
        assert code == 0
        replayed = json.loads(capsys.readouterr().out)
        recorded = json.loads(digest_path.read_text())
        assert replayed["digest"] == recorded["digest"]

    def test_replay_digest_out(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "rec.json"
        assert main(
            ["workload", "record", "-o", str(trace_path), "--duration", "40"]
        ) == 0
        capsys.readouterr()
        out_path = tmp_path / "replay-digest.json"
        code = main(
            ["serve", "--replay", str(trace_path), "--duration", "40",
             "--digest-out", str(out_path)]
        )
        assert code == 0
        assert len(json.loads(out_path.read_text())["digest"]) == 64

    def test_replay_rejects_feeds(self, tmp_path, capsys):
        code = main(
            ["serve", "--replay", "x.json", "--stdin"]
        )
        assert code == 2
        assert "--replay" in capsys.readouterr().err

    def test_live_rejects_digest_out(self, tmp_path, capsys):
        code = main(
            ["serve", "--digest-out", str(tmp_path / "d.json")]
        )
        assert code == 2
        assert "--replay" in capsys.readouterr().err

    def test_missing_trace_file_errors(self, capsys):
        code = main(["serve", "--replay", "/nonexistent/trace.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestBenchServe:
    def test_bench_serve_smoke(self, capsys):
        code = main(["bench", "--smoke", "--serve", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve throughput bench" in out
        assert "identical" in out

    def test_bench_serve_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "bench.json"
        code = main(
            ["bench", "--smoke", "--serve", "--repeats", "1",
             "--json", str(path)]
        )
        assert code == 0
        record = json.loads(path.read_text())
        assert record["bench"] == "serve_throughput"
        assert record["parity"]["identical"] is True
        assert set(record["shapes"]) == {"diurnal", "flash-crowd", "heavy-tail"}
