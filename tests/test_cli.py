"""Tests for the sbqa command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_scenario_names(self):
        args = build_parser().parse_args(["run", "scenario1"])
        assert args.scenario == "scenario1"

    def test_run_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "scenario99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"scenario{i}" in out

    def test_run_small_scenario(self, capsys):
        code = main(
            ["run", "scenario1", "--duration", "300", "--providers", "40", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert "scenario1" in out
        assert "Comparison" in out
        assert code in (0, 1)  # claims may be noisy at this tiny scale

    def test_run_exports_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "series.csv"
        main(
            [
                "run", "scenario1",
                "--duration", "200", "--providers", "30",
                "--csv", str(csv_path),
            ]
        )
        assert csv_path.exists()
        content = csv_path.read_text()
        assert "series,t,value" in content
        assert "capacity/provider_satisfaction" in content

    def test_trace(self, capsys):
        assert main(["trace", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "knbest" in out
        assert "allocate" in out


class TestSweepCommand:
    def test_kn_sweep(self, capsys):
        code = main(
            [
                "sweep", "kn", "--values", "1,4",
                "--duration", "200", "--providers", "20", "--k", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kn sweep" in out
        assert "sbqa" not in out.splitlines()[0] or True
        assert "1" in out and "4" in out

    def test_omega_sweep_accepts_adaptive(self, capsys):
        code = main(
            [
                "sweep", "omega", "--values", "0,adaptive",
                "--duration", "200", "--providers", "20",
            ]
        )
        assert code == 0
        assert "omega sweep" in capsys.readouterr().out

    def test_memory_sweep_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep", "memory", "--values", "20,100",
                "--duration", "200", "--providers", "20",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "memory" in csv_path.read_text().splitlines()[0]

    def test_rejects_unknown_parameter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "latency", "--values", "1"])

    def test_empty_values_error(self, capsys):
        code = main(
            ["sweep", "kn", "--values", " ,", "--duration", "100", "--providers", "10"]
        )
        assert code == 2


class TestRunAll:
    def test_run_all_executes_every_scenario(self, capsys):
        code = main(
            ["run", "all", "--duration", "250", "--providers", "25", "--seed", "5"]
        )
        out = capsys.readouterr().out
        for i in range(1, 8):
            assert f"scenario{i}" in out
        assert code in (0, 1)  # claims may be noisy at this tiny scale
