"""Unit tests for repro.des.entity."""

import pytest

from repro.des.entity import Entity, RecordingEntity, format_entity
from repro.des.network import Network


class TestEntity:
    def test_requires_name(self, sim):
        with pytest.raises(ValueError, match="non-empty"):
            Entity(sim, "")

    def test_ids_are_unique(self, sim):
        a = Entity(sim, "a")
        b = Entity(sim, "b")
        assert a.entity_id != b.entity_id

    def test_now_mirrors_simulator(self, sim):
        entity = Entity(sim, "e")
        sim.run_until(12.0)
        assert entity.now == 12.0

    def test_call_in_schedules_relative(self, sim):
        entity = Entity(sim, "e")
        fired = []
        entity.call_in(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_call_at_schedules_absolute(self, sim):
        entity = Entity(sim, "e")
        fired = []
        entity.call_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_default_receive_raises(self, sim, network):
        sender = Entity(sim, "sender")
        receiver = Entity(sim, "receiver")
        network.send("ping", sender, receiver)
        with pytest.raises(NotImplementedError, match="unexpected message"):
            sim.run()

    def test_repr_contains_name(self, sim):
        assert "'e'" in repr(Entity(sim, "e"))

    def test_format_entity(self, sim):
        entity = Entity(sim, "node")
        assert format_entity(entity) == f"node#{entity.entity_id}"


class TestRecordingEntity:
    def test_records_payloads_in_order(self, sim, network):
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "sink")
        network.send("a", sender, sink, payload=1)
        network.send("b", sender, sink, payload=2)
        sim.run()
        assert sink.payloads() == [1, 2]
        assert [m.kind for m in sink.inbox] == ["a", "b"]
