"""Unit tests for repro.des.events."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.events import DEFAULT_PRIORITY, Event, EventHandle, make_repeating


def noop() -> None:
    pass


class TestEventOrdering:
    def test_orders_by_time_first(self):
        early = Event(1.0, seq=5, action=noop)
        late = Event(2.0, seq=1, action=noop)
        assert early < late

    def test_priority_breaks_time_ties(self):
        high = Event(1.0, seq=5, action=noop, priority=-1)
        low = Event(1.0, seq=1, action=noop, priority=0)
        assert high < low

    def test_sequence_breaks_remaining_ties(self):
        first = Event(1.0, seq=1, action=noop)
        second = Event(1.0, seq=2, action=noop)
        assert first < second

    def test_equal_keys_compare_equal(self):
        a = Event(1.0, seq=1, action=noop)
        b = Event(1.0, seq=1, action=lambda: None)
        assert a == b
        assert hash(a) == hash(b)

    def test_comparison_with_non_event_is_not_implemented(self):
        event = Event(1.0, seq=1, action=noop)
        assert event.__eq__(42) is NotImplemented
        assert event.__lt__(42) is NotImplemented

    def test_total_ordering_provides_le_gt(self):
        a = Event(1.0, seq=1, action=noop)
        b = Event(2.0, seq=2, action=noop)
        assert a <= b
        assert b > a
        assert b >= a

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.integers(min_value=-5, max_value=5),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_sorted_events_are_time_monotone(self, specs):
        events = [
            Event(t, seq=i, action=noop, priority=p) for i, (t, p) in enumerate(specs)
        ]
        ordered = sorted(events)
        times = [e.time for e in ordered]
        assert times == sorted(times)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            Event(math.nan, seq=0, action=noop)


class TestEventCancellation:
    def test_events_start_uncancelled(self):
        event = Event(1.0, seq=0, action=noop)
        assert not event.cancelled

    def test_cancel_marks_event(self):
        event = Event(1.0, seq=0, action=noop)
        event.cancel()
        assert event.cancelled

    def test_handle_reflects_cancellation(self):
        event = Event(3.0, seq=0, action=noop, label="x")
        handle = EventHandle(event)
        assert handle.time == 3.0
        assert handle.label == "x"
        assert not handle.cancelled
        handle.cancel()
        assert event.cancelled
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        event = Event(1.0, seq=0, action=noop)
        handle = EventHandle(event)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_repr_mentions_cancellation(self):
        event = Event(1.0, seq=0, action=noop)
        event.cancel()
        assert "CANCELLED" in repr(event)


class TestMakeRepeating:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            make_repeating(lambda d, f: None, 0.0, noop)

    def test_reschedules_itself(self):
        scheduled = []

        def fake_schedule(delay, fn):
            scheduled.append((delay, fn))

        calls = []
        tick = make_repeating(fake_schedule, 5.0, lambda: calls.append(1))
        tick()
        assert calls == [1]
        assert len(scheduled) == 1
        assert scheduled[0][0] == 5.0
        # the rescheduled callable is the tick itself
        scheduled[0][1]()
        assert calls == [1, 1]

    def test_stop_when_halts_rescheduling(self):
        scheduled = []
        state = {"stop": False}

        tick = make_repeating(
            lambda d, f: scheduled.append(f), 1.0, noop, stop_when=lambda: state["stop"]
        )
        tick()
        assert len(scheduled) == 1
        state["stop"] = True
        scheduled[0]()
        assert len(scheduled) == 1  # no further reschedule
