"""Unit and property tests for repro.des.rng."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.rng import (
    RandomRoot,
    RandomStream,
    default_root,
    derive_seed,
    spawn_replication_root,
)


class TestDerivation:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_different_names_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(41, "a") != derive_seed(42, "a")

    def test_streams_are_reproducible(self):
        root = RandomRoot(7)
        a = [root.stream("x").uniform() for _ in range(3)]
        b = [root.stream("x").uniform() for _ in range(3)]
        assert a == b

    def test_new_stream_does_not_perturb_existing(self):
        root = RandomRoot(7)
        s1 = root.stream("x")
        first = s1.uniform()
        root2 = RandomRoot(7)
        s2 = root2.stream("x")
        root2.stream("brand-new")  # extra stream must not shift x's draws
        assert s2.uniform() == first

    def test_spawn_creates_independent_root(self):
        root = RandomRoot(7)
        child = root.spawn("rep1")
        assert child.seed != root.seed
        assert child.stream("x").uniform() != root.stream("x").uniform()

    def test_replication_roots_distinct(self):
        a = spawn_replication_root(100, 0)
        b = spawn_replication_root(100, 1)
        assert a.seed != b.seed

    def test_replication_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_replication_root(100, -1)

    def test_default_root_is_stable(self):
        assert default_root().seed == default_root().seed
        assert default_root(5).seed == 5

    def test_streams_bulk(self):
        root = RandomRoot(7)
        streams = root.streams(["a", "b"])
        assert [s.name for s in streams] == ["a", "b"]


class TestDistributions:
    def setup_method(self):
        self.stream = RandomStream(12345, name="test")

    def test_uniform_within_bounds(self):
        for _ in range(200):
            v = self.stream.uniform(2.0, 5.0)
            assert 2.0 <= v < 5.0

    def test_randint_inclusive(self):
        values = {self.stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_requires_non_empty(self):
        with pytest.raises(ValueError, match="empty"):
            self.stream.choice([])

    def test_sample_clamps_oversized_k(self):
        out = self.stream.sample([1, 2, 3], 10)
        assert sorted(out) == [1, 2, 3]

    def test_sample_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            self.stream.sample([1], -1)

    def test_sample_draws_distinct_elements(self):
        out = self.stream.sample(list(range(100)), 10)
        assert len(out) == len(set(out)) == 10

    def test_exponential_mean_roughly_matches(self):
        n = 4000
        mean = sum(self.stream.exponential(10.0) for _ in range(n)) / n
        assert 9.0 < mean < 11.0

    def test_exponential_rejects_non_positive_mean(self):
        with pytest.raises(ValueError, match="positive"):
            self.stream.exponential(0.0)

    def test_lognormal_mean_roughly_matches(self):
        n = 4000
        mean = sum(self.stream.lognormal(30.0, 0.5) for _ in range(n)) / n
        assert 27.0 < mean < 33.0

    def test_lognormal_zero_cv_is_deterministic(self):
        assert self.stream.lognormal(30.0, 0.0) == 30.0

    def test_lognormal_validation(self):
        with pytest.raises(ValueError, match="positive"):
            self.stream.lognormal(-1.0, 0.5)
        with pytest.raises(ValueError, match="non-negative"):
            self.stream.lognormal(1.0, -0.5)

    def test_pareto_bounded_below(self):
        for _ in range(200):
            assert self.stream.pareto(2.5, minimum=4.0) >= 4.0

    def test_pareto_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            self.stream.pareto(0.0)
        with pytest.raises(ValueError, match="minimum"):
            self.stream.pareto(2.0, minimum=0.0)

    def test_zipf_weights_sum_to_one_and_decrease(self):
        weights = self.stream.zipf_weights(5, 1.0)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert weights == sorted(weights, reverse=True)

    def test_zipf_zero_skew_uniform(self):
        weights = self.stream.zipf_weights(4, 0.0)
        assert all(abs(w - 0.25) < 1e-12 for w in weights)

    def test_zipf_validation(self):
        with pytest.raises(ValueError, match="rank"):
            self.stream.zipf_weights(0, 1.0)
        with pytest.raises(ValueError, match="skew"):
            self.stream.zipf_weights(3, -1.0)

    def test_weighted_choice_respects_zero_weight(self):
        for _ in range(100):
            assert self.stream.weighted_choice(["a", "b"], [1.0, 0.0]) == "a"

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError, match="length"):
            self.stream.weighted_choice(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="empty"):
            self.stream.weighted_choice([], [])
        with pytest.raises(ValueError, match="positive"):
            self.stream.weighted_choice(["a"], [0.0])

    def test_weighted_choice_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="negative"):
            self.stream.weighted_choice(["a", "b"], [2.0, -1.0])

    def test_bernoulli_bounds(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            self.stream.bernoulli(1.5)

    def test_bernoulli_extremes(self):
        assert not any(self.stream.bernoulli(0.0) for _ in range(50))
        assert all(self.stream.bernoulli(1.0) for _ in range(50))

    def test_shuffle_preserves_elements(self):
        items = list(range(20))
        shuffled = list(items)
        self.stream.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestProperties:
    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
    @settings(max_examples=50)
    def test_derive_seed_is_64_bit(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64

    @given(st.floats(min_value=0.01, max_value=1e3))
    @settings(max_examples=50)
    def test_exponential_non_negative(self, mean):
        stream = RandomStream(1)
        assert stream.exponential(mean) >= 0.0

    @given(
        st.floats(min_value=0.01, max_value=1e3),
        st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50)
    def test_lognormal_positive(self, mean, cv):
        stream = RandomStream(1)
        assert stream.lognormal(mean, cv) > 0.0


class TestSampleReplica:
    """RandomStream.sample inlines CPython's random.sample algorithm
    (one fewer function frame per drawn index on the mediation hot
    path); it must stay draw-for-draw identical to the stdlib."""

    def test_matches_stdlib_across_sizes_and_seeds(self):
        import random as stdlib_random

        for seed in range(25):
            # n crosses the pool/selection-set threshold (85 for k=20),
            # k crosses the setsize branch at k=5.
            for n in (0, 1, 2, 5, 8, 20, 21, 50, 84, 85, 86, 120, 300):
                for k in (0, 1, 2, 5, 6, 10, 20, 40):
                    if k > n:
                        continue
                    ours = RandomStream(seed).sample(list(range(n)), k)
                    theirs = stdlib_random.Random(seed).sample(
                        list(range(n)), k
                    )
                    assert ours == theirs, (seed, n, k)

    def test_consumes_the_same_randomness(self):
        """Draws after a sample must line up with the stdlib's state."""
        import random as stdlib_random

        ours = RandomStream(99)
        theirs = stdlib_random.Random(99)
        ours.sample(list(range(100)), 10)
        theirs.sample(list(range(100)), 10)
        assert ours.uniform(0, 1) == theirs.uniform(0, 1)

    def test_clamps_oversized_k(self):
        stream = RandomStream(1)
        assert sorted(stream.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            RandomStream(1).sample([1, 2, 3], -1)

    def test_accepts_tuples(self):
        assert set(RandomStream(5).sample((1, 2, 3, 4), 2)) <= {1, 2, 3, 4}
