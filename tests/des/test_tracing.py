"""Unit tests for repro.des.tracing."""

import pytest

from repro.des.tracing import NULL_RECORDER, TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_records_events(self):
        trace = TraceRecorder()
        trace.record(1.0, "alloc", "query 1 allocated", qid=1)
        assert len(trace) == 1
        event = trace.events[0]
        assert event.time == 1.0
        assert event.category == "alloc"
        assert event.data == {"qid": 1}

    def test_disabled_recorder_drops_everything(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, "alloc", "x")
        assert len(trace) == 0

    def test_null_recorder_is_disabled(self):
        NULL_RECORDER.record(1.0, "x", "y")
        assert len(NULL_RECORDER) == 0

    def test_category_filter(self):
        trace = TraceRecorder(categories=["keep"])
        trace.record(1.0, "keep", "a")
        trace.record(2.0, "drop", "b")
        assert [e.category for e in trace] == ["keep"]

    def test_by_category(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", "first")
        trace.record(2.0, "b", "second")
        trace.record(3.0, "a", "third")
        assert [e.message for e in trace.by_category("a")] == ["first", "third"]
        assert trace.categories() == {"a", "b"}

    def test_ring_buffer_capacity(self):
        trace = TraceRecorder(capacity=3)
        for i in range(5):
            trace.record(float(i), "c", f"event{i}")
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.message for e in trace] == ["event2", "event3", "event4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="positive"):
            TraceRecorder(capacity=0)

    def test_clear(self):
        trace = TraceRecorder(capacity=1)
        trace.record(1.0, "c", "a")
        trace.record(2.0, "c", "b")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_events_returns_copy(self):
        trace = TraceRecorder()
        trace.record(1.0, "c", "a")
        trace.events.clear()
        assert len(trace) == 1


class TestFormatting:
    def test_event_format_includes_data(self):
        event = TraceEvent(1.5, "alloc", "hello", {"b": 2, "a": 1})
        text = event.format()
        assert "alloc" in text
        assert "hello" in text
        assert "[a=1, b=2]" in text  # sorted keys

    def test_recorder_format_limit(self):
        trace = TraceRecorder()
        for i in range(5):
            trace.record(float(i), "c", f"e{i}")
        assert trace.format(limit=2).count("\n") == 1
