"""Unit tests for repro.des.scheduler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.scheduler import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=7.5).now == 7.5

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule_at(3.0, lambda: None)
        sim.run()
        assert sim.now == 3.0

    def test_run_until_advances_to_horizon_even_without_events(self, sim):
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_run_until_rejects_past_horizon(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError, match="before current time"):
            sim.run_until(5.0)


class TestScheduling:
    def test_schedule_in_past_raises(self, sim):
        sim.run_until(10.0)
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule_at(9.0, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError, match="non-negative"):
            sim.schedule_in(-1.0, lambda: None)

    def test_schedule_at_current_instant_allowed(self, sim):
        fired = []
        sim.schedule_in(0.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule_at(5.0, lambda: order.append("b"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, sim):
        order = []
        for tag in "abcde":
            sim.schedule_at(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == list("abcde")

    def test_priority_overrides_fifo_at_same_time(self, sim):
        order = []
        sim.schedule_at(1.0, lambda: order.append("late"), priority=1)
        sim.schedule_at(1.0, lambda: order.append("early"), priority=-1)
        sim.run()
        assert order == ["early", "late"]

    def test_callbacks_can_schedule_more_events(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule_in(1.0, lambda: order.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_arbitrary_schedules_fire_in_sorted_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.events_fired == 0

    def test_cancelling_one_of_many(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        handle = sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        handle.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_events_pending_excludes_cancelled(self, sim):
        sim.schedule_at(1.0, lambda: None)
        handle = sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert sim.events_pending == 1


class TestRunModes:
    def test_step_fires_exactly_one_event(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_peek_time_shows_next_live_event(self, sim):
        assert sim.peek_time() is None
        handle = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.peek_time() == 1.0
        handle.cancel()
        assert sim.peek_time() == 2.0

    def test_run_until_leaves_future_events_queued(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(5.0, lambda: fired.append("b"))
        sim.run_until(3.0)
        assert fired == ["a"]
        assert sim.events_pending == 1
        sim.run_until(10.0)
        assert fired == ["a", "b"]

    def test_run_returns_fired_count(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run() == 3

    def test_max_events_guards_runaway_loops(self, sim):
        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_reentrant_run_raises(self, sim):
        def nested():
            sim.run()

        sim.schedule_at(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrantly"):
            sim.run()

    def test_events_fired_counter_accumulates(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.events_fired == 2

    def test_repr_mentions_state(self, sim):
        sim.schedule_at(1.0, lambda: None)
        text = repr(sim)
        assert "pending=1" in text


class TestPostInBatch:
    def test_matches_sequential_post_in(self, sim):
        """Batched insertion fires the same actions at the same times in
        the same order as the equivalent post_in sequence."""
        from repro.des.scheduler import Simulator

        items = [(2.0, "a"), (0.5, "b"), (2.0, "c"), (0.0, "d"), (0.5, "e")]

        def _trace(simulator, post):
            fired = []
            post(simulator, [
                (delay, (lambda t=tag: fired.append((simulator.now, t))))
                for delay, tag in items
            ])
            simulator.run()
            return fired

        def _one_by_one(simulator, entries):
            for delay, action in entries:
                simulator.post_in(delay, action)

        def _batched(simulator, entries):
            simulator.post_in_batch(entries)

        assert _trace(Simulator(), _one_by_one) == _trace(sim, _batched)

    def test_same_instant_preserves_submission_order(self, sim):
        fired = []
        sim.post_in_batch(
            (1.0, (lambda i=i: fired.append(i))) for i in range(20)
        )
        sim.run()
        assert fired == list(range(20))

    def test_interleaves_with_existing_events(self, sim):
        fired = []
        sim.schedule_at(1.5, lambda: fired.append("scheduled"))
        sim.post_in_batch([(1.0, lambda: fired.append("early")),
                           (2.0, lambda: fired.append("late"))])
        sim.run()
        assert fired == ["early", "scheduled", "late"]

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError, match="non-negative"):
            sim.post_in_batch([(1.0, lambda: None), (-0.1, lambda: None)])

    def test_empty_batch_is_noop(self, sim):
        sim.post_in_batch([])
        assert sim.run() == 0

    def test_large_batch_heapify_path(self, sim):
        """A batch larger than the existing heap takes the extend +
        heapify path; order must still be (time, submission)."""
        fired = []
        sim.schedule_at(0.25, lambda: fired.append(-1))
        sim.post_in_batch(
            ((i % 7) * 0.1, (lambda i=i: fired.append(i))) for i in range(50)
        )
        sim.run()
        # within each delay bucket, submission order; buckets by time
        by_time = sorted(
            range(50), key=lambda i: ((i % 7) * 0.1, i)
        )
        reference = (
            [i for i in by_time if (i % 7) * 0.1 < 0.25]
            + [-1]
            + [i for i in by_time if (i % 7) * 0.1 > 0.25]
        )
        assert fired == reference
