"""Unit tests for repro.des.network."""

import pytest

from repro.des.entity import Entity, RecordingEntity
from repro.des.network import (
    FixedLatency,
    Message,
    Network,
    UniformLatency,
    ZeroLatency,
)
from repro.des.rng import RandomStream


class TestLatencyModels:
    def test_zero_latency(self, sim):
        a, b = Entity(sim, "a"), Entity(sim, "b")
        assert ZeroLatency().delay(a, b) == 0.0

    def test_fixed_latency(self, sim):
        a, b = Entity(sim, "a"), Entity(sim, "b")
        assert FixedLatency(0.5).delay(a, b) == 0.5

    def test_fixed_latency_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            FixedLatency(-0.1)

    def test_uniform_latency_in_range(self, sim):
        a, b = Entity(sim, "a"), Entity(sim, "b")
        model = UniformLatency(0.1, 0.3, RandomStream(1))
        for _ in range(100):
            assert 0.1 <= model.delay(a, b) <= 0.3

    def test_uniform_latency_degenerate_range(self, sim):
        a, b = Entity(sim, "a"), Entity(sim, "b")
        model = UniformLatency(0.2, 0.2, RandomStream(1))
        assert model.delay(a, b) == 0.2

    def test_uniform_latency_validation(self):
        with pytest.raises(ValueError, match="low <= high"):
            UniformLatency(0.5, 0.1, RandomStream(1))
        with pytest.raises(ValueError, match="low <= high"):
            UniformLatency(-0.1, 0.5, RandomStream(1))


class TestNetworkDelivery:
    def test_zero_latency_delivers_same_instant(self, sim):
        network = Network(sim)
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        message = network.send("ping", sender, sink, payload="x")
        assert message.delivered_at == message.sent_at == 0.0
        sim.run()
        assert sink.payloads() == ["x"]

    def test_fixed_latency_delays_delivery(self, sim):
        network = Network(sim, FixedLatency(2.5))
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        network.send("ping", sender, sink)
        sim.run()
        assert sim.now == 2.5
        assert sink.inbox[0].latency == 2.5

    def test_counters_track_sends_and_deliveries(self, sim):
        network = Network(sim, FixedLatency(1.0))
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        network.send("a", sender, sink)
        network.send("b", sender, sink)
        assert network.messages_sent == 2
        assert network.messages_delivered == 0
        sim.run()
        assert network.messages_delivered == 2

    def test_message_fields(self, sim):
        network = Network(sim, FixedLatency(1.0))
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        sim.run_until(5.0)
        message = network.send("kind", sender, sink, payload=42)
        assert message.kind == "kind"
        assert message.sender is sender
        assert message.recipient is sink
        assert message.payload == 42
        assert message.sent_at == 5.0
        assert message.delivered_at == 6.0

    def test_negative_model_delay_rejected(self, sim):
        class Broken:
            def delay(self, s, r):
                return -1.0

        network = Network(sim, Broken())
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        with pytest.raises(ValueError, match="negative delay"):
            network.send("x", sender, sink)

    def test_in_flight_message_survives_sender_state_change(self, sim):
        """A message sent before a provider leaves still arrives."""
        network = Network(sim, FixedLatency(1.0))
        sender = Entity(sim, "s")
        sink = RecordingEntity(sim, "r")
        network.send("x", sender, sink)
        # mutate the sender before delivery; delivery must still happen
        sender.name = "renamed"
        sim.run()
        assert len(sink.inbox) == 1
