"""Whole-system property tests.

Hypothesis generates small random systems -- arbitrary preference
matrices, capacities, policies, workloads -- and every one of them must
uphold the global invariants no matter what: satisfactions stay in
[0, 1], queries are conserved, allocations stay inside the capable set,
SQLB score signs follow the intention signs, and seeded runs replay
bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.factory import make_policy
from repro.core.mediator import Mediator
from repro.core.sbqa import SbQAConfig
from repro.des.network import Network, UniformLatency
from repro.des.rng import RandomRoot
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.registry import SystemRegistry
from repro.system.query import reset_query_counter

POLICIES = ("sbqa", "capacity", "economic", "random", "round-robin", "shortest-queue")


@st.composite
def system_specs(draw):
    """A compact random system description."""
    n_providers = draw(st.integers(min_value=1, max_value=8))
    n_consumers = draw(st.integers(min_value=1, max_value=3))
    policy = draw(st.sampled_from(POLICIES))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    prefs = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0),
            min_size=n_providers * n_consumers * 2,
            max_size=n_providers * n_consumers * 2,
        )
    )
    capacities = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=4.0),
            min_size=n_providers,
            max_size=n_providers,
        )
    )
    n_queries = draw(st.integers(min_value=1, max_value=12))
    n_results = draw(st.integers(min_value=1, max_value=3))
    return {
        "n_providers": n_providers,
        "n_consumers": n_consumers,
        "policy": policy,
        "seed": seed,
        "prefs": prefs,
        "capacities": capacities,
        "n_queries": n_queries,
        "n_results": n_results,
    }


def build_and_run(spec):
    """Wire the random system, push queries through it, run to quiet."""
    reset_query_counter()
    sim = Simulator()
    root = RandomRoot(spec["seed"])
    network = Network(sim, UniformLatency(0.0, 0.05, root.stream("latency")))
    registry = SystemRegistry()

    prefs = iter(spec["prefs"])
    providers = []
    for i in range(spec["n_providers"]):
        provider = Provider(
            sim,
            network,
            participant_id=f"p{i}",
            capacity=spec["capacities"][i],
            preferences={
                f"c{j}": next(prefs) for j in range(spec["n_consumers"])
            },
        )
        providers.append(provider)
        registry.add_provider(provider)

    consumers = []
    for j in range(spec["n_consumers"]):
        consumer = Consumer(
            sim,
            network,
            participant_id=f"c{j}",
            preferences={f"p{i}": next(prefs) for i in range(spec["n_providers"])},
            default_n_results=spec["n_results"],
        )
        consumers.append(consumer)
        registry.add_consumer(consumer)

    policy = make_policy(
        spec["policy"], root, sbqa=SbQAConfig(k=4, kn=2)
    )
    mediator = Mediator(sim, network, registry, policy, keep_records=True)
    for consumer in consumers:
        consumer.attach_mediator(mediator)

    for q in range(spec["n_queries"]):
        consumer = consumers[q % len(consumers)]
        demand = 1.0 + (q % 5) * 3.0
        sim.schedule_at(
            float(q), lambda c=consumer, d=demand: c.issue(c.participant_id, d)
        )
    sim.run()
    return sim, registry, mediator, consumers, providers


class TestSystemInvariants:
    @given(system_specs())
    @settings(max_examples=25, deadline=None)
    def test_satisfactions_always_in_unit_interval(self, spec):
        _, registry, _, consumers, providers = build_and_run(spec)
        for provider in providers:
            assert 0.0 <= provider.satisfaction <= 1.0
        for consumer in consumers:
            assert 0.0 <= consumer.satisfaction <= 1.0

    @given(system_specs())
    @settings(max_examples=25, deadline=None)
    def test_queries_conserved(self, spec):
        _, _, mediator, consumers, _ = build_and_run(spec)
        issued = sum(c.stats.queries_issued for c in consumers)
        completed = sum(c.stats.queries_completed for c in consumers)
        failed = sum(c.stats.queries_failed for c in consumers)
        assert issued == spec["n_queries"]
        assert completed + failed == issued  # the run drained fully
        assert mediator.mediations == issued

    @given(system_specs())
    @settings(max_examples=25, deadline=None)
    def test_allocations_stay_inside_capable_set(self, spec):
        _, registry, mediator, _, providers = build_and_run(spec)
        provider_ids = {p.participant_id for p in providers}
        for record in mediator.records:
            allocated = set(record.allocated_ids)
            informed = set(record.informed_ids)
            assert allocated <= informed <= provider_ids
            assert len(record.allocated) <= record.query.n_results

    @given(system_specs())
    @settings(max_examples=20, deadline=None)
    def test_sbqa_score_signs_follow_intentions(self, spec):
        spec = dict(spec, policy="sbqa")
        _, _, mediator, _, _ = build_and_run(spec)
        for record in mediator.records:
            for pid, score in record.scores.items():
                pi = record.provider_intentions[pid]
                ci = record.consumer_intentions[pid]
                if pi > 0 and ci > 0:
                    assert score > 0
                else:
                    assert score <= 0

    @given(system_specs())
    @settings(max_examples=15, deadline=None)
    def test_runs_replay_identically(self, spec):
        _, _, mediator_a, consumers_a, _ = build_and_run(spec)
        _, _, mediator_b, consumers_b, _ = build_and_run(spec)
        assert [r.allocated_ids for r in mediator_a.records] == [
            r.allocated_ids for r in mediator_b.records
        ]
        assert [c.satisfaction for c in consumers_a] == [
            c.satisfaction for c in consumers_b
        ]

    @given(system_specs())
    @settings(max_examples=20, deadline=None)
    def test_network_fully_drained(self, spec):
        sim, _, _, _, providers = build_and_run(spec)
        # after run-to-quiet: no pending events, no in-flight work
        assert sim.events_pending == 0
        for provider in providers:
            assert provider.backlog_seconds == 0.0
            assert provider.queries_in_progress == 0
