"""Scoring-kernel oracle: scalar vs vectorized, randomized inputs.

The scalar Definition-3 kernel (``sqlb_score`` and the python loop of
``score_providers_batch``) is the *reference*; the vectorized numpy
backend -- the default wherever numpy imports -- must match it to
within one ulp on every input the mediation pipeline can produce,
and must reject exactly the inputs the scalar kernel rejects.

Inputs are drawn fresh every run (seeded from ``SBQA_ORACLE_SEED`` when
set, from the system entropy pool otherwise), so CI replays a new slice
of the input space on every push; a failure message always carries the
seed that produced it.
"""

import math
import os
import random

import pytest

from repro.core.knbest import KnBestSelector
from repro.core.scoring import (
    DEFAULT_EPSILON,
    ScoredProvider,
    rank_providers,
    resolve_backend,
    score_providers_batch,
    sqlb_score,
)
from repro.des.rng import RandomStream

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    HAVE_NUMPY = False

#: One seed per test session: reproducible when pinned, fresh otherwise.
ORACLE_SEED = int(
    os.environ.get("SBQA_ORACLE_SEED", "0")
) or random.SystemRandom().randrange(1, 2**31)

#: Values adjacent to the representability edges the kernel touches:
#: the branch boundary at 0, the intention extremes, and denormals.
EDGE_INTENTIONS = (
    -1.0,
    math.nextafter(-1.0, 0.0),
    -0.5,
    -5e-324,
    -0.0,
    0.0,
    5e-324,
    1e-308,
    math.nextafter(0.0, 1.0),
    0.5,
    math.nextafter(1.0, 0.0),
    1.0,
)


def assert_ulp_close(got, expected, context):
    __tracebackhide__ = True
    ok = got == expected or math.isclose(
        got, expected, rel_tol=1e-15, abs_tol=5e-324
    )
    assert ok, f"{context} (seed {ORACLE_SEED}): {got!r} != {expected!r}"


needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


@needs_numpy
class TestBatchKernelOracle:
    """score_providers_batch: vectorized vs the scalar reference."""

    def _compare(self, pis, cis, omegas, epsilon=DEFAULT_EPSILON):
        scalar = score_providers_batch(
            pis, cis, omegas, epsilon, backend="scalar"
        )
        vectorized = score_providers_batch(
            pis, cis, omegas, epsilon, backend="vectorized"
        )
        for pi, ci, omega, s, v in zip(pis, cis, omegas, scalar, vectorized):
            assert s == sqlb_score(pi, ci, omega, epsilon), (
                f"scalar backend drifted from sqlb_score "
                f"(seed {ORACLE_SEED}): {(pi, ci, omega, epsilon)}"
            )
            assert_ulp_close(v, s, f"pi={pi} ci={ci} omega={omega} eps={epsilon}")

    def test_randomized_batches(self):
        rng = random.Random(ORACLE_SEED)
        for _ in range(20):
            n = rng.randrange(1, 60)
            pis = [rng.uniform(-1.0, 1.0) for _ in range(n)]
            cis = [rng.uniform(-1.0, 1.0) for _ in range(n)]
            omegas = [rng.random() for _ in range(n)]
            epsilon = rng.choice((1e-12, 0.5, DEFAULT_EPSILON, 2.0))
            self._compare(pis, cis, omegas, epsilon)

    def test_utilization_extremes(self):
        """PI values a fully idle / fully saturated provider produces:
        the blend clamps to the [-1, 1] walls, where pow is exact."""
        rng = random.Random(ORACLE_SEED + 1)
        walls = (-1.0, 1.0)
        pis, cis, omegas = [], [], []
        for _ in range(64):
            pis.append(rng.choice(walls))
            cis.append(rng.choice(walls + (rng.uniform(-1.0, 1.0),)))
            omegas.append(rng.choice((0.0, 0.5, 1.0, rng.random())))
        self._compare(pis, cis, omegas)

    def test_edge_adjacent_values(self):
        """Denormals, signed zero, and one-ulp-off-the-wall intentions."""
        pis, cis, omegas = [], [], []
        for pi in EDGE_INTENTIONS:
            for ci in EDGE_INTENTIONS:
                pis.append(pi)
                cis.append(ci)
                omegas.append(0.25)
        self._compare(pis, cis, omegas)

    def test_empty_pool(self):
        for backend in ("scalar", "vectorized"):
            assert score_providers_batch([], [], [], backend=backend) == []

    def test_singleton_pool(self):
        rng = random.Random(ORACLE_SEED + 2)
        for _ in range(32):
            self._compare(
                [rng.uniform(-1.0, 1.0)],
                [rng.uniform(-1.0, 1.0)],
                [rng.random()],
            )

    def test_all_equal_scores_preserve_ranking_order(self):
        """A pool of identical (PI, CI, omega) rows scores identically
        under both backends, and rank_providers breaks the ties on
        participant id the same way for both score lists."""
        ids = [f"p{i:02d}" for i in range(12)]
        pis = [0.5] * len(ids)
        cis = [0.5] * len(ids)
        omegas = [0.5] * len(ids)
        scalar = score_providers_batch(pis, cis, omegas, backend="scalar")
        vectorized = score_providers_batch(
            pis, cis, omegas, backend="vectorized"
        )
        assert len(set(scalar)) == 1

        def rows(scores):
            return [
                ScoredProvider(pid, score, 0.5, 0.5, 0.5)
                for pid, score in zip(ids, scores)
            ]

        scalar_rank = rank_providers(rows(scalar))
        vector_rank = rank_providers(rows(vectorized))
        assert [r.provider_id for r in scalar_rank] == [
            r.provider_id for r in vector_rank
        ]
        assert [r.provider_id for r in scalar_rank] == ids

    def test_backend_aliases_resolve(self):
        assert resolve_backend("scalar") == resolve_backend("python")
        assert resolve_backend("vectorized") == resolve_backend("numpy")


@needs_numpy
class TestRejectionParity:
    """Regression for the numpy dtype edge: non-finite and out-of-range
    inputs must be rejected by both backends, with the same message
    vocabulary -- ``numpy.isfinite`` guards the comparisons that would
    otherwise let NaN slide through a ``<=`` range check."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf"), 1.5, -1.5])
    def test_bad_provider_intention(self, bad):
        for backend in ("scalar", "vectorized"):
            with pytest.raises(ValueError, match="provider intention"):
                score_providers_batch([bad], [0.5], [0.5], backend=backend)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf"), 2.0])
    def test_bad_consumer_intention(self, bad):
        for backend in ("scalar", "vectorized"):
            with pytest.raises(ValueError, match="consumer intention"):
                score_providers_batch([0.5], [bad], [0.5], backend=backend)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -0.5, 1.5])
    def test_bad_omega(self, bad):
        for backend in ("scalar", "vectorized"):
            with pytest.raises(ValueError, match="omega"):
                score_providers_batch([0.5], [0.5], [bad], backend=backend)

    def test_bad_value_among_good_ones(self):
        """The mask form must find one NaN hidden in a valid column."""
        pis = [0.5] * 16
        pis[11] = float("nan")
        for backend in ("scalar", "vectorized"):
            with pytest.raises(ValueError, match="provider intention"):
                score_providers_batch(
                    pis, [0.5] * 16, [0.5] * 16, backend=backend
                )


class _FakeProvider:
    __slots__ = ("participant_id", "utilization")

    def __init__(self, pid, utilization):
        self.participant_id = pid
        self.utilization = utilization


class TestKnBestOrdinalIsomorphism:
    """sample_working (provider objects, id tie-breaks) vs
    sample_working_ordinals (the SoA kernel's integer-rank form): same
    stream seed => same stage-1 draws, same stage-2 order."""

    def _population(self, rng, n, all_equal=False):
        u = rng.random()
        return [
            _FakeProvider(f"p{i:03d}", u if all_equal else rng.random())
            for i in range(n)
        ]

    @pytest.mark.parametrize("all_equal", [False, True])
    def test_orders_match(self, all_equal):
        rng = random.Random(ORACLE_SEED + 3)
        for trial in range(25):
            n = rng.randrange(1, 40)
            k = rng.randrange(1, 25)
            kn = rng.randrange(1, k + 1)
            providers = self._population(rng, n, all_equal=all_equal)
            # Ordinal ranks: position in the id-sorted order.  Providers
            # are built with sorted ids here, but shuffle the snapshot
            # order to decouple ordinal from rank.
            snapshot = providers[:]
            rng.shuffle(snapshot)
            sorted_ids = sorted(p.participant_id for p in snapshot)
            ranks = [sorted_ids.index(p.participant_id) for p in snapshot]
            draw_seed = rng.randrange(1, 2**31)
            a = KnBestSelector(k, kn, RandomStream(draw_seed))
            b = KnBestSelector(k, kn, RandomStream(draw_seed))
            k_eff_a, working, loads = a.sample_working(snapshot)
            k_eff_b, rows = b.sample_working_ordinals(snapshot, ranks)
            assert k_eff_a == k_eff_b, f"seed {ORACLE_SEED} trial {trial}"
            assert [p.participant_id for p in working] == [
                snapshot[s].participant_id for (_, _, s) in rows
            ], f"seed {ORACLE_SEED} trial {trial}"
            assert loads == [u for (u, _, _) in rows]

    def test_singleton_candidate(self):
        provider = _FakeProvider("p000", 0.3)
        selector = KnBestSelector(5, 2, RandomStream(1))
        k_eff, rows = selector.sample_working_ordinals([provider], [0])
        assert k_eff == 1
        assert rows == [(0.3, 0, 0)]
