"""Engine-level differential oracle: randomized mediation workloads.

Each case draws a workload configuration at random -- population size,
latency regime, KnBest pool shape, omega mode, churn, crashes, a
second (non-SbQA) policy that forces the per-query fallback -- and
replays it three ways:

* ``engine="fast"`` with the **fused SoA kernel** (vectorized default);
* ``engine="fast"`` with the **scalar oracle** backend
  (``SBQA_SCORING_BACKEND=scalar``), i.e. the select_fast/_commit
  reference path the fused kernel must reproduce;
* ``engine="event"``, the event-faithful core.

All three ``ExperimentResult`` JSON digests must be byte-identical.
The case generator is seeded from ``SBQA_ORACLE_SEED`` when set and
from system entropy otherwise, so CI sweeps a fresh slice of the
workload space on every run while any failure stays reproducible from
the seed in its message.
"""

import os
import random

import pytest

import repro.core.scoring as scoring
from repro.api.builder import Experiment
from repro.api.session import Session

ORACLE_SEED = int(
    os.environ.get("SBQA_ORACLE_SEED", "0")
) or random.SystemRandom().randrange(1, 2**31)

N_CASES = 5

LATENCIES = {
    "zero": (0.0, 0.0),
    "fixed": (0.05, 0.05),  # the collapsed-dispatch / fused path
    "uniform": (0.02, 0.08),  # random latency: fused gate stays off
}


def _draw_cases():
    rng = random.Random(ORACLE_SEED)
    cases = []
    for index in range(N_CASES):
        k = rng.randrange(4, 21)
        sbqa = {"k": k, "kn": rng.randrange(1, k + 1)}
        if rng.random() < 0.4:
            sbqa["omega"] = round(rng.uniform(0.0, 1.0), 3)
        cases.append(
            {
                "index": index,
                "seed": rng.randrange(1, 2**31),
                "duration": rng.choice((150.0, 200.0, 250.0)),
                "providers": rng.randrange(16, 48),
                "latency": rng.choice(tuple(LATENCIES)),
                "sbqa": sbqa,
                "extra_policy": rng.random() < 0.5,
                "autonomous": rng.random() < 0.5,
                "failures": rng.random() < 0.4,
            }
        )
    return cases


CASES = _draw_cases()


def _case_digest(case, engine, backend):
    previous = scoring._DEFAULT_BACKEND
    scoring._DEFAULT_BACKEND = backend
    try:
        builder = (
            Experiment.builder()
            .named(f"oracle-case-{case['index']}")
            .seed(case["seed"])
            .duration(case["duration"])
            .providers(case["providers"])
            .engine(engine)
            .latency(*LATENCIES[case["latency"]])
            .policy("sbqa", **case["sbqa"])
        )
        if case["extra_policy"]:
            builder.policy("capacity")
        if case["autonomous"]:
            builder.autonomous()
        if case["failures"]:
            builder.failures(
                mttf=1200.0, repair_time=60.0, result_timeout=240.0
            )
        return Session(builder.build()).run(keep_runs=False).to_json()
    finally:
        scoring._DEFAULT_BACKEND = previous


@pytest.mark.parametrize("case", CASES, ids=[f"case{c['index']}" for c in CASES])
def test_fused_scalar_and_event_digests_agree(case):
    fused = _case_digest(case, "fast", "numpy")
    scalar = _case_digest(case, "fast", "python")
    event = _case_digest(case, "event", "python")
    context = f"seed {ORACLE_SEED}, case {case}"
    assert fused == scalar, f"fused kernel diverged from scalar oracle: {context}"
    assert scalar == event, f"fast engine diverged from event engine: {context}"
