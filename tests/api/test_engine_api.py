"""The engine knob across the API layers (spec / builder / sessions).

The engine selects *how* a spec executes, never *what* it produces, so
it behaves like ``SweepResult.parallel``: settable everywhere, honored
by every execution path, and absent from every serialized digest.
"""

import json

import pytest

from repro.api.builder import Experiment
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.api.sweep import SweepSession, SweepSpec
from repro.experiments.config import PolicySpec


def tiny_spec(engine="fast", **kwargs):
    return (
        Experiment.builder()
        .named("engine-api")
        .seed(7)
        .duration(kwargs.pop("duration", 120.0))
        .providers(12)
        .policy("sbqa", kn=3, k=6)
        .engine(engine)
        .build()
    )


class TestSpecEngineField:
    def test_default_and_builder(self):
        assert ExperimentSpec().engine == "fast"
        assert tiny_spec("event").engine == "event"
        assert tiny_spec("event").to_config().engine == "event"

    def test_invalid_engine_rejected_at_build(self):
        with pytest.raises(ValueError, match="unknown engine"):
            tiny_spec("warp")

    def test_to_dict_omits_engine(self):
        """Execution metadata stays out of the serialized form, so the
        digests of both engines can be byte-compared."""
        for engine in ("fast", "event"):
            data = tiny_spec(engine).to_dict()
            assert "engine" not in data

    def test_from_dict_accepts_engine(self):
        data = tiny_spec().to_dict()
        data["engine"] = "event"
        assert ExperimentSpec.from_dict(data).engine == "event"

    def test_derive_preserves_engine(self):
        spec = tiny_spec("event")
        derived = spec.derive({"duration": 60.0})
        assert derived.engine == "event"
        assert derived.duration == 60.0

    def test_sweep_points_inherit_base_engine(self):
        sweep = SweepSpec(
            name="engine-sweep",
            base=tiny_spec("event"),
            axes=({"path": "sbqa.kn", "values": [2, 3]},),
        )
        assert all(p.spec.engine == "event" for p in sweep.points())


class TestExecutionParity:
    """Engine-independent digests through the session layers."""

    def test_session_digest_engine_independent(self):
        fast = Session(tiny_spec("fast")).run(keep_runs=False).to_json()
        event = Session(tiny_spec("event")).run(keep_runs=False).to_json()
        assert fast == event

    def test_parallel_workers_honor_the_engine(self):
        """Parallel events run the session's engine even though the
        shipped spec dict omits it by default (explicit injection)."""
        spec = tiny_spec("event")
        serial = Session(spec).run(keep_runs=False).to_dict()
        parallel = Session(spec).run(parallel=True, max_workers=2).to_dict()
        serial.pop("parallel")
        parallel.pop("parallel")
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_sweep_digest_engine_independent(self):
        def sweep_for(engine):
            return SweepSpec(
                name="engine-sweep",
                base=tiny_spec(engine, duration=90.0),
                axes=({"path": "sbqa.kn", "values": [2, 4]},),
            )

        fast = SweepSession(sweep_for("fast")).run().to_json()
        event = SweepSession(sweep_for("event")).run().to_json()
        assert fast == event


class TestSweepKeepRecordsDefault:
    """Satellite: grid runs stop retaining AllocationRecords unless the
    RunResults themselves are kept."""

    def _sweep(self, keep_runs):
        base = (
            Experiment.builder()
            .named("records")
            .seed(3)
            .duration(60.0)
            .providers(10)
            .policy("sbqa", kn=2, k=4)
            .keep_records()  # old default behaviour, explicit
            .build()
        )
        return SweepSpec(
            name="records",
            base=base,
            axes=({"path": "sbqa.kn", "values": [2, 3]},),
            keep_runs=keep_runs,
        )

    def test_records_dropped_without_keep_runs(self, monkeypatch):
        from repro.api import sweep as sweep_module

        seen_keep_records = []
        original = sweep_module.run_once

        def spy(config, policy, replication=0):
            seen_keep_records.append(config.keep_records)
            return original(config, policy, replication=replication)

        monkeypatch.setattr(sweep_module, "run_once", spy)
        SweepSession(self._sweep(keep_runs=False)).run()
        assert seen_keep_records and not any(seen_keep_records)

    def test_keep_runs_keeps_the_old_behaviour(self):
        result = SweepSession(self._sweep(keep_runs=True)).run(keep_runs=True)
        run = result.points[0].policies[0].runs[0]
        assert run.mediator.keep_records
        assert run.mediator.records  # AllocationRecords retained

    def test_digest_independent_of_keep_records(self):
        """Dropping record retention must not change any result."""
        with_records = SweepSession(self._sweep(keep_runs=True)).run(
            keep_runs=True
        )
        without = SweepSession(self._sweep(keep_runs=False)).run()
        # keep_runs flag lives in the spec -> normalise it before diffing.
        a = with_records.to_dict()
        b = without.to_dict()
        a["sweep"]["keep_runs"] = b["sweep"]["keep_runs"]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
