"""ExperimentSpec: validation, canonicalization, (de)serialization."""

import dataclasses
import json

import pytest

from repro.api.presets import available_scenarios, scenario_spec
from repro.api.spec import ExperimentSpec
from repro.core.intentions import (
    LoadOnlyIntentions,
    ReputationBlendIntentions,
)
from repro.core.sbqa import SbQAConfig
from repro.experiments.config import AutonomyConfig, PolicySpec
from repro.system.failures import FailureConfig
from repro.workloads.boinc import (
    BoincScenarioParams,
    FocalConsumerSpec,
    FocalProviderSpec,
)


def _rich_spec() -> ExperimentSpec:
    """A spec exercising every optional branch of the serializer."""
    return ExperimentSpec(
        name="rich",
        seed=99,
        duration=300.0,
        sample_interval=5.0,
        population=BoincScenarioParams(
            n_providers=30,
            demand_distribution="pareto",
            demand_mean=30.0,
            pareto_minimum=10.0,
            memory_jitter=0.2,
            quorum=1,
            consumer_intentions=ReputationBlendIntentions(alpha=0.7),
            provider_intentions=LoadOnlyIntentions(),
            focal_provider=FocalProviderSpec(loves="proteins"),
            focal_consumer=FocalConsumerSpec(n_trusted=5),
        ),
        autonomy=AutonomyConfig(mode="autonomous", rejoin_cooldown=60.0),
        latency_low=0.01,
        latency_high=0.05,
        failures=FailureConfig(mttf=500.0, repair_time=None, start=30.0),
        result_timeout=200.0,
        adequation_over_candidates=True,
        keep_records=True,
        track_provider_snapshots=True,
        policies=(
            PolicySpec(name="sbqa", label="sbqa[kn=3]", sbqa=SbQAConfig(kn=3)),
            PolicySpec(name="economic", params={"selfishness": 0.8}),
            PolicySpec(name="capacity"),
        ),
        replications=4,
    )


class TestRoundTrip:
    def test_dict_round_trip_identity(self):
        spec = _rich_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_identity(self):
        spec = _rich_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_default_spec_round_trips(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = _rich_spec()
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec

    def test_to_dict_is_json_clean(self):
        # No dataclass instances or other non-JSON types leak through.
        text = json.dumps(_rich_spec().to_dict())
        assert "sbqa[kn=3]" in text

    def test_preset_specs_round_trip(self):
        for scenario_id in available_scenarios():
            spec = scenario_spec(scenario_id, duration=300.0, n_providers=20)
            assert ExperimentSpec.from_dict(spec.to_dict()) == spec, scenario_id

    def test_round_trip_config_equivalence(self):
        """The reconstructed spec realizes an identical ExperimentConfig."""
        spec = _rich_spec()
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.to_config() == spec.to_config()


class TestCanonicalization:
    def test_intention_models_normalize_to_dicts(self):
        spec = ExperimentSpec(
            population=BoincScenarioParams(
                n_providers=10,
                consumer_intentions=ReputationBlendIntentions(alpha=0.4),
                provider_intentions="load-only",
            )
        )
        assert spec.population.consumer_intentions == {
            "model": "reputation-blend",
            "alpha": 0.4,
        }
        assert spec.population.provider_intentions == {"model": "load-only"}

    def test_equivalent_inputs_compare_equal(self):
        by_object = ExperimentSpec(
            population=BoincScenarioParams(
                n_providers=10, provider_intentions=LoadOnlyIntentions()
            )
        )
        by_name = ExperimentSpec(
            population=BoincScenarioParams(
                n_providers=10, provider_intentions="load-only"
            )
        )
        assert by_object == by_name

    def test_custom_model_rejected(self):
        class Custom(ReputationBlendIntentions):
            pass

        # Subclasses serialize as their nearest registered base; a truly
        # foreign object raises.
        with pytest.raises(TypeError):
            ExperimentSpec(
                population=BoincScenarioParams(
                    n_providers=10, consumer_intentions=object()
                )
            )


class TestValidation:
    def test_needs_a_policy(self):
        with pytest.raises(ValueError, match="at least one policy"):
            ExperimentSpec(policies=())

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ExperimentSpec(
                policies=(PolicySpec(name="sbqa"), PolicySpec(name="sbqa"))
            )

    def test_replications_positive(self):
        with pytest.raises(ValueError, match="replication"):
            ExperimentSpec(replications=0)

    def test_config_invariants_surface_at_construction(self):
        # failures without a result_timeout is invalid at the config
        # layer; the spec refuses it eagerly.
        with pytest.raises(ValueError, match="result_timeout"):
            ExperimentSpec(failures=FailureConfig(mttf=100.0))

    def test_unknown_spec_key_rejected(self):
        data = ExperimentSpec().to_dict()
        data["durration"] = 100.0
        with pytest.raises(ValueError, match="durration"):
            ExperimentSpec.from_dict(data)

    def test_unknown_population_key_rejected(self):
        data = ExperimentSpec().to_dict()
        data["population"]["n_provider"] = 5
        with pytest.raises(ValueError, match="n_provider"):
            ExperimentSpec.from_dict(data)

    def test_unsupported_version_rejected(self):
        data = ExperimentSpec().to_dict()
        data["spec_version"] = 999
        with pytest.raises(ValueError, match="spec_version"):
            ExperimentSpec.from_dict(data)


class TestBridges:
    def test_to_config_mirrors_fields(self):
        spec = _rich_spec()
        config = spec.to_config()
        for f in dataclasses.fields(config):
            assert getattr(config, f.name) == getattr(spec, f.name), f.name

    def test_from_config_round_trip(self):
        spec = _rich_spec()
        lifted = ExperimentSpec.from_config(
            spec.to_config(), spec.policies, replications=spec.replications
        )
        assert lifted == spec

    def test_policy_lookup(self):
        spec = _rich_spec()
        assert spec.policy("capacity").name == "capacity"
        with pytest.raises(KeyError):
            spec.policy("nope")


class TestPresets:
    def test_all_scenarios_have_presets(self):
        assert available_scenarios() == tuple(
            f"scenario{i}" for i in range(1, 8)
        )

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="scenario99"):
            scenario_spec("scenario99")

    def test_autonomy_follows_duration(self):
        spec = scenario_spec("scenario4", duration=800.0)
        assert spec.autonomy.mode == "autonomous"
        assert spec.autonomy.warmup == pytest.approx(100.0)

    def test_scenario2_tracks_snapshots(self):
        assert scenario_spec("scenario2").track_provider_snapshots

    def test_scenario6_k_parameter(self):
        spec = scenario_spec("scenario6", k=8)
        labels = [p.label for p in spec.policies]
        assert "sbqa[kn=8]" in labels and "sbqa[kn=1]" in labels

    def test_population_overrides_forwarded(self):
        spec = scenario_spec("scenario3", n_providers=42, memory=50)
        assert spec.population.n_providers == 42
        assert spec.population.memory == 50
