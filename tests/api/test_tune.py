"""Tune subsystem: specs, racing, elimination honesty, parity, budget."""

import json
import os
import subprocess
import sys

import pytest

from repro.api.builder import Experiment
from repro.api.sweep import SweepAxis, SweepSession, SweepSpec
from repro.api.tune import (
    TuneRunEvent,
    TuneRungEvent,
    TuneSession,
    TuneSpec,
    TuneStopEvent,
    default_rungs,
)
from repro.analysis.stats import mean


def small_base(replications=3, policies=("sbqa",), duration=60.0):
    builder = (
        Experiment.builder()
        .named("tune-test")
        .seed(11)
        .duration(duration)
        .providers(10)
    )
    for name in policies:
        builder.policy(name)
    return builder.replications(replications).build()


def small_sweep(replications=3, policies=("sbqa",), axes=None):
    if axes is None:
        axes = (SweepAxis("sbqa.kn", (1, 5)),)
    return SweepSpec(
        name="tune-test-grid",
        base=small_base(replications=replications, policies=policies),
        axes=axes,
    )


class TestDefaultRungs:
    def test_halving_geometry(self):
        assert default_rungs(1) == (1,)
        assert default_rungs(2) == (2,)
        assert default_rungs(3) == (2, 3)
        assert default_rungs(4) == (2, 4)
        assert default_rungs(6) == (2, 3, 6)
        assert default_rungs(8) == (2, 4, 8)

    def test_spec_uses_default_when_unset(self):
        spec = TuneSpec(sweep=small_sweep(replications=6))
        assert spec.rungs == (2, 3, 6)


class TestTuneSpecValidation:
    def test_needs_a_sweep(self):
        with pytest.raises(TypeError, match="SweepSpec"):
            TuneSpec(sweep=small_base())

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="not an aggregated metric"):
            TuneSpec(sweep=small_sweep(), objective="consumer_sat")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="maximize"):
            TuneSpec(sweep=small_sweep(), direction="up")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="not in the base experiment"):
            TuneSpec(sweep=small_sweep(), policy="economic")

    def test_rungs_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            TuneSpec(sweep=small_sweep(), rungs=(2, 2, 3))

    def test_final_rung_must_complete_the_experiment(self):
        with pytest.raises(ValueError, match="final rung must equal"):
            TuneSpec(sweep=small_sweep(replications=4), rungs=(2, 3))

    def test_alpha_range(self):
        with pytest.raises(ValueError, match="alpha"):
            TuneSpec(sweep=small_sweep(), alpha=0.0)

    def test_replications_and_policies_axes_rejected(self):
        # the rung schedule and objective policy are defined against the
        # base; a grid that varies either has no coherent race
        cases = (
            SweepAxis("replications", (1, 2)),
            SweepAxis("policies", ([{"name": "capacity"}],)),
        )
        for axis in cases:
            sweep = SweepSpec(
                base=small_base(replications=2),
                axes=(SweepAxis("sbqa.kn", (1, 5)), axis),
            )
            with pytest.raises(ValueError, match="cannot race a grid"):
                TuneSpec(sweep=sweep)

    def test_budget_must_cover_the_first_rung(self):
        # 2 points x 2 replications at rung 0 = 4 runs minimum
        with pytest.raises(ValueError, match="cannot cover the first rung"):
            TuneSpec(sweep=small_sweep(), budget=3)

    def test_direction_resolution(self):
        assert not TuneSpec(sweep=small_sweep()).minimizes  # satisfaction
        assert TuneSpec(sweep=small_sweep(), objective="mean_rt").minimizes
        forced = TuneSpec(
            sweep=small_sweep(), objective="mean_rt", direction="maximize"
        )
        assert not forced.minimizes

    def test_objective_policy_defaults_to_first(self):
        spec = TuneSpec(sweep=small_sweep(policies=("capacity", "sbqa")))
        assert spec.objective_policy.label == "capacity"
        chosen = TuneSpec(
            sweep=small_sweep(policies=("capacity", "sbqa")), policy="sbqa"
        )
        assert chosen.objective_policy_index == 1


class TestRoundTrip:
    def spec(self):
        return TuneSpec(
            name="rt",
            sweep=small_sweep(replications=3, policies=("sbqa", "capacity")),
            objective="mean_rt",
            direction="minimize",
            policy="sbqa",
            budget=20,
            rungs=(2, 3),
            alpha=0.1,
        )

    def test_json_round_trip_is_identity(self):
        spec = self.spec()
        assert TuneSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = self.spec()
        path = spec.save(tmp_path / "tune.json")
        assert TuneSpec.load(path) == spec

    def test_unknown_version_rejected(self):
        data = self.spec().to_dict()
        data["tune_version"] = 99
        with pytest.raises(ValueError, match="unsupported tune_version"):
            TuneSpec.from_dict(data)

    def test_unknown_field_rejected(self):
        data = self.spec().to_dict()
        data["objectives"] = []
        with pytest.raises(ValueError, match="unknown TuneSpec"):
            TuneSpec.from_dict(data)

    def test_sweep_doc_nested_not_referenced(self):
        data = self.spec().to_dict()
        assert data["sweep"]["sweep_version"] == 1
        assert data["rungs"] == [2, 3]


#: The small race most execution tests share: kn=1 starves replication
#: (n_results=2 with a single candidate), so its points are decisively
#: worse on consumer satisfaction and get eliminated at the first,
#: 3-replication rung -- before the final rung, which is what makes the
#: race cheaper than the exhaustive sweep.
TUNE = TuneSpec(
    name="exec-test",
    sweep=SweepSpec(
        name="exec-grid",
        base=small_base(replications=4),
        axes=(
            SweepAxis("sbqa.kn", (1, 5)),
            SweepAxis("sbqa.omega", (0.0, 1.0)),
        ),
    ),
    objective="consumer_sat_final",
    rungs=(3, 4),
)


class TestRace:
    @pytest.fixture(scope="class")
    def result(self):
        return TuneSession(TUNE).run()

    def test_eliminates_the_dominated_cluster(self, result):
        assert result.status == "completed"
        statuses = {o.label: o.status for o in result.outcomes}
        assert statuses["kn=1, omega=0"] == "eliminated"
        assert statuses["kn=1, omega=1"] == "eliminated"
        assert result.winner.label.startswith("kn=5")
        assert result.runs_executed < result.exhaustive_runs
        assert result.runs_saved == result.exhaustive_runs - result.runs_executed

    def test_winner_matches_exhaustive_sweep(self, result):
        exhaustive = SweepSession(TUNE.sweep).run()
        best = max(
            exhaustive.points,
            key=lambda p: mean(p.policy("sbqa").values("consumer_sat_final")),
        )
        assert result.winner.label == best.label

    def test_eliminations_carry_the_evidence(self, result):
        for elimination in result.eliminations:
            assert 0.0 <= elimination.p_value <= elimination.p_adjusted <= 1.0
            assert elimination.p_adjusted < TUNE.alpha
            assert elimination.mean < elimination.incumbent_mean  # maximizing
        # the trace records every rung, budget accounting monotone
        assert [r.rung for r in result.trace] == list(range(len(TUNE.rungs)))
        totals = [r.runs_total for r in result.trace]
        assert totals == sorted(totals)

    def test_eliminated_points_ran_objective_policy_only_partially(self, result):
        eliminated = result.outcome("kn=1, omega=0")
        assert not eliminated.complete
        assert [p.label for p in eliminated.policies] == ["sbqa"]
        assert eliminated.policies[0].replications == eliminated.replications_used
        survivor = result.winner
        assert survivor.complete
        assert survivor.policies[0].replications == TUNE.sweep.base.replications

    def test_survivors_reproduce_the_exhaustive_sweep_bit_for_bit(self, result):
        """The acceptance bar: unlimited budget => sweep parity."""
        exhaustive = SweepSession(TUNE.sweep).run()
        expected = {p["label"]: p for p in exhaustive.to_dict()["points"]}
        survivors = result.sweep_result().to_dict()["points"]
        assert survivors, "the race must leave survivors"
        for point in survivors:
            assert json.dumps(point, sort_keys=True) == json.dumps(
                expected[point["label"]], sort_keys=True
            )

    def test_identical_points_are_never_separated(self):
        """Statistical honesty: noise alone must not eliminate."""
        twin = TuneSpec(
            sweep=SweepSpec(
                name="twins",
                base=small_base(replications=2),
                # two coordinates, same derived experiment: identical
                # seeds make them literally indistinguishable (p = 1)
                axes=(SweepAxis("sbqa.epsilon", (1.0, 1.00000001)),),
            ),
            objective="consumer_sat_final",
        )
        result = TuneSession(twin).run()
        assert result.status == "completed"
        assert [o.status for o in result.outcomes] == ["winner", "survivor"]
        assert result.runs_executed == result.exhaustive_runs  # nothing saved

    def test_minimized_objective(self):
        spec = TuneSpec(sweep=TUNE.sweep, objective="mean_rt")
        result = TuneSession(spec).run()
        means = {
            o.label: mean(o.policy("sbqa").values("mean_rt"))
            for o in result.outcomes
            if o.status != "eliminated"
        }
        assert means[result.winner.label] == min(means.values())

    def test_csv_rows_cover_exactly_the_executed_runs(self, result):
        rows = result.to_csv().strip().splitlines()
        assert len(rows) == 1 + result.runs_executed
        assert rows[0].startswith("tune,point,kn,omega,policy,replication,status")

    def test_table_shows_the_race(self, result):
        table = result.table()
        assert "winner" in table and "eliminated" in table
        assert "p_holm" in table
        assert f"{result.runs_executed} of {result.exhaustive_runs}" in table


class TestBudget:
    def test_budget_stops_before_an_unaffordable_rung(self):
        # first rung: 4 points x 3 reps = 12 runs; the second rung's
        # promotions need more than the single run left in the budget
        spec = TuneSpec(sweep=TUNE.sweep, rungs=(3, 4), budget=13)
        stream = TuneSession(spec).stream()
        events = list(stream)
        result = stream.result()
        assert result.status == "budget_exhausted"
        assert result.runs_executed <= 13
        stops = [e for e in events if isinstance(e, TuneStopEvent)]
        assert len(stops) == 1 and "budget" in stops[0].reason
        # a winner is still declared from the last decided rung
        assert result.winner.status == "winner"

    def test_budget_event_accounting(self):
        spec = TuneSpec(sweep=TUNE.sweep, rungs=(3, 4), budget=30)
        remaining = spec.budget
        for event in TuneSession(spec).stream():
            if isinstance(event, TuneRunEvent):
                assert event.budget_remaining == remaining - 1
                remaining = event.budget_remaining
        assert remaining == spec.budget - TuneSession(spec).run().runs_executed

    def test_unlimited_budget_reports_none(self):
        for event in TuneSession(TUNE).stream():
            if isinstance(event, TuneRunEvent):
                assert event.budget_remaining is None
                break


class TestStreaming:
    def test_event_census_matches_result(self):
        stream = TuneSession(TUNE).stream()
        events = list(stream)
        result = stream.result()
        runs = [e for e in events if isinstance(e, TuneRunEvent)]
        rungs = [e for e in events if isinstance(e, TuneRungEvent)]
        assert len(runs) == result.runs_executed
        assert len(rungs) == len(result.trace)
        assert [e.record for e in rungs] == result.trace
        phases = {e.phase for e in runs}
        assert phases == {"race"}  # single-policy base: nothing to complete

    def test_completion_phase_events_for_multi_policy_base(self):
        spec = TuneSpec(
            sweep=small_sweep(policies=("sbqa", "capacity")),
            policy="sbqa",
        )
        events = list(TuneSession(spec).stream())
        completing = [
            e
            for e in events
            if isinstance(e, TuneRunEvent) and e.phase == "complete"
        ]
        assert completing
        assert all(e.policy.label == "capacity" for e in completing)
        assert all(e.rung is None for e in completing)


class TestParallelParity:
    """The tentpole determinism bar: a parallel, incrementally consumed
    tune must reproduce the serial elimination trace and digest
    byte-for-byte."""

    def test_parallel_digest_and_trace_identical_to_serial(self):
        serial = TuneSession(TUNE).run()
        stream = TuneSession(TUNE).stream(parallel=True, max_workers=4)
        for _ in stream:
            pass
        parallel = stream.result()
        assert parallel.parallel and not serial.parallel
        assert parallel.to_json() == serial.to_json()
        assert parallel.to_csv() == serial.to_csv()
        assert parallel.trace == serial.trace

    def test_multi_policy_parallel_parity(self):
        spec = TuneSpec(
            sweep=small_sweep(policies=("sbqa", "capacity")), policy="sbqa"
        )
        serial = TuneSession(spec).run()
        parallel = TuneSession(spec).run(parallel=True, max_workers=3)
        assert parallel.to_json() == serial.to_json()


class TestBuilderEntryPoints:
    def test_sweep_chain_into_tune(self):
        spec = (
            Experiment.builder()
            .duration(60.0)
            .providers(10)
            .policy("sbqa")
            .replications(4)
            .sweep()
            .axis("sbqa.omega", [0.0, 1.0])
            .tune()
            .named("chained")
            .objective("mean_rt")
            .budget(10)
            .rungs(2, 4)
            .alpha(0.1)
            .build()
        )
        assert spec.name == "chained"
        assert spec.objective == "mean_rt"
        assert spec.budget == 10
        assert spec.rungs == (2, 4)
        assert spec.alpha == 0.1

    def test_experiment_tune_accepts_spec_builder_dict(self):
        sweep = small_sweep()
        for search in (sweep, sweep.to_dict()):
            spec = Experiment.tune(search).build()
            assert spec.sweep == sweep
        builder = Experiment.sweep(small_base()).axis("sbqa.kn", [1, 5])
        assert len(Experiment.tune(builder).build().sweep) == 2

    def test_experiment_tune_rejects_garbage(self):
        with pytest.raises(TypeError, match="Experiment.tune"):
            Experiment.tune(42)

    def test_builder_needs_a_search_space(self):
        from repro.api.tune import TuneBuilder

        with pytest.raises(ValueError, match="search space"):
            TuneBuilder().build()

    def test_session_needs_a_tune_spec(self):
        with pytest.raises(TypeError, match="TuneSpec"):
            TuneSession(small_sweep())

    def test_run_shortcut(self):
        result = (
            Experiment.tune(small_sweep(replications=2))
            .objective("consumer_sat_final")
            .run()
        )
        assert result.winner is not None


class TestExampleStudy:
    """The shipped tune_omega.json study meets the acceptance bar.

    The cross-check against the *exhaustive* sweep (same winner,
    bit-for-bit survivors) runs in the CI smoke job and in
    ``benchmarks/bench_tune_vs_sweep.py``; here the study itself is
    raced once and held to its budget and savings claims.
    """

    SPEC_PATH = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "specs",
        "tune_omega.json",
    )

    def test_budget_is_at_most_sixty_percent_of_exhaustive(self):
        spec = TuneSpec.load(self.SPEC_PATH)
        assert spec.budget is not None
        assert spec.budget <= 0.6 * spec.exhaustive_runs

    def test_race_completes_within_budget_with_the_known_winner(self):
        spec = TuneSpec.load(self.SPEC_PATH)
        result = TuneSession(spec).run(parallel=True)
        assert result.status == "completed"
        assert result.runs_executed <= spec.budget
        assert result.run_fraction <= 0.6
        # deterministic: the paper's consumer-optimal corner of the grid
        # (cross-checked against the exhaustive sweep in CI and the bench)
        assert result.winner.label == "omega=0, kn=10"
        # the dominated kn=1 half of the grid never reaches full depth
        kn1 = [o for o in result.outcomes if o.point.coords["kn"] == 1]
        assert len(kn1) == 6
        assert all(o.status == "eliminated" for o in kn1)
        assert all(not o.complete for o in kn1)


#: Subprocess probe: the full digest (trace, rung ordering, survivors)
#: printed under a given hash seed.  repr()-level floats: bit-identical.
_HASHSEED_SCRIPT = """
import json, sys
from repro.api.builder import Experiment

result = (
    Experiment.builder()
    .named("hashseed-tune")
    .seed(13)
    .duration(100.0)
    .providers(12)
    .replication_factor(3)
    .policy("sbqa", k=8, kn=4)
    .replications(3)
    .sweep()
    .axis("sbqa.kn", [1, 4])
    .tune()
    .objective("consumer_sat_final")
    .run()
)
sys.stdout.write(result.to_json())
"""


def _tune_digest_with_hash_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


def test_rung_ordering_identical_across_hash_seeds():
    """Elimination decisions must not depend on interpreter hashing.

    The rung trace orders contenders, runs Holm over their p-values and
    picks incumbents; any set/dict-order dependence in that path would
    flip eliminations between interpreters.  Two subprocesses with
    different ``PYTHONHASHSEED`` values must emit identical digests.
    """
    assert _tune_digest_with_hash_seed("0") == _tune_digest_with_hash_seed("4242")
