"""Session execution: serial/parallel parity, live stepping, results."""

import json

import pytest

from repro.api.builder import Experiment
from repro.api.session import Session, _execute_task
from repro.api.spec import ExperimentSpec
from repro.experiments.config import PolicySpec
from repro.experiments.runner import run_once

#: Small but non-trivial: two policies, two replications, churn on.
SPEC = (
    Experiment.builder()
    .named("session-test")
    .seed(11)
    .duration(200.0)
    .providers(16)
    .autonomous(warmup=25.0)
    .policy("sbqa", kn=4)
    .policy("capacity")
    .replications(2)
    .build()
)


class TestSerial:
    def test_shape(self):
        result = Session(SPEC).run()
        assert result.labels == ["sbqa", "capacity"]
        assert [p.replications for p in result.policies] == [2, 2]
        assert len(result.runs) == 4

    def test_matches_run_once(self):
        """The session is exactly the run_once grid, policy-major."""
        result = Session(SPEC).run()
        config = SPEC.to_config()
        for policy_index, policy in enumerate(SPEC.policies):
            for replication in range(SPEC.replications):
                expected = run_once(config, policy, replication=replication)
                got = result.policies[policy_index].summaries[replication]
                assert got.as_dict() == expected.summary.as_dict()

    def test_keep_runs_false_drops_run_objects(self):
        result = Session(SPEC).run(keep_runs=False)
        assert result.runs == []
        with pytest.raises(RuntimeError, match="keep_runs"):
            result.run("sbqa")


class TestParallel:
    def test_identical_to_serial(self):
        """The acceptance bar: parallel aggregates are bit-identical."""
        serial = Session(SPEC).run()
        parallel = Session(SPEC).run(parallel=True, max_workers=3)
        assert parallel.parallel and not serial.parallel
        for s_policy, p_policy in zip(serial.policies, parallel.policies):
            for s, p in zip(s_policy.summaries, p_policy.summaries):
                assert s.as_dict() == p.as_dict()
        assert serial.to_csv() == parallel.to_csv()

    def test_keep_runs_unavailable(self):
        with pytest.raises(ValueError, match="keep_runs"):
            Session(SPEC).run(parallel=True, keep_runs=True)

    def test_worker_task_is_self_contained(self):
        """The worker rebuilds the run from the serialized spec alone."""
        policy_index, replication, summary = _execute_task(
            (SPEC.to_dict(), 1, 1)
        )
        assert (policy_index, replication) == (1, 1)
        expected = run_once(SPEC.to_config(), SPEC.policies[1], replication=1)
        assert summary.as_dict() == expected.summary.as_dict()


class TestLiveRun:
    def test_step_until_matches_one_shot(self):
        live = Session(SPEC).start(policy="sbqa")
        for t in (50.0, 125.0):
            live.step_until(t)
            assert live.now == t
            assert not live.finished
        stepped = live.finalize()
        one_shot = run_once(SPEC.to_config(), SPEC.policies[0])
        assert stepped.summary.as_dict() == one_shot.summary.as_dict()

    def test_live_inspection_surfaces_state(self):
        live = Session(SPEC).start()
        live.step_until(100.0)
        assert live.mediator.mediations > 0
        assert live.hub.queries_completed > 0
        assert len(live.registry.providers) == 16

    def test_policy_selection(self):
        assert Session(SPEC).start(policy=1).label == "capacity"
        assert Session(SPEC).start(policy="capacity").label == "capacity"
        assert Session(SPEC).start().label == "sbqa"

    def test_step_after_finalize_rejected(self):
        live = Session(SPEC).start()
        live.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            live.step_until(50.0)


class TestExperimentResult:
    @pytest.fixture(scope="class")
    def result(self):
        return Session(SPEC).run()

    def test_comparison_table(self, result):
        table = result.comparison_table()
        assert "sbqa" in table and "capacity" in table
        assert "±" in table  # replicated cells show spread

    def test_policy_lookup_and_best(self, result):
        assert result.policy("sbqa").label == "sbqa"
        with pytest.raises(KeyError):
            result.policy("nope")
        best = result.best("mean_rt", minimize=True)
        assert best["mean_rt"] == min(p["mean_rt"] for p in result.policies)

    def test_csv_export(self, result, tmp_path):
        path = tmp_path / "out.csv"
        text = result.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert len(lines) == 1 + 4  # header + policies x replications
        assert lines[0].startswith("experiment,policy,replication")

    def test_json_export(self, result, tmp_path):
        path = tmp_path / "out.json"
        result.to_json(path)
        digest = json.loads(path.read_text())
        assert digest["spec"]["name"] == "session-test"
        assert [p["label"] for p in digest["policies"]] == ["sbqa", "capacity"]
        # The embedded spec is loadable again: results are reproducible.
        assert ExperimentSpec.from_dict(digest["spec"]) == SPEC

    def test_aggregate_bridge(self, result):
        aggregate = result.policy("sbqa").aggregate()
        assert aggregate.replications == 2
        assert "±" in aggregate.cell("mean_rt")


class TestSessionValidation:
    def test_needs_a_spec(self):
        with pytest.raises(TypeError, match="ExperimentSpec"):
            Session({"name": "nope"})

    def test_len_counts_tasks(self):
        assert len(Session(SPEC)) == 4


class TestStream:
    """Session.stream(): incremental results, aggregate identical to run()."""

    def test_serial_event_order_and_policy_completions(self):
        stream = Session(SPEC).stream()
        events = list(stream)
        assert len(events) == 4
        assert [e.completed for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        # serial streams follow task order: policy-major, replications inner
        assert [(e.policy.label, e.replication) for e in events] == [
            ("sbqa", 0), ("sbqa", 1), ("capacity", 0), ("capacity", 1),
        ]
        # the policy_result marker fires exactly when a policy completes
        completions = [e.policy_result.label for e in events if e.policy_result]
        assert completions == ["sbqa", "capacity"]
        assert events[1].policy_result is not None
        assert events[1].policy_result.replications == 2

    def test_events_match_run_once(self):
        config = SPEC.to_config()
        for event in Session(SPEC).stream():
            expected = run_once(
                config, event.policy, replication=event.replication
            )
            assert event.summary.as_dict() == expected.summary.as_dict()

    def test_serial_stream_aggregate_byte_identical_to_run(self):
        run_result = Session(SPEC).run(keep_runs=False)
        stream_result = Session(SPEC).stream().result()
        assert stream_result.to_json() == run_result.to_json()
        assert stream_result.to_csv() == run_result.to_csv()

    def test_parallel_stream_aggregate_byte_identical_to_run(self):
        run_result = Session(SPEC).run(parallel=True, max_workers=3)
        stream = Session(SPEC).stream(parallel=True, max_workers=3)
        seen = 0
        for event in stream:
            seen += 1
            assert event.total == 4
        assert seen == 4
        assert stream.result().to_json() == run_result.to_json()

    def test_result_without_consuming_drains(self):
        result = Session(SPEC).stream().result()
        assert result.labels == ["sbqa", "capacity"]
        assert result.runs == []  # streams never keep live runs
