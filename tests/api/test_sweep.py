"""Sweep subsystem: grids, round-trips, streaming, parity, significance."""

import json

import pytest

from repro.api.builder import Experiment
from repro.api.results import SweepResult
from repro.api.spec import ExperimentSpec
from repro.api.sweep import SweepAxis, SweepSession, SweepSpec
from repro.experiments.runner import run_once


def small_base(replications=1, policies=("sbqa", "capacity")):
    builder = (
        Experiment.builder()
        .named("sweep-test")
        .seed(11)
        .duration(60.0)
        .providers(10)
    )
    for name in policies:
        builder.policy(name)
    return builder.replications(replications).build()


class TestSweepAxis:
    def test_label_defaults_to_last_segment(self):
        assert SweepAxis("population.memory", (10, 20)).label == "memory"
        assert SweepAxis("duration", (60.0,)).label == "duration"

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            SweepAxis("sbqa.omega", ())

    def test_string_values_rejected_not_char_split(self):
        # tuple("adaptive") would silently become an 8-point grid
        with pytest.raises(ValueError, match="wrap it in a list"):
            SweepAxis("sbqa.omega", "adaptive")
        with pytest.raises(ValueError, match="wrap it in a list"):
            SweepAxis.from_dict({"path": "sbqa.omega", "values": "adaptive"})
        with pytest.raises(ValueError, match="wrap it in a list"):
            Experiment.sweep(small_base()).axis("sbqa.omega", "adaptive")

    def test_scalar_values_rejected(self):
        with pytest.raises(ValueError, match="must be a sequence"):
            SweepAxis("sbqa.kn", 5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SweepAxis"):
            SweepAxis.from_dict({"path": "duration", "values": [1], "vals": [2]})

    def test_from_dict_requires_path_and_values(self):
        with pytest.raises(ValueError, match="'path' and 'values'"):
            SweepAxis.from_dict({"path": "duration"})


class TestGridExpansion:
    def test_product_rightmost_fastest(self):
        sweep = SweepSpec(
            base=small_base(),
            axes=(
                SweepAxis("sbqa.omega", (0.0, 1.0)),
                SweepAxis("population.memory", (10, 20)),
            ),
        )
        assert len(sweep) == 4
        assert [p.label for p in sweep.points()] == [
            "omega=0, memory=10",
            "omega=0, memory=20",
            "omega=1, memory=10",
            "omega=1, memory=20",
        ]

    def test_zipped_axes_advance_in_lockstep(self):
        sweep = SweepSpec(
            base=small_base(),
            axes=(
                SweepAxis("sbqa.k", (4, 8), zip_group="pool"),
                SweepAxis("sbqa.kn", (2, 4), zip_group="pool"),
                SweepAxis("sbqa.omega", (0.0, 1.0)),
            ),
        )
        # zipped pair (2 positions) x omega (2) = 4, not 2 x 2 x 2 = 8
        assert len(sweep) == 4
        assert [p.overrides for p in sweep.points()] == [
            {"sbqa.k": 4, "sbqa.kn": 2, "sbqa.omega": 0.0},
            {"sbqa.k": 4, "sbqa.kn": 2, "sbqa.omega": 1.0},
            {"sbqa.k": 8, "sbqa.kn": 4, "sbqa.omega": 0.0},
            {"sbqa.k": 8, "sbqa.kn": 4, "sbqa.omega": 1.0},
        ]

    def test_zip_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equally many values"):
            SweepSpec(
                base=small_base(),
                axes=(
                    SweepAxis("sbqa.k", (4, 8, 16), zip_group="pool"),
                    SweepAxis("sbqa.kn", (2, 4), zip_group="pool"),
                ),
            )

    def test_point_specs_carry_overrides(self):
        sweep = SweepSpec(
            base=small_base(),
            axes=(SweepAxis("population.memory", (10, 30)),),
        )
        memories = [p.spec.population.memory for p in sweep.points()]
        assert memories == [10, 30]
        # untouched knobs keep the base's values
        assert all(p.spec.duration == 60.0 for p in sweep.points())

    def test_sbqa_override_fans_out_to_sbqa_policies_only(self):
        sweep = SweepSpec(
            base=small_base(),
            axes=(SweepAxis("sbqa.omega", (0.25,)),),
        )
        point = sweep.points()[0]
        assert point.spec.policy("sbqa").sbqa.omega == 0.25
        assert point.spec.policy("capacity").sbqa is None

    def test_requires_an_axis(self):
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec(base=small_base(), axes=())

    def test_duplicate_paths_rejected(self):
        with pytest.raises(ValueError, match="paths must be unique"):
            SweepSpec(
                base=small_base(),
                axes=(
                    SweepAxis("sbqa.omega", (0.0,)),
                    SweepAxis("sbqa.omega", (1.0,)),
                ),
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="labels must be unique"):
            SweepSpec(
                base=small_base(),
                axes=(
                    SweepAxis("population.memory", (10,)),
                    SweepAxis("autonomy.memory", (20,), label="memory"),
                ),
            )

    def test_unknown_path_rejected_with_context(self):
        with pytest.raises(ValueError, match="no field 'memoryy'"):
            SweepSpec(
                base=small_base(),
                axes=(SweepAxis("population.memoryy", (10,)),),
            )

    def test_unknown_sbqa_field_rejected(self):
        with pytest.raises(ValueError, match="SbQAConfig has no field"):
            SweepSpec(base=small_base(), axes=(SweepAxis("sbqa.omg", (0.5,)),))

    def test_sbqa_axis_needs_an_sbqa_policy(self):
        base = small_base(policies=("capacity",))
        with pytest.raises(ValueError, match="no 'sbqa' policy"):
            SweepSpec(base=base, axes=(SweepAxis("sbqa.omega", (0.5,)),))

    def test_failures_path_needs_failures_enabled(self):
        with pytest.raises(ValueError, match="no failure injection"):
            SweepSpec(base=small_base(), axes=(SweepAxis("failures.mttf", (60.0,)),))

    def test_invalid_point_named_in_error(self):
        # kn > k is invalid; the error names the offending point.
        with pytest.raises(ValueError, match=r"sweep point .*kn=99"):
            SweepSpec(base=small_base(), axes=(SweepAxis("sbqa.kn", (99,)),))


class TestDerive:
    def test_top_level_and_nested_overrides(self):
        base = small_base()
        derived = base.derive({"duration": 120.0, "population.memory": 42})
        assert derived.duration == 120.0
        assert derived.population.memory == 42
        # the original is untouched
        assert base.duration == 60.0

    def test_name_override(self):
        assert small_base().derive({}, name="renamed").name == "renamed"

    def test_sbqa_fanout_materializes_default_config(self):
        # A bare PolicySpec("sbqa") has no explicit SbQAConfig; the
        # override materializes the defaults to set one field.
        base = ExperimentSpec(name="bare", duration=60.0)
        assert base.policy("sbqa").sbqa is None
        derived = base.derive({"sbqa.epsilon": 0.5})
        assert derived.policy("sbqa").sbqa.epsilon == 0.5
        # other SbQA fields keep their defaults
        assert derived.policy("sbqa").sbqa.k == 20


class TestRoundTrip:
    def sweep(self):
        return SweepSpec(
            name="rt",
            base=small_base(replications=2),
            axes=(
                SweepAxis("sbqa.omega", (0.0, "adaptive")),
                SweepAxis("sbqa.k", (4, 8), zip_group="g", label="pool"),
                SweepAxis("sbqa.kn", (2, 4), zip_group="g"),
            ),
        )

    def test_json_round_trip_is_identity(self):
        sweep = self.sweep()
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_save_load(self, tmp_path):
        sweep = self.sweep()
        path = sweep.save(tmp_path / "sweep.json")
        assert SweepSpec.load(path) == sweep

    def test_unknown_version_rejected(self):
        data = self.sweep().to_dict()
        data["sweep_version"] = 99
        with pytest.raises(ValueError, match="unsupported sweep_version"):
            SweepSpec.from_dict(data)

    def test_unknown_field_rejected(self):
        data = self.sweep().to_dict()
        data["axis"] = []
        with pytest.raises(ValueError, match="unknown SweepSpec"):
            SweepSpec.from_dict(data)


SWEEP = SweepSpec(
    name="exec-test",
    base=small_base(replications=2),
    axes=(SweepAxis("sbqa.omega", (0.0, "adaptive")),),
)


class TestSerialExecution:
    def test_shape(self):
        session = SweepSession(SWEEP)
        assert len(session) == 2 * 2 * 2  # points x policies x replications
        result = session.run()
        assert result.labels == ["omega=0", "omega=adaptive"]
        for point in result.points:
            assert [p.label for p in point.policies] == ["sbqa", "capacity"]
            assert all(p.replications == 2 for p in point.policies)

    def test_matches_run_once_grid(self):
        result = SweepSession(SWEEP).run()
        for point_spec, point in zip(SWEEP.points(), result.points):
            config = point_spec.spec.to_config()
            for policy_index, policy in enumerate(point_spec.spec.policies):
                for replication in range(point_spec.spec.replications):
                    expected = run_once(config, policy, replication=replication)
                    got = point.policies[policy_index].summaries[replication]
                    assert got.as_dict() == expected.summary.as_dict()

    def test_stream_grid_order_and_point_completions(self):
        stream = SweepSession(SWEEP).stream()
        events = list(stream)
        assert len(events) == 8
        assert [e.completed for e in events] == list(range(1, 9))
        assert all(e.total == 8 for e in events)
        # serial streams complete points in grid order, at their last task
        completions = [e.point_result.label for e in events if e.point_result]
        assert completions == ["omega=0", "omega=adaptive"]
        assert events[3].point_result is not None
        assert events[7].point_result is not None
        # the drained stream aggregates to the same result as run()
        assert stream.result().to_json() == SweepSession(SWEEP).run().to_json()

    def test_needs_a_sweep_spec(self):
        with pytest.raises(TypeError, match="SweepSpec"):
            SweepSession(small_base())


class TestParallelParity:
    """The acceptance bar: a 12-point x 2-policy x 3-replication grid,
    executed over 4 workers and consumed incrementally, must serialize
    byte-identically to the serial barrier path -- including the Welch
    t-test annotations."""

    @pytest.fixture(scope="class")
    def grid(self):
        return SweepSpec(
            name="parity",
            base=small_base(replications=3),
            axes=(
                SweepAxis("sbqa.omega", (0.0, 0.2, 0.4, 0.6, 0.8, "adaptive")),
                SweepAxis("sbqa.kn", (2, 10)),
            ),
        )

    def test_grid_shape(self, grid):
        assert len(grid) == 12
        assert len(grid.base.policies) == 2
        assert grid.base.replications == 3
        assert len(SweepSession(grid)) == 12 * 2 * 3

    def test_streamed_parallel_binary_identical_to_serial(self, grid):
        serial = SweepSession(grid).run()
        stream = SweepSession(grid).stream(parallel=True, max_workers=4)
        completions = 0
        last_completed = 0
        for event in stream:
            # incremental consumption: every event observed one by one,
            # completion counter strictly increasing
            assert event.completed == last_completed + 1
            last_completed = event.completed
            if event.point_result is not None:
                completions += 1
        assert completions == 12
        parallel = stream.result()
        assert parallel.parallel and not serial.parallel
        assert parallel.to_json() == serial.to_json()
        assert parallel.to_csv() == serial.to_csv()

    def test_digest_carries_significance(self, grid):
        digest = json.loads(SweepSession(grid).run().to_json())
        point = digest["points"][0]
        assert point["comparisons"], "3 replications must enable t-tests"
        comparison = point["comparisons"][0]
        assert {"metric", "p_value", "t_statistic"} <= set(comparison)
        assert 0.0 <= comparison["p_value"] <= 1.0
        for metric, best in digest["best"].items():
            assert best["point"] in [p["label"] for p in digest["points"]]
            assert best["significant"] in (True, False)


class TestSweepResult:
    @pytest.fixture(scope="class")
    def result(self):
        return SweepSession(SWEEP).run()

    def test_point_lookup(self, result):
        assert result.point("omega=0").label == "omega=0"
        assert result.point(1).label == "omega=adaptive"
        with pytest.raises(KeyError):
            result.point("omega=7")

    def test_best_direction(self, result):
        # mean_rt minimizes by default
        point, policy = result.best("mean_rt")
        assert policy["mean_rt"] == min(p["mean_rt"] for _, p in result.cells())
        point, policy = result.best("consumer_sat_final")
        assert policy["consumer_sat_final"] == max(
            p["consumer_sat_final"] for _, p in result.cells()
        )

    def test_best_summary_has_runner_up_and_p(self, result):
        best = result.best_summary("consumer_sat_final")
        assert best["runner_up"] is not None
        assert 0.0 <= best["p_value"] <= 1.0
        assert best["significant"] == (best["p_value"] < 0.05)

    def test_tidy_rows_carry_axis_columns(self, result):
        rows = result.to_rows()
        assert len(rows) == 2 * 2 * 2
        assert rows[0]["sweep"] == "exec-test"
        assert "omega" in rows[0]
        assert {"point", "policy", "replication"} <= set(rows[0])

    def test_csv_export(self, result, tmp_path):
        path = tmp_path / "sweep.csv"
        text = result.to_csv(path)
        assert path.read_text() == text
        header = text.splitlines()[0]
        assert header.startswith("sweep,point,omega,policy,replication")
        assert len(text.strip().splitlines()) == 1 + 8

    def test_table_marks_best(self, result):
        table = result.table()
        assert "omega=adaptive" in table
        assert "*" in table
        assert "best per column" in table

    def test_table_shows_coordination_cost(self, result):
        # the overhead side of the paper's trade-off stays visible (the
        # pre-sweep-engine `sbqa sweep` table always printed it)
        assert "coord msgs" in result.table()
        assert "coordination_messages" in result.points[0].policies[0].means

    def test_comparisons_need_replications(self):
        single = SweepSpec(
            name="single",
            base=small_base(replications=1),
            axes=(SweepAxis("sbqa.omega", (0.0,)),),
        )
        result = SweepSession(single).run()
        assert result.points[0].comparisons() == []
        best = result.best_summary("mean_rt")
        assert best["p_value"] is None and best["significant"] is None


class TestBuilderEntryPoints:
    def test_experiment_sweep_accepts_spec_builder_dict_none(self):
        spec = small_base()
        for base in (spec, Experiment.from_spec(spec), spec.to_dict(), None):
            sweep = (
                Experiment.sweep(base).axis("sbqa.omega", [0.0, 1.0]).build()
            )
            assert len(sweep) == 2

    def test_experiment_sweep_rejects_garbage(self):
        with pytest.raises(TypeError, match="Experiment.sweep"):
            Experiment.sweep(42)

    def test_builder_chain_into_sweep(self):
        sweep = (
            Experiment.builder()
            .duration(60.0)
            .providers(10)
            .policy("sbqa")
            .replications(2)
            .sweep()
            .named("chained")
            .axis("sbqa.omega", [0.0, 1.0])
            .build()
        )
        assert sweep.name == "chained"
        assert sweep.base.replications == 2

    def test_zipped_builder_axes(self):
        sweep = (
            Experiment.sweep(small_base())
            .zipped(sbqa__k=[4, 8], sbqa__kn=[2, 4])
            .build()
        )
        assert len(sweep) == 2
        assert sweep.axes[0].path == "sbqa.k"
        assert sweep.axes[0].zip_group == sweep.axes[1].zip_group

    def test_zipped_needs_two_axes(self):
        with pytest.raises(ValueError, match="at least two"):
            Experiment.sweep(small_base()).zipped(sbqa__k=[4, 8])

    def test_run_shortcut(self):
        result = (
            Experiment.sweep(small_base())
            .axis("sbqa.omega", [0.0])
            .run()
        )
        assert isinstance(result, SweepResult)
        assert len(result.points) == 1


class TestKeepRuns:
    """Opt-in retention of full RunResults through sweep aggregation."""

    def sweep(self, keep_runs=True):
        return SweepSpec(
            name="kept",
            base=small_base(replications=2, policies=("sbqa",)),
            axes=(SweepAxis("population.memory", (10, 50)),),
            keep_runs=keep_runs,
        )

    def test_runs_survive_aggregation(self):
        result = SweepSession(self.sweep()).run()
        for point in result.points:
            policy = point.policies[0]
            assert len(policy.runs) == 2
            run = policy.run(0)
            # the live hub (series access) is what keep_runs is for
            assert run.hub.provider_satisfaction.values
            assert run.summary.as_dict() == policy.summaries[0].as_dict()

    def test_off_by_default(self):
        result = SweepSession(self.sweep(keep_runs=False)).run()
        assert all(p.runs == [] for _, p in result.cells())
        with pytest.raises(RuntimeError, match="keep_runs"):
            result.points[0].policies[0].run(0)

    def test_session_argument_overrides_spec(self):
        result = SweepSession(self.sweep(keep_runs=False)).run(keep_runs=True)
        assert all(len(p.runs) == 2 for _, p in result.cells())

    def test_unavailable_in_parallel(self):
        with pytest.raises(ValueError, match="keep_runs"):
            SweepSession(self.sweep()).run(parallel=True)

    def test_round_trips_and_digest_unaffected(self):
        sweep = self.sweep()
        restored = SweepSpec.from_json(sweep.to_json())
        assert restored == sweep and restored.keep_runs
        kept = SweepSession(sweep).run()
        plain = SweepSession(self.sweep(keep_runs=False)).run()
        # retention is an execution detail; the data is identical
        assert kept.to_csv() == plain.to_csv()

    def test_builder_flag(self):
        sweep = (
            Experiment.sweep(small_base())
            .axis("sbqa.omega", [0.0])
            .keep_runs()
            .build()
        )
        assert sweep.keep_runs


class TestExperimentSpecUntouched:
    def test_base_spec_still_round_trips(self):
        base = small_base(replications=2)
        assert ExperimentSpec.from_json(base.to_json()) == base
