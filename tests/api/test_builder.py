"""ExperimentBuilder / Experiment facade: knob coverage and errors."""

import dataclasses

import pytest

from repro.api.builder import Experiment, ExperimentBuilder
from repro.api.presets import scenario_spec
from repro.api.spec import ExperimentSpec
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.workloads.boinc import BoincScenarioParams, ProjectSpec


class TestFluency:
    def test_issue_chain_builds(self):
        spec = (
            Experiment.builder()
            .named("churn")
            .duration(2400)
            .policy("sbqa", kn=5)
            .policy("capacity")
            .autonomous(rejoin_cooldown=120)
            .replications(8)
            .build()
        )
        assert spec.name == "churn"
        assert spec.duration == 2400.0
        assert spec.replications == 8
        assert spec.autonomy.mode == "autonomous"
        assert spec.autonomy.rejoin_cooldown == 120
        assert [p.name for p in spec.policies] == ["sbqa", "capacity"]
        assert spec.policies[0].sbqa.kn == 5

    def test_every_method_returns_builder(self):
        b = Experiment.builder()
        for call in (
            lambda: b.named("x"),
            lambda: b.seed(1),
            lambda: b.duration(100),
            lambda: b.sample_interval(5),
            lambda: b.latency(0.01, 0.02),
            lambda: b.providers(10),
            lambda: b.capacity(mean=2.0, cv=0.1),
            lambda: b.demand(mean=20.0, cv=0.4),
            lambda: b.target_load(0.5),
            lambda: b.replication_factor(2, quorum=1),
            lambda: b.memory(50, jitter=0.1),
            lambda: b.intentions(consumer="preference", provider="load-only"),
            lambda: b.focal_provider(loves="einstein"),
            lambda: b.focal_consumer(n_trusted=3),
            lambda: b.archetype_mix(enthusiast=0.4, selective=0.4, picky=0.2),
            lambda: b.captive(),
            lambda: b.autonomous(warmup=10.0),
            lambda: b.failures(500.0, result_timeout=100.0),
            lambda: b.result_timeout(150.0),
            lambda: b.federation(partition="topic"),
            lambda: b.shards(2),
            lambda: b.adequation_over_candidates(),
            lambda: b.keep_records(),
            lambda: b.track_provider_snapshots(),
            lambda: b.policy("sbqa"),
            lambda: b.clear_policies(),
            lambda: b.replications(2),
        ):
            assert call() is b

    def test_defaults_to_sbqa_policy(self):
        spec = Experiment.builder().build()
        assert [p.name for p in spec.policies] == ["sbqa"]

    def test_covers_every_config_field(self):
        """Every ExperimentConfig field is reachable through the builder."""
        spec = (
            Experiment.builder()
            .named("all-knobs")
            .seed(5)
            .duration(111.0)
            .sample_interval(7.0)
            .engine("event")
            .providers(13)
            .autonomous(provider_threshold=0.2, consumer_threshold=0.4,
                        min_observations=3, warmup=11.0, check_interval=9.0,
                        rejoin_cooldown=50.0)
            .latency(0.001, 0.002)
            .shards(2)
            .failures(400.0, repair_time=60.0, start=10.0, result_timeout=99.0)
            .adequation_over_candidates()
            .keep_records()
            .track_provider_snapshots()
            .build()
        )
        config = spec.to_config()
        defaults = ExperimentConfig()
        changed = {
            f.name
            for f in dataclasses.fields(ExperimentConfig)
            if getattr(config, f.name) != getattr(defaults, f.name)
        }
        assert changed == {f.name for f in dataclasses.fields(ExperimentConfig)}

    def test_population_covers_every_field(self):
        valid = {f.name for f in dataclasses.fields(BoincScenarioParams)}
        b = Experiment.builder()
        # The generic escape hatch accepts any population field...
        b.population(n_providers=9, target_load=0.3)
        assert b.build().population.n_providers == 9
        # ...and rejects anything else, listing the valid names.
        with pytest.raises(ValueError) as err:
            b.population(n_provider=9)
        for name in list(valid)[:3]:
            assert name in str(err.value)

    def test_projects_accept_dicts(self):
        spec = (
            Experiment.builder()
            .projects(
                {"name": "a", "popularity": "popular", "popularity_weight": 0.8},
                ProjectSpec("b", "unpopular", 0.2),
            )
            .build()
        )
        assert [p.name for p in spec.population.projects] == ["a", "b"]

    def test_sbqa_policy_kwargs_validated(self):
        with pytest.raises(ValueError, match="knn"):
            Experiment.builder().policy("sbqa", knn=5)

    def test_baseline_policy_params_pass_through(self):
        spec = (
            Experiment.builder().policy("economic", selfishness=0.9).build()
        )
        assert spec.policies[0].params == {"selfishness": 0.9}

    def test_source_spec_not_mutated(self):
        source = scenario_spec("scenario3")
        Experiment.from_spec(source).providers(5).duration(10).build()
        assert source.population.n_providers == 120
        assert source.duration == 2400.0


class TestFacade:
    def test_not_instantiable(self):
        with pytest.raises(TypeError, match="namespace"):
            Experiment()

    def test_from_scenario_matches_preset(self):
        built = Experiment.from_scenario("scenario4", duration=600.0).build()
        assert built == scenario_spec("scenario4", duration=600.0)

    def test_from_scenario_override_chain(self):
        spec = (
            Experiment.from_scenario("scenario3", n_providers=30)
            .replications(3)
            .build()
        )
        assert spec.population.n_providers == 30
        assert spec.replications == 3
        assert len(spec.policies) == 3  # preset policies preserved

    def test_from_spec_accepts_dict(self):
        spec = scenario_spec("scenario1")
        assert Experiment.from_spec(spec.to_dict()).build() == spec

    def test_from_config(self):
        config = ExperimentConfig(name="lifted", duration=100.0)
        spec = Experiment.from_config(
            config, PolicySpec(name="capacity"), replications=2
        ).build()
        assert spec.name == "lifted"
        assert spec.replications == 2
        assert spec.policies[0].name == "capacity"

    def test_load(self, tmp_path):
        spec = scenario_spec("scenario1", duration=120.0)
        path = spec.save(tmp_path / "s.json")
        assert Experiment.load(path).build() == spec


class TestBuilderSeeding:
    def test_blank_builder_policy_list_is_fresh(self):
        # Two builders must not share the accumulating policy list.
        a = ExperimentBuilder()
        b = ExperimentBuilder()
        a.policy("capacity")
        assert b.build().policies == (PolicySpec(name="sbqa"),)

    def test_clear_policies_then_rebuild(self):
        spec = (
            Experiment.from_scenario("scenario3")
            .clear_policies()
            .policy("random")
            .build()
        )
        assert [p.name for p in spec.policies] == ["random"]


class TestReplicationFactor:
    def test_omitting_quorum_preserves_it(self):
        spec = (
            Experiment.builder()
            .population(n_results=2, quorum=2)
            .replication_factor(4)
            .build()
        )
        assert spec.population.n_results == 4
        assert spec.population.quorum == 2

    def test_explicit_none_clears_quorum(self):
        spec = (
            Experiment.builder()
            .population(n_results=2, quorum=2)
            .replication_factor(4, quorum=None)
            .build()
        )
        assert spec.population.quorum is None


class TestSeededBuilderConsistency:
    def test_policy_appends_even_on_default_valued_spec(self):
        # Seeding is what decides append-vs-define, not the spec's value:
        # a loaded spec that happens to equal the defaults behaves like
        # any other seeded spec.
        spec = Experiment.from_spec(ExperimentSpec())
        with pytest.raises(ValueError, match="unique"):
            spec.policy("sbqa").build()

    def test_default_specs_do_not_share_policy_instances(self):
        a, b = ExperimentSpec(), ExperimentSpec()
        assert a.policies[0] is not b.policies[0]
        a.policies[0].params["x"] = 1
        assert "x" not in b.policies[0].params
