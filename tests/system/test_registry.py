"""Unit tests for the system registry (membership + capability)."""

import pytest

from repro.system.registry import SystemRegistry


class TestMembership:
    def test_duplicate_ids_rejected(self, factory):
        factory.provider("p0")
        with pytest.raises(ValueError, match="duplicate provider"):
            factory.registry.add_provider(factory.provider("p0", register=False))
        factory.consumer("c0")
        with pytest.raises(ValueError, match="duplicate consumer"):
            factory.registry.add_consumer(factory.consumer("c0", register=False))

    def test_lookup(self, factory):
        provider = factory.provider("p0")
        consumer = factory.consumer("c0")
        assert factory.registry.provider("p0") is provider
        assert factory.registry.consumer("c0") is consumer
        with pytest.raises(KeyError):
            factory.registry.provider("missing")

    def test_listing_preserves_insertion_order(self, factory):
        for pid in ("b", "a", "c"):
            factory.provider(pid)
        assert [p.participant_id for p in factory.registry.providers] == ["b", "a", "c"]

    def test_online_filters(self, factory):
        a = factory.provider("a")
        b = factory.provider("b")
        b.leave()
        online = factory.registry.online_providers()
        assert [p.participant_id for p in online] == ["a"]


class TestCapabilities:
    def test_default_provider_serves_all_topics(self, factory):
        provider = factory.provider("p0")
        consumer = factory.consumer("c0")
        query = factory.query(consumer, topic="anything")
        assert factory.registry.capable_providers(query) == [provider]

    def test_topic_restriction(self, factory, sim, network):
        from repro.system.provider import Provider

        registry = factory.registry
        specialist = Provider(sim, network, "astro-only")
        registry.add_provider(specialist, topics=["astro"])
        generalist = factory.provider("generalist")
        consumer = factory.consumer("c0")

        astro_query = factory.query(consumer, topic="astro")
        bio_query = factory.query(consumer, topic="bio")
        assert {p.participant_id for p in registry.capable_providers(astro_query)} == {
            "astro-only",
            "generalist",
        }
        assert [p.participant_id for p in registry.capable_providers(bio_query)] == [
            "generalist"
        ]

    def test_offline_providers_not_capable(self, factory):
        provider = factory.provider("p0")
        provider.leave()
        consumer = factory.consumer("c0")
        assert factory.registry.capable_providers(factory.query(consumer)) == []


class TestAggregates:
    def test_total_capacity(self, factory):
        factory.provider("a", capacity=2.0)
        b = factory.provider("b", capacity=3.0)
        assert factory.registry.total_capacity() == 5.0
        b.leave()
        assert factory.registry.total_capacity() == 2.0
        assert factory.registry.total_capacity(online_only=False) == 5.0

    def test_mean_satisfactions(self, factory):
        a = factory.provider("a")
        a.record_proposal(1.0, performed=True)  # sat 1.0
        b = factory.provider("b")
        b.record_proposal(-1.0, performed=True)  # sat 0.0
        assert factory.registry.mean_provider_satisfaction() == pytest.approx(0.5)

        c = factory.consumer("c")
        c.record_query_satisfaction(0.8)
        assert factory.registry.mean_consumer_satisfaction() == pytest.approx(0.8)

    def test_means_with_empty_population(self):
        registry = SystemRegistry()
        assert registry.mean_provider_satisfaction() == 0.0
        assert registry.mean_consumer_satisfaction() == 0.0
