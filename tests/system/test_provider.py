"""Unit tests for the provider entity: queue, utilization, satisfaction."""

import pytest

from repro.system.query import AllocationRecord


def record_for(factory, provider, consumer, demand=10.0):
    query = factory.query(consumer, demand=demand)
    return AllocationRecord(query=query, decided_at=factory.sim.now, allocated=[provider])


class TestConstruction:
    def test_capacity_validation(self, factory):
        with pytest.raises(ValueError, match="capacity"):
            factory.provider(capacity=0.0)

    def test_saturation_horizon_validation(self, factory):
        with pytest.raises(ValueError, match="saturation_horizon"):
            factory.provider(saturation_horizon=0.0)

    def test_starts_online_and_idle(self, factory):
        provider = factory.provider()
        assert provider.online
        assert provider.utilization == 0.0
        assert provider.backlog_seconds == 0.0


class TestServiceModel:
    def test_service_time_scales_with_capacity(self, factory):
        fast = factory.provider("fast", capacity=2.0)
        slow = factory.provider("slow", capacity=0.5)
        assert fast.service_time(10.0) == 5.0
        assert slow.service_time(10.0) == 20.0

    def test_service_time_rejects_non_positive_demand(self, factory):
        with pytest.raises(ValueError, match="demand"):
            factory.provider().service_time(0.0)

    def test_fifo_queueing(self, factory, sim):
        provider = factory.provider(capacity=1.0, saturation_horizon=100.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        assert provider.backlog_seconds == 20.0
        assert provider.utilization == pytest.approx(0.2)

    def test_backlog_drains_with_time(self, factory, sim):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        sim.run_until(4.0)
        assert provider.backlog_seconds == pytest.approx(6.0)
        sim.run_until(20.0)
        assert provider.backlog_seconds == 0.0

    def test_utilization_saturates_at_one(self, factory):
        provider = factory.provider(capacity=1.0, saturation_horizon=10.0)
        consumer = factory.consumer()
        for _ in range(5):
            provider.execute(record_for(factory, provider, consumer, demand=10.0))
        assert provider.utilization == 1.0

    def test_available_capacity(self, factory):
        provider = factory.provider(capacity=2.0, saturation_horizon=10.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        # backlog 5s of 10 -> utilization 0.5 -> available 1.0
        assert provider.available_capacity == pytest.approx(1.0)

    def test_estimated_completion_delay(self, factory):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        assert provider.estimated_completion_delay(5.0) == pytest.approx(15.0)

    def test_execution_sends_result_to_consumer(self, factory, sim):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        record = record_for(factory, provider, consumer, demand=10.0)
        provider.execute(record)
        sim.run()
        assert consumer.stats.queries_completed == 1
        assert record.results[0].provider_id == provider.participant_id
        assert record.results[0].finished_at == 10.0

    def test_stats_accumulate(self, factory, sim):
        provider = factory.provider(capacity=2.0)
        consumer = factory.consumer("proj")
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        provider.execute(record_for(factory, provider, consumer, demand=6.0))
        sim.run()
        assert provider.stats.queries_received == 2
        assert provider.stats.queries_completed == 2
        assert provider.stats.work_units_done == 16.0
        assert provider.stats.busy_seconds == pytest.approx(8.0)
        assert provider.stats.work_by_consumer == {"proj": 16.0}


class TestPreferences:
    def test_consumer_preference_first(self, factory):
        provider = factory.provider(
            preferences={"c0": 0.8}, topic_preferences={"c0": -0.5}
        )
        consumer = factory.consumer("c0")
        query = factory.query(consumer, topic="c0")
        assert provider.preference_for(query) == 0.8

    def test_topic_fallback(self, factory):
        provider = factory.provider(topic_preferences={"astro": 0.6})
        consumer = factory.consumer("c0")
        query = factory.query(consumer, topic="astro")
        assert provider.preference_for(query) == 0.6

    def test_default_fallback(self, factory):
        provider = factory.provider(default_preference=-0.3)
        consumer = factory.consumer("c0")
        assert provider.preference_for(factory.query(consumer)) == -0.3

    def test_intention_for_uses_model(self, factory):
        provider = factory.provider(preferences={"c0": 0.5})
        consumer = factory.consumer("c0")
        query = factory.query(consumer)
        # default blend: idle provider -> beta 0.5: 0.5*0.5 + 0.5*1 = 0.75
        assert provider.intention_for(query) == pytest.approx(0.75)


class TestMembership:
    def test_leave_and_rejoin(self, factory, sim):
        provider = factory.provider()
        sim.run_until(5.0)
        provider.leave()
        assert not provider.online
        assert provider.left_at == 5.0
        provider.leave()  # idempotent
        assert provider.left_at == 5.0
        provider.rejoin()
        assert provider.online
        assert provider.left_at is None
        assert provider.joined_at == 5.0

    def test_lame_duck_draining(self, factory, sim):
        """Work accepted before leaving still completes."""
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        provider.leave()
        sim.run()
        assert consumer.stats.queries_completed == 1

    def test_satisfaction_property_mirrors_tracker(self, factory):
        provider = factory.provider()
        assert provider.satisfaction == 0.5  # neutral
        provider.record_proposal(1.0, performed=True)
        assert provider.satisfaction == 1.0

    def test_receive_rejects_unknown_kind(self, factory, sim):
        from repro.des.entity import Entity

        provider = factory.provider()
        sender = Entity(sim, "x")
        factory.network.send("bogus", sender, provider)
        with pytest.raises(ValueError, match="unexpected message"):
            sim.run()
