"""Unit tests for departure policies and the churn monitor."""

import pytest

from repro.system.autonomy import (
    PAPER_CONSUMER_THRESHOLD,
    PAPER_PROVIDER_THRESHOLD,
    CaptivePolicy,
    ChurnMonitor,
    SatisfactionDeparturePolicy,
    paper_policies,
)


def dissatisfied_provider(factory, pid="sad"):
    provider = factory.provider(pid)
    for _ in range(20):
        provider.record_proposal(-0.9, performed=True)
    return provider


def happy_provider(factory, pid="happy"):
    provider = factory.provider(pid)
    for _ in range(20):
        provider.record_proposal(0.9, performed=True)
    return provider


class TestPolicies:
    def test_captive_never_leaves(self, factory):
        provider = dissatisfied_provider(factory)
        policy = CaptivePolicy()
        assert not policy.should_leave(provider, now=1e9)
        assert policy.is_captive

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            SatisfactionDeparturePolicy(1.5)
        with pytest.raises(ValueError, match="min_observations"):
            SatisfactionDeparturePolicy(0.5, min_observations=0)
        with pytest.raises(ValueError, match="warmup"):
            SatisfactionDeparturePolicy(0.5, warmup=-1.0)

    def test_leaves_below_threshold(self, factory):
        provider = dissatisfied_provider(factory)
        policy = SatisfactionDeparturePolicy(0.35, min_observations=5)
        assert policy.should_leave(provider, now=100.0)

    def test_stays_above_threshold(self, factory):
        provider = happy_provider(factory)
        policy = SatisfactionDeparturePolicy(0.35, min_observations=5)
        assert not policy.should_leave(provider, now=100.0)

    def test_warmup_defers_departure(self, factory):
        provider = dissatisfied_provider(factory)
        policy = SatisfactionDeparturePolicy(0.35, min_observations=5, warmup=500.0)
        assert not policy.should_leave(provider, now=100.0)
        assert policy.should_leave(provider, now=600.0)

    def test_min_observations_guard(self, factory):
        provider = factory.provider()
        provider.record_proposal(-0.9, performed=True)  # 1 observation only
        policy = SatisfactionDeparturePolicy(0.35, min_observations=10)
        assert not policy.should_leave(provider, now=100.0)

    def test_offline_participant_never_flagged(self, factory):
        provider = dissatisfied_provider(factory)
        provider.leave()
        policy = SatisfactionDeparturePolicy(0.35, min_observations=5)
        assert not policy.should_leave(provider, now=100.0)

    def test_paper_policies_thresholds(self):
        consumer_policy, provider_policy = paper_policies()
        assert consumer_policy.threshold == PAPER_CONSUMER_THRESHOLD == 0.5
        assert provider_policy.threshold == PAPER_PROVIDER_THRESHOLD == 0.35


class TestChurnMonitor:
    def test_check_once_executes_departures(self, factory, sim):
        sad = dissatisfied_provider(factory, "sad")
        happy = happy_provider(factory, "happy")
        monitor = ChurnMonitor(
            sim,
            consumers=[],
            providers=[sad, happy],
            consumer_policy=CaptivePolicy(),
            provider_policy=SatisfactionDeparturePolicy(0.35, min_observations=5),
        )
        departures = monitor.check_once()
        assert [d.participant_id for d in departures] == ["sad"]
        assert not sad.online
        assert happy.online
        assert monitor.providers_online == 1

    def test_departure_records_satisfaction(self, factory, sim):
        sad = dissatisfied_provider(factory)
        monitor = ChurnMonitor(
            sim, [], [sad], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
        )
        departure = monitor.check_once()[0]
        assert departure.kind == "provider"
        assert departure.satisfaction < 0.35

    def test_listeners_notified(self, factory, sim):
        sad = dissatisfied_provider(factory)
        monitor = ChurnMonitor(
            sim, [], [sad], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
        )
        seen = []
        monitor.on_departure(seen.append)
        monitor.check_once()
        assert len(seen) == 1

    def test_periodic_checks_via_simulator(self, factory, sim):
        provider = factory.provider()
        monitor = ChurnMonitor(
            sim, [], [provider], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
            check_interval=10.0,
        )
        monitor.start()
        # make the provider dissatisfied after t=15
        sim.schedule_at(
            15.0,
            lambda: [provider.record_proposal(-0.9, performed=True) for _ in range(10)],
        )
        sim.run_until(50.0)
        assert not provider.online
        assert monitor.departures[0].time == 20.0  # first check after t=15

    def test_captive_monitor_schedules_nothing(self, factory, sim):
        monitor = ChurnMonitor(
            sim, [], [factory.provider()], CaptivePolicy(), CaptivePolicy()
        )
        monitor.start()
        assert sim.events_pending == 0

    def test_start_is_idempotent(self, factory, sim):
        monitor = ChurnMonitor(
            sim, [], [factory.provider()], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35),
        )
        monitor.start()
        monitor.start()
        assert sim.events_pending == 1

    def test_consumer_departures(self, factory, sim):
        consumer = factory.consumer()
        for _ in range(20):
            consumer.record_query_satisfaction(0.1)
        monitor = ChurnMonitor(
            sim, [consumer], [],
            SatisfactionDeparturePolicy(0.5, min_observations=5),
            CaptivePolicy(),
        )
        departures = monitor.check_once()
        assert departures[0].kind == "consumer"
        assert not consumer.online
        assert monitor.consumers_online == 0

    def test_interval_validation(self, factory, sim):
        with pytest.raises(ValueError, match="check_interval"):
            ChurnMonitor(sim, [], [], CaptivePolicy(), CaptivePolicy(), check_interval=0.0)

    def test_departed_participants_not_rechecked(self, factory, sim):
        sad = dissatisfied_provider(factory)
        monitor = ChurnMonitor(
            sim, [], [sad], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
        )
        monitor.check_once()
        monitor.check_once()
        assert len(monitor.departures) == 1


class TestRejoinExtension:
    def _monitor(self, factory, sim, provider, cooldown=50.0):
        from repro.system.autonomy import ChurnMonitor

        return ChurnMonitor(
            sim, [], [provider], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
            check_interval=10.0,
            rejoin_cooldown=cooldown,
        )

    def test_cooldown_validation(self, factory, sim):
        with pytest.raises(ValueError, match="rejoin_cooldown"):
            self._monitor(factory, sim, factory.provider(), cooldown=0.0)

    def test_participant_returns_after_cooldown(self, factory, sim):
        provider = dissatisfied_provider(factory)
        monitor = self._monitor(factory, sim, provider, cooldown=50.0)
        monitor.start()
        sim.run_until(200.0)
        assert provider.online
        assert len(monitor.departures) >= 1
        assert len(monitor.rejoins) >= 1
        rejoin = monitor.rejoins[0]
        assert rejoin.absence >= 50.0
        assert rejoin.participant_id == provider.participant_id

    def test_rejoin_resets_satisfaction_window(self, factory, sim):
        provider = dissatisfied_provider(factory)
        monitor = self._monitor(factory, sim, provider, cooldown=50.0)
        monitor.start()
        sim.run_until(200.0)
        # fresh window: neutral satisfaction, no stale dissatisfaction
        assert provider.tracker.observations == 0
        assert provider.satisfaction == 0.5

    def test_no_rejoin_before_cooldown(self, factory, sim):
        provider = dissatisfied_provider(factory)
        monitor = self._monitor(factory, sim, provider, cooldown=1000.0)
        monitor.start()
        sim.run_until(200.0)
        assert not provider.online
        assert monitor.rejoins == []

    def test_rejoin_listener_notified(self, factory, sim):
        provider = dissatisfied_provider(factory)
        monitor = self._monitor(factory, sim, provider, cooldown=50.0)
        seen = []
        monitor.on_rejoin(seen.append)
        monitor.start()
        sim.run_until(200.0)
        assert len(seen) == len(monitor.rejoins) >= 1

    def test_without_cooldown_departures_are_final(self, factory, sim):
        from repro.system.autonomy import ChurnMonitor

        provider = dissatisfied_provider(factory)
        monitor = ChurnMonitor(
            sim, [], [provider], CaptivePolicy(),
            SatisfactionDeparturePolicy(0.35, min_observations=5),
            check_interval=10.0,
        )
        monitor.start()
        sim.run_until(500.0)
        assert not provider.online
        assert monitor.rejoins == []

    def test_rejoined_participant_can_leave_again(self, factory, sim):
        provider = dissatisfied_provider(factory)
        monitor = self._monitor(factory, sim, provider, cooldown=30.0)
        monitor.start()
        # keep feeding dissatisfaction whenever it is online
        def poison():
            if provider.online and provider.tracker.observations < 5:
                for _ in range(10):
                    provider.record_proposal(-0.9, performed=True)
            sim.schedule_in(5.0, poison)
        sim.schedule_in(1.0, poison)
        sim.run_until(400.0)
        assert len(monitor.departures) >= 2
        assert len(monitor.rejoins) >= 1
