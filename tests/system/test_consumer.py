"""Unit tests for the consumer entity: issuing, reputation, satisfaction."""

import pytest

from repro.core.mediator import Mediator
from repro.allocation.capacity import CapacityBasedPolicy


class TestConstruction:
    def test_validation(self, factory):
        with pytest.raises(ValueError, match="default_n_results"):
            factory.consumer(default_n_results=0)
        with pytest.raises(ValueError, match="rt_reference"):
            factory.consumer(rt_reference=0.0)
        with pytest.raises(ValueError, match="rt_smoothing"):
            factory.consumer(rt_smoothing=0.0)


class TestIssuing:
    def test_requires_mediator(self, factory):
        consumer = factory.consumer()
        with pytest.raises(RuntimeError, match="no mediator"):
            consumer.issue("t", service_demand=1.0)

    def test_offline_consumer_cannot_issue(self, factory):
        consumer = factory.consumer()
        consumer.attach_mediator(factory.provider(register=False))  # any entity
        consumer.leave()
        with pytest.raises(RuntimeError, match="offline"):
            consumer.issue("t", service_demand=1.0)

    def test_issue_stamps_fields(self, factory, sim):
        provider = factory.provider()
        consumer = factory.consumer()
        mediator = Mediator(sim, factory.network, factory.registry, CapacityBasedPolicy())
        consumer.attach_mediator(mediator)
        sim.run_until(5.0)
        query = consumer.issue("topic", service_demand=3.0, n_results=1)
        assert query.issued_at == 5.0
        assert query.topic == "topic"
        assert query.consumer is consumer
        assert consumer.stats.queries_issued == 1

    def test_default_n_results_used(self, factory, sim):
        provider = factory.provider()
        consumer = factory.consumer(default_n_results=3)
        mediator = Mediator(sim, factory.network, factory.registry, CapacityBasedPolicy())
        consumer.attach_mediator(mediator)
        query = consumer.issue("t", service_demand=1.0)
        assert query.n_results == 3


class TestReputation:
    def test_unknown_provider_is_neutral(self, factory):
        assert factory.consumer().reputation_of("nobody") == 0.5

    def test_fast_provider_earns_high_reputation(self, factory):
        consumer = factory.consumer(rt_reference=60.0)
        consumer.observe_response_time("p", 1.0)
        assert consumer.reputation_of("p") > 0.9

    def test_slow_provider_earns_low_reputation(self, factory):
        consumer = factory.consumer(rt_reference=60.0)
        consumer.observe_response_time("p", 10_000.0)
        assert consumer.reputation_of("p") < 0.01

    def test_ewma_smooths(self, factory):
        consumer = factory.consumer(rt_reference=60.0, rt_smoothing=0.5)
        consumer.observe_response_time("p", 100.0)
        first = consumer.reputation_of("p")
        consumer.observe_response_time("p", 0.0)  # instant response
        second = consumer.reputation_of("p")
        assert second > first  # improved, but
        assert second < 1.0  # not fully reset: memory of the slow one

    def test_negative_response_time_rejected(self, factory):
        with pytest.raises(ValueError, match="non-negative"):
            factory.consumer().observe_response_time("p", -1.0)

    def test_reputation_in_unit_interval(self, factory):
        consumer = factory.consumer()
        for rt in (0.0, 1.0, 60.0, 1e9):
            consumer.observe_response_time("p", rt)
            assert 0.0 < consumer.reputation_of("p") <= 1.0


class TestCompletionFlow:
    def _wired(self, factory, n_providers=2):
        providers = [factory.provider(f"p{i}") for i in range(n_providers)]
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        consumer.attach_mediator(mediator)
        return consumer, providers, mediator

    def test_completion_listener_fires_once(self, factory, sim):
        consumer, providers, mediator = self._wired(factory)
        completions = []
        consumer.on_completion(completions.append)
        consumer.default_n_results = 2
        consumer.issue("c0", service_demand=4.0)
        sim.run()
        assert len(completions) == 1
        assert completions[0].response_time is not None

    def test_response_time_stats(self, factory, sim):
        consumer, providers, mediator = self._wired(factory, n_providers=1)
        consumer.issue("c0", service_demand=8.0)
        sim.run()
        assert consumer.stats.mean_response_time == pytest.approx(8.0)

    def test_reputation_updated_per_result(self, factory, sim):
        consumer, providers, mediator = self._wired(factory, n_providers=1)
        consumer.issue("c0", service_demand=8.0)
        sim.run()
        assert consumer.reputation_of("p0") != 0.5

    def test_mean_response_time_zero_without_completions(self, factory):
        consumer = factory.consumer()
        assert consumer.stats.mean_response_time == 0.0

    def test_unknown_message_kind_rejected(self, factory, sim):
        from repro.des.entity import Entity

        consumer = factory.consumer()
        sender = Entity(sim, "x")
        factory.network.send("bogus", sender, consumer)
        with pytest.raises(ValueError, match="unexpected message"):
            sim.run()


class TestMembership:
    def test_leave_is_idempotent(self, factory, sim):
        consumer = factory.consumer()
        sim.run_until(3.0)
        consumer.leave()
        consumer.leave()
        assert consumer.left_at == 3.0

    def test_rejoin(self, factory, sim):
        consumer = factory.consumer()
        consumer.leave()
        consumer.rejoin()
        assert consumer.online
        assert consumer.left_at is None
