"""The indexed registry's contract: indexed lookups == naive re-scans.

Three layers of evidence:

* **randomized churn**: providers (topic-restricted and unrestricted)
  join, leave, rejoin, crash and toggle ``online`` directly in a
  seeded random order; after *every* transition, ``capable_snapshot``
  must equal a naive re-scan over the membership map for every topic;
* **snapshot discipline**: the returned tuple is reused (same object)
  between transitions and replaced after one -- the property the
  hot-path per-snapshot caches key on;
* **determinism**: snapshot ordering is registration order, immune to
  ``PYTHONHASHSEED`` (asserted in subprocesses), and the cached
  aggregate sweeps match their pre-index formulations bit-for-bit
  (with the optional numpy backend pinned to 1-ulp parity).
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys

import pytest

from repro.des.network import Network
from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query
from repro.system.registry import REBUILD_EVERY, SystemRegistry, _aggregate_sum

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    HAVE_NUMPY = False

TOPICS = ("astro", "bio", "climate")


def naive_capable(registry: SystemRegistry, topic: str):
    """The pre-index definition of ``P_q``: a scan in insertion order."""
    return [
        p
        for p in registry._providers.values()
        if p.online and registry.can_serve(p, topic)
    ]


def build_population(sim, network, registry, n=16, restricted_every=2, seed=5):
    stream = RandomStream(seed)
    providers = []
    for i in range(n):
        provider = Provider(
            sim, network, participant_id=f"p{i:02d}", capacity=stream.uniform(0.5, 2)
        )
        if i % restricted_every == 1:
            k = 1 + i % len(TOPICS)
            registry.add_provider(provider, topics=stream.sample(list(TOPICS), k))
        else:
            registry.add_provider(provider)
        providers.append(provider)
    return providers


class TestChurnConsistency:
    def assert_matches_naive(self, registry):
        for topic in TOPICS + ("unheard-of",):
            assert list(registry.capable_snapshot(topic)) == naive_capable(
                registry, topic
            ), f"index diverged from re-scan for topic {topic!r}"
        assert registry.check_index_consistency()

    def test_randomized_churn(self, sim, network):
        registry = SystemRegistry()
        providers = build_population(sim, network, registry, n=16)
        stream = RandomStream(99)
        self.assert_matches_naive(registry)
        next_id = len(providers)
        for step in range(300):
            action = stream.choice(("leave", "rejoin", "crash", "toggle", "add"))
            if action == "add":
                provider = Provider(sim, network, participant_id=f"x{next_id:03d}")
                next_id += 1
                if stream.uniform() < 0.5:
                    registry.add_provider(
                        provider, topics=[stream.choice(TOPICS)]
                    )
                else:
                    registry.add_provider(provider)
                providers.append(provider)
            else:
                provider = stream.choice(providers)
                if action == "leave":
                    provider.leave()
                elif action == "rejoin":
                    provider.rejoin()
                elif action == "crash":
                    provider.crash()
                else:
                    provider.online = not provider.online
            self.assert_matches_naive(registry)

    def test_rebuild_is_a_noop_on_consistent_state(self, sim, network):
        registry = SystemRegistry()
        build_population(sim, network, registry)
        before = {t: list(registry.capable_snapshot(t)) for t in TOPICS}
        registry.rebuild_indexes()
        self.assert_matches_naive(registry)
        after = {t: list(registry.capable_snapshot(t)) for t in TOPICS}
        assert before == after

    def test_periodic_rebuild_triggers(self, sim, network):
        registry = SystemRegistry()
        providers = build_population(sim, network, registry, n=4)
        for _ in range(REBUILD_EVERY // 2 + 1):
            providers[0].online = not providers[0].online
        # Each toggle is one transition; after REBUILD_EVERY of them the
        # counter must have wrapped through a rebuild at least once.
        assert registry._transitions_since_rebuild < REBUILD_EVERY
        self.assert_matches_naive(registry)

    def test_capable_providers_list_compat(self, sim, network):
        registry = SystemRegistry()
        build_population(sim, network, registry)
        consumer = Consumer(sim, network, participant_id="c0")
        registry.add_consumer(consumer)
        query = Query(
            consumer=consumer,
            topic="astro",
            service_demand=1.0,
            n_results=1,
            issued_at=0.0,
        )
        listed = registry.capable_providers(query)
        assert isinstance(listed, list)
        assert listed == naive_capable(registry, "astro")


class TestSnapshotDiscipline:
    def test_snapshot_reused_between_transitions(self, sim, network):
        registry = SystemRegistry()
        providers = build_population(sim, network, registry)
        first = registry.capable_snapshot("astro")
        assert registry.capable_snapshot("astro") is first
        providers[0].leave()
        second = registry.capable_snapshot("astro")
        assert second is not first
        assert registry.capable_snapshot("astro") is second

    def test_online_snapshot_reused(self, sim, network):
        registry = SystemRegistry()
        providers = build_population(sim, network, registry)
        first = registry.online_providers_snapshot()
        assert registry.online_providers_snapshot() is first
        providers[2].crash()
        assert registry.online_providers_snapshot() is not first

    def test_unrestricted_population_uses_online_snapshot(self, sim, network):
        registry = SystemRegistry()
        for i in range(5):
            registry.add_provider(
                Provider(sim, network, participant_id=f"p{i}")
            )
        assert (
            registry.capable_snapshot("anything")
            is registry.online_providers_snapshot()
        )

    def test_membership_listing_tuples_cached(self, sim, network):
        registry = SystemRegistry()
        build_population(sim, network, registry)
        providers = registry.providers
        assert isinstance(providers, tuple)
        assert registry.providers is providers
        registry.add_provider(Provider(sim, network, participant_id="late"))
        refreshed = registry.providers
        assert refreshed is not providers
        assert refreshed[-1].participant_id == "late"

        consumer = Consumer(sim, network, participant_id="c0")
        registry.add_consumer(consumer)
        consumers = registry.consumers
        assert isinstance(consumers, tuple)
        assert registry.consumers is consumers

    def test_consumer_online_snapshot_tracks_transitions(self, sim, network):
        registry = SystemRegistry()
        a = Consumer(sim, network, participant_id="a")
        b = Consumer(sim, network, participant_id="b")
        registry.add_consumer(a)
        registry.add_consumer(b)
        assert [c.participant_id for c in registry.online_consumers()] == ["a", "b"]
        a.leave()
        assert [c.participant_id for c in registry.online_consumers()] == ["b"]
        a.rejoin()
        assert [c.participant_id for c in registry.online_consumers()] == ["a", "b"]


class TestAggregates:
    def test_total_capacity_tracks_transitions(self, sim, network):
        registry = SystemRegistry()
        a = Provider(sim, network, participant_id="a", capacity=2.0)
        b = Provider(sim, network, participant_id="b", capacity=3.0)
        registry.add_provider(a)
        registry.add_provider(b)
        assert registry.total_capacity() == 5.0
        assert registry.total_capacity() == 5.0  # cached probe
        b.leave()
        assert registry.total_capacity() == 2.0
        assert registry.total_capacity(online_only=False) == 5.0
        b.rejoin()
        assert registry.total_capacity() == 5.0

    def test_means_match_pre_index_formulation(self, sim, network):
        registry = SystemRegistry()
        stream = RandomStream(3)
        providers = build_population(sim, network, registry, n=12)
        for p in providers:
            for _ in range(5):
                p.record_proposal(stream.uniform(-1, 1), stream.uniform() < 0.5)
        providers[3].leave()
        online = [p for p in registry._providers.values() if p.online]
        expected = sum(p.satisfaction for p in online) / len(online)
        assert registry.mean_provider_satisfaction() == expected

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    def test_numpy_aggregate_ulp_parity(self):
        """The numpy reduction may differ from the left-to-right python
        sum by accumulated rounding (pairwise summation); pin it to a
        tight relative tolerance like the scoring batch kernel does."""
        stream = RandomStream(7)
        values = [stream.uniform(0.0, 2.0) for _ in range(500)]
        python = _aggregate_sum(values, backend="python")
        vectorised = _aggregate_sum(values, backend="numpy")
        assert math.isclose(python, vectorised, rel_tol=1e-12)
        assert _aggregate_sum([], backend="numpy") == 0.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown scoring backend"):
            _aggregate_sum([1.0], backend="fortran")


#: Subprocess probe: capability sets are stored as Python sets, whose
#: iteration order depends on PYTHONHASHSEED -- snapshot ordering must
#: not (it is registration-ordinal order by construction).
_HASHSEED_SCRIPT = """
import json, sys
from repro.des.network import Network
from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator
from repro.system.provider import Provider
from repro.system.registry import SystemRegistry

sim = Simulator()
network = Network(sim)
registry = SystemRegistry()
stream = RandomStream(11)
topics = ["astro", "bio", "climate", "geo"]
for i in range(40):
    p = Provider(sim, network, participant_id=f"p{i:02d}")
    if i % 3:
        registry.add_provider(p, topics=stream.sample(topics, 1 + i % 3))
    else:
        registry.add_provider(p)
for i in range(0, 40, 7):
    registry.provider(f"p{i:02d}").leave()
snapshots = {
    topic: [p.participant_id for p in registry.capable_snapshot(topic)]
    for topic in topics
}
registry.rebuild_indexes()
rebuilt = {
    topic: [p.participant_id for p in registry.capable_snapshot(topic)]
    for topic in topics
}
assert snapshots == rebuilt, "rebuild changed snapshot ordering"
json.dump(snapshots, sys.stdout, sort_keys=True)
"""


def _snapshot_order_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_snapshot_order_immune_to_hash_seed():
    assert _snapshot_order_with_hash_seed("0") == _snapshot_order_with_hash_seed(
        "31337"
    )
