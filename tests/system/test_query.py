"""Unit tests for queries, results and allocation records."""

import pytest

from repro.system.query import (
    AllocationRecord,
    Query,
    QueryResult,
    QueryStatus,
)


class TestQuery:
    def test_validation(self, factory):
        consumer = factory.consumer()
        with pytest.raises(ValueError, match="service_demand"):
            factory.query(consumer, demand=0.0)
        with pytest.raises(ValueError, match="n_results"):
            factory.query(consumer, n_results=0)

    def test_qids_increase(self, factory):
        consumer = factory.consumer()
        a = factory.query(consumer)
        b = factory.query(consumer)
        assert b.qid > a.qid

    def test_consumer_id(self, factory):
        consumer = factory.consumer("proj")
        assert factory.query(consumer).consumer_id == "proj"

    def test_identity_semantics(self, factory):
        consumer = factory.consumer()
        a = factory.query(consumer)
        b = factory.query(consumer)
        assert a == a
        assert a != b
        assert len({a, b, a}) == 2

    def test_initial_status(self, factory):
        consumer = factory.consumer()
        assert factory.query(consumer).status is QueryStatus.ISSUED

    def test_repr_mentions_status(self, factory):
        consumer = factory.consumer()
        assert "issued" in repr(factory.query(consumer))


class TestQueryResult:
    def test_service_span(self, factory):
        consumer = factory.consumer()
        query = factory.query(consumer)
        result = QueryResult(query=query, provider_id="p", started_at=2.0, finished_at=5.0)
        assert result.service_span == 3.0


class TestAllocationRecord:
    def test_failure_record(self, factory):
        consumer = factory.consumer()
        record = AllocationRecord(query=factory.query(consumer), decided_at=0.0)
        assert record.is_failure
        assert record.response_time is None

    def test_completion_requires_all_results(self, factory):
        providers = [factory.provider("a"), factory.provider("b")]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=2)
        record = AllocationRecord(query=query, decided_at=0.0, allocated=providers)
        r1 = QueryResult(query=query, provider_id="a", started_at=0.0, finished_at=5.0)
        assert record.record_result(r1) is False
        assert record.completed_at is None
        r2 = QueryResult(query=query, provider_id="b", started_at=0.0, finished_at=9.0)
        assert record.record_result(r2) is True
        assert record.completed_at == 9.0
        assert query.status is QueryStatus.COMPLETED
        assert record.response_time == 9.0

    def test_result_for_wrong_query_rejected(self, factory):
        consumer = factory.consumer()
        query = factory.query(consumer)
        other = factory.query(consumer)
        record = AllocationRecord(
            query=query, decided_at=0.0, allocated=[factory.provider()]
        )
        bad = QueryResult(query=other, provider_id="p", started_at=0.0, finished_at=1.0)
        with pytest.raises(ValueError, match="recorded on record"):
            record.record_result(bad)

    def test_id_accessors(self, factory):
        a, b = factory.provider("a"), factory.provider("b")
        consumer = factory.consumer()
        record = AllocationRecord(
            query=factory.query(consumer),
            decided_at=0.0,
            allocated=[a],
            informed=[a, b],
        )
        assert record.allocated_ids == ["a"]
        assert record.informed_ids == ["a", "b"]


class TestQuorum:
    def test_quorum_validation(self, factory):
        consumer = factory.consumer()
        with pytest.raises(ValueError, match="quorum"):
            Query(
                consumer=consumer, topic="t", service_demand=1.0,
                n_results=2, quorum=3, issued_at=0.0,
            )
        with pytest.raises(ValueError, match="quorum"):
            Query(
                consumer=consumer, topic="t", service_demand=1.0,
                n_results=2, quorum=0, issued_at=0.0,
            )

    def test_quorum_completion_at_first_result(self, factory):
        providers = [factory.provider("a"), factory.provider("b")]
        consumer = factory.consumer()
        query = Query(
            consumer=consumer, topic="t", service_demand=1.0,
            n_results=2, quorum=1, issued_at=0.0,
        )
        record = AllocationRecord(query=query, decided_at=0.0, allocated=providers)
        assert record.results_required == 1
        first = QueryResult(query=query, provider_id="a", started_at=0.0, finished_at=3.0)
        assert record.record_result(first) is True
        assert record.completed_at == 3.0
        # the second (slower) replica no longer changes completion
        second = QueryResult(query=query, provider_id="b", started_at=0.0, finished_at=9.0)
        assert record.record_result(second) is False
        assert record.completed_at == 3.0

    def test_no_quorum_requires_all_allocated(self, factory):
        providers = [factory.provider("a"), factory.provider("b")]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=2)
        record = AllocationRecord(query=query, decided_at=0.0, allocated=providers)
        assert record.results_required == 2

    def test_quorum_bounded_by_allocated(self, factory):
        provider = factory.provider("a")
        consumer = factory.consumer()
        query = Query(
            consumer=consumer, topic="t", service_demand=1.0,
            n_results=3, quorum=2, issued_at=0.0,
        )
        # only one provider could be allocated
        record = AllocationRecord(query=query, decided_at=0.0, allocated=[provider])
        assert record.results_required == 1

    def test_consumer_default_quorum_stamped(self, factory, sim):
        from repro.allocation.capacity import CapacityBasedPolicy
        from repro.core.mediator import Mediator

        factory.provider("a")
        factory.provider("b")
        consumer = factory.consumer(default_n_results=2)
        consumer.default_quorum = 1
        mediator = Mediator(sim, factory.network, factory.registry, CapacityBasedPolicy())
        consumer.attach_mediator(mediator)
        query = consumer.issue("t", service_demand=5.0)
        assert query.quorum == 1
        override = consumer.issue("t", service_demand=5.0, quorum=2)
        assert override.quorum == 2
