"""Unit tests for crash injection and result timeouts."""

import pytest

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.mediator import Mediator
from repro.des.rng import RandomStream
from repro.system.failures import Crash, CrashInjector, FailureConfig
from repro.system.query import AllocationRecord, QueryStatus


def record_for(factory, provider, consumer, demand=10.0):
    query = factory.query(consumer, demand=demand)
    return AllocationRecord(query=query, decided_at=factory.sim.now, allocated=[provider])


class TestProviderCrash:
    def test_crash_drops_backlog_and_cancels_results(self, factory, sim):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        provider.execute(record_for(factory, provider, consumer, demand=10.0))
        assert provider.queries_in_progress == 2
        lost = provider.crash()
        assert lost == 2
        assert provider.queries_in_progress == 0
        assert provider.backlog_seconds == 0.0
        assert not provider.online
        sim.run()
        # no results were ever delivered
        assert consumer.stats.queries_completed == 0

    def test_crash_contrasts_with_graceful_leave(self, factory, sim):
        graceful = factory.provider("graceful")
        crashing = factory.provider("crashing")
        consumer = factory.consumer()
        graceful.execute(record_for(factory, graceful, consumer))
        crashing.execute(record_for(factory, crashing, consumer))
        graceful.leave()   # lame-duck: drains its backlog
        crashing.crash()   # abrupt: loses it
        sim.run()
        assert consumer.stats.queries_completed == 1

    def test_crash_counter(self, factory):
        provider = factory.provider()
        provider.crash()
        provider.rejoin()
        provider.crash()
        assert provider.crashes == 2

    def test_completed_work_not_affected(self, factory, sim):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        provider.execute(record_for(factory, provider, consumer, demand=5.0))
        sim.run_until(6.0)  # work finished at t=5
        assert provider.crash() == 0
        assert consumer.stats.queries_completed == 1


class TestFailureConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="mttf"):
            FailureConfig(mttf=0.0)
        with pytest.raises(ValueError, match="repair_time"):
            FailureConfig(repair_time=0.0)
        with pytest.raises(ValueError, match="start"):
            FailureConfig(start=-1.0)


class TestCrashInjector:
    def test_crashes_happen_and_are_recorded(self, factory, sim):
        providers = [factory.provider(f"p{i}") for i in range(5)]
        injector = CrashInjector(
            sim, providers, FailureConfig(mttf=50.0, repair_time=None),
            RandomStream(3),
        )
        injector.start()
        sim.run_until(1000.0)
        assert len(injector.crashes) == 5  # permanent: everyone eventually dies
        assert all(not p.online for p in providers)

    def test_repair_brings_providers_back(self, factory, sim):
        providers = [factory.provider(f"p{i}") for i in range(5)]
        injector = CrashInjector(
            sim, providers, FailureConfig(mttf=100.0, repair_time=10.0),
            RandomStream(3),
        )
        injector.start()
        sim.run_until(2000.0)
        assert len(injector.crashes) > 5  # crash / repair loops
        # with a 10s repair after ~100s uptime, most are online at any instant
        assert sum(1 for p in providers if p.online) >= 3

    def test_listener_notified(self, factory, sim):
        provider = factory.provider()
        injector = CrashInjector(
            sim, [provider], FailureConfig(mttf=10.0, repair_time=None),
            RandomStream(1),
        )
        seen = []
        injector.on_crash(seen.append)
        injector.start()
        sim.run_until(500.0)
        assert len(seen) == 1
        assert isinstance(seen[0], Crash)

    def test_no_crashes_before_start_time(self, factory, sim):
        provider = factory.provider()
        injector = CrashInjector(
            sim, [provider], FailureConfig(mttf=1.0, repair_time=None, start=100.0),
            RandomStream(1),
        )
        injector.start()
        sim.run_until(99.0)
        assert injector.crashes == []

    def test_deterministic_per_seed(self, factory, sim):
        providers = [factory.provider(f"p{i}") for i in range(3)]
        injector = CrashInjector(
            sim, providers, FailureConfig(mttf=100.0, repair_time=None),
            RandomStream(9),
        )
        injector.start()
        sim.run_until(1000.0)
        times_a = [c.time for c in injector.crashes]

        from repro.des.scheduler import Simulator
        from repro.des.network import Network
        from tests.conftest import Factory

        sim2 = Simulator()
        factory2 = Factory(sim2, Network(sim2))
        providers2 = [factory2.provider(f"p{i}") for i in range(3)]
        injector2 = CrashInjector(
            sim2, providers2, FailureConfig(mttf=100.0, repair_time=None),
            RandomStream(9),
        )
        injector2.start()
        sim2.run_until(1000.0)
        assert [c.time for c in injector2.crashes] == times_a

    def test_churn_departed_provider_not_crashed(self, factory, sim):
        provider = factory.provider()
        provider.leave()
        injector = CrashInjector(
            sim, [provider], FailureConfig(mttf=10.0, repair_time=None),
            RandomStream(1),
        )
        injector.start()
        sim.run_until(500.0)
        assert injector.crashes == []
        assert provider.crashes == 0


class TestConsumerTimeout:
    def _wired(self, factory, timeout=30.0):
        provider = factory.provider("p0", capacity=1.0)
        consumer = factory.consumer("c0")
        consumer.result_timeout = timeout
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        consumer.attach_mediator(mediator)
        return provider, consumer, mediator

    def test_fast_results_do_not_time_out(self, factory, sim):
        provider, consumer, mediator = self._wired(factory, timeout=30.0)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert consumer.stats.queries_completed == 1
        assert consumer.stats.queries_timed_out == 0

    def test_crashed_provider_triggers_timeout(self, factory, sim):
        provider, consumer, mediator = self._wired(factory, timeout=30.0)
        query = consumer.issue("c0", service_demand=10.0)
        sim.schedule_at(2.0, provider.crash)
        timeouts = []
        consumer.on_timeout(timeouts.append)
        sim.run()
        assert consumer.stats.queries_timed_out == 1
        assert consumer.stats.queries_completed == 0
        assert query.status is QueryStatus.TIMED_OUT
        assert len(timeouts) == 1

    def test_timeout_records_zero_satisfaction(self, factory, sim):
        provider, consumer, mediator = self._wired(factory, timeout=30.0)
        consumer.issue("c0", service_demand=10.0)
        sim.schedule_at(2.0, provider.crash)
        sim.run()
        assert consumer.satisfaction < 0.5  # the zero interaction pulled it down

    def test_slow_results_time_out_even_without_crash(self, factory, sim):
        provider, consumer, mediator = self._wired(factory, timeout=5.0)
        consumer.issue("c0", service_demand=100.0)  # needs 100s, deadline 5s
        sim.run()
        assert consumer.stats.queries_timed_out == 1
        # the late result still arrived but no longer counts as completion
        assert consumer.stats.queries_completed == 0

    def test_no_timeout_configured_means_no_writeoffs(self, factory, sim):
        provider, consumer, mediator = self._wired(factory, timeout=None)
        consumer.result_timeout = None
        consumer.issue("c0", service_demand=10.0)
        sim.schedule_at(2.0, provider.crash)
        sim.run()
        assert consumer.stats.queries_timed_out == 0
        assert consumer.stats.queries_completed == 0  # hangs silently
