"""Substrate validation: the simulator against queueing theory.

A reproduction's simulator is only as credible as its service model.
These tests drive a single provider as an M/G/1 queue -- Poisson
arrivals, general service times, one server -- and compare the measured
mean response time against the Pollaczek-Khinchine formula::

    E[W_q] = lambda * E[S^2] / (2 * (1 - rho)),   rho = lambda * E[S]
    E[T]   = E[W_q] + E[S]

and the latency accounting against exact arithmetic under fixed network
delays.  Tolerances are statistical (thousands of queries per run).
"""

import pytest

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.mediator import Mediator
from repro.des.network import FixedLatency, Network
from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.registry import SystemRegistry
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.queries import FixedDemand, LognormalDemand


def run_mg1(demand_model, rate, horizon=150_000.0, latency=0.0, seed=5):
    """One provider, open-loop Poisson arrivals; returns (consumer, sim)."""
    sim = Simulator()
    network = Network(sim, FixedLatency(latency))
    registry = SystemRegistry()
    provider = Provider(sim, network, participant_id="server", capacity=1.0)
    registry.add_provider(provider)
    consumer = Consumer(sim, network, participant_id="source", default_n_results=1)
    registry.add_consumer(consumer)
    mediator = Mediator(
        sim, network, registry, CapacityBasedPolicy(), keep_records=False
    )
    consumer.attach_mediator(mediator)
    arrivals = PoissonArrivals(
        sim, consumer, demand_model, rate=rate,
        stream=RandomStream(seed), horizon=horizon,
    )
    arrivals.start()
    sim.run()
    return consumer, sim


def pollaczek_khinchine(rate, mean_service, second_moment):
    """Theoretical M/G/1 mean response time."""
    rho = rate * mean_service
    assert rho < 1.0, "theory requires a stable queue"
    waiting = rate * second_moment / (2.0 * (1.0 - rho))
    return waiting + mean_service


class TestMG1:
    def test_md1_deterministic_service(self):
        """M/D/1 at rho = 0.6: fixed 30 s jobs."""
        mean_service = 30.0
        rate = 0.02  # rho = 0.6
        consumer, _ = run_mg1(FixedDemand(mean_service), rate)
        theory = pollaczek_khinchine(rate, mean_service, mean_service**2)
        measured = consumer.stats.mean_response_time
        assert consumer.stats.queries_completed > 2000
        assert measured == pytest.approx(theory, rel=0.10)

    def test_mg1_lognormal_service(self):
        """M/G/1 at rho = 0.6 with cv = 0.5 lognormal service."""
        mean_service, cv = 30.0, 0.5
        rate = 0.02
        model = LognormalDemand(RandomStream(77), mean=mean_service, cv=cv)
        consumer, _ = run_mg1(model, rate)
        second_moment = mean_service**2 * (1.0 + cv**2)
        theory = pollaczek_khinchine(rate, mean_service, second_moment)
        measured = consumer.stats.mean_response_time
        assert measured == pytest.approx(theory, rel=0.10)

    def test_variance_increases_waiting(self):
        """P-K's core prediction: same mean, higher variance, longer waits."""
        rate = 0.02
        low_var = LognormalDemand(RandomStream(1), mean=30.0, cv=0.2)
        high_var = LognormalDemand(RandomStream(1), mean=30.0, cv=1.0)
        rt_low = run_mg1(low_var, rate)[0].stats.mean_response_time
        rt_high = run_mg1(high_var, rate)[0].stats.mean_response_time
        assert rt_high > rt_low

    def test_load_increases_waiting_nonlinearly(self):
        """Approaching saturation blows the queue up faster than linearly."""
        service = FixedDemand(30.0)
        rt_low = run_mg1(service, rate=0.01, horizon=100_000.0)[0].stats.mean_response_time
        rt_mid = run_mg1(service, rate=0.02, horizon=100_000.0)[0].stats.mean_response_time
        rt_high = run_mg1(service, rate=0.03, horizon=100_000.0)[0].stats.mean_response_time
        assert rt_low < rt_mid < rt_high
        # convexity: the second step hurts more than the first
        assert (rt_high - rt_mid) > (rt_mid - rt_low)

    def test_light_traffic_response_is_service_time(self):
        """At vanishing load the response time is just the service time."""
        consumer, _ = run_mg1(FixedDemand(30.0), rate=0.0005, horizon=200_000.0)
        # rho = 0.015: rare collisions add a fraction of a second
        assert consumer.stats.mean_response_time == pytest.approx(30.0, rel=0.05)


class TestLatencyAccounting:
    def test_response_time_includes_both_network_legs(self):
        """Unloaded system, fixed latency L: rt = 2L + service.

        Leg 1 (consumer -> mediator) delays mediation start; leg 2
        (mediator -> provider) delays execution start; leg 3 (provider
        -> consumer) delays the result; service = demand / capacity.
        """
        latency = 0.5
        consumer, _ = run_mg1(
            FixedDemand(10.0), rate=0.0005, horizon=50_000.0, latency=latency
        )
        # consumer->mediator + mediator->provider + provider->consumer
        expected = 3 * latency + 10.0
        assert consumer.stats.mean_response_time == pytest.approx(expected, abs=1e-6)
