"""Unit tests for the policy factory."""

import pytest

from repro.allocation.boinc_shares import BoincSharesPolicy
from repro.allocation.capacity import CapacityBasedPolicy
from repro.allocation.economic import EconomicPolicy
from repro.allocation.factory import available_policies, make_policy
from repro.allocation.simple import RandomPolicy, RoundRobinPolicy, ShortestQueuePolicy
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.rng import RandomRoot


class TestFactory:
    def test_every_advertised_policy_builds(self, root):
        for name in available_policies():
            policy = make_policy(name, root)
            assert policy.name == name

    def test_types(self, root):
        assert isinstance(make_policy("sbqa", root), SbQAPolicy)
        assert isinstance(make_policy("capacity", root), CapacityBasedPolicy)
        assert isinstance(make_policy("economic", root), EconomicPolicy)
        assert isinstance(make_policy("boinc-shares", root), BoincSharesPolicy)
        assert isinstance(make_policy("random", root), RandomPolicy)
        assert isinstance(make_policy("round-robin", root), RoundRobinPolicy)
        assert isinstance(make_policy("shortest-queue", root), ShortestQueuePolicy)

    def test_case_insensitive(self, root):
        assert isinstance(make_policy("SBQA", root), SbQAPolicy)

    def test_unknown_name(self, root):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("quantum", root)

    def test_sbqa_config_passed_through(self, root):
        policy = make_policy("sbqa", root, sbqa=SbQAConfig(k=7, kn=3))
        assert policy.config.k == 7
        assert policy.config.kn == 3

    def test_baseline_params_passed_through(self, root):
        policy = make_policy("economic", root, params={"selfishness": 0.9})
        assert policy.selfishness == 0.9

    def test_same_root_gives_reproducible_stochastic_policies(self):
        a = make_policy("random", RandomRoot(5))
        b = make_policy("random", RandomRoot(5))
        assert a._stream.seed == b._stream.seed
