"""Baseline ``select_fast`` contract: bit-identical to ``select``.

Every built-in policy now has a hot-path ``select_fast`` (the fast
engine calls it for *all* policies, not just SbQA), so each baseline's
batched implementation is held to the same standard as SbQA's: same
allocations, same informed set, same consult accounting, same metadata
floats, from the same evolving state.  Two policy instances per
technique (same seeds) run side by side -- one through the faithful
``select``, one through ``select_fast`` -- over randomized load,
share and demand states.
"""

from __future__ import annotations

import pytest

from repro.allocation.factory import make_policy
from repro.core.policy import AllocationContext, FastAllocationDecision
from repro.des.network import Network
from repro.des.rng import RandomRoot, RandomStream
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query

BASELINES = (
    "capacity",
    "economic",
    "boinc-shares",
    "random",
    "round-robin",
    "shortest-queue",
)


@pytest.fixture
def population():
    sim = Simulator()
    network = Network(sim)
    stream = RandomStream(41)
    providers = [
        Provider(
            sim,
            network,
            participant_id=f"p{i:02d}",
            capacity=stream.uniform(0.5, 2.0),
            preferences={"c0": stream.uniform(-1.0, 1.0)},
            resource_shares={"c0": stream.uniform(0.0, 2.0), "other": 1.0},
        )
        for i in range(14)
    ]
    consumer = Consumer(
        sim,
        network,
        participant_id="c0",
        preferences={p.participant_id: stream.uniform(-1.0, 1.0) for p in providers},
    )
    return sim, providers, consumer


def assert_decisions_equal(a, b):
    assert [p.participant_id for p in a.allocated] == [
        p.participant_id for p in b.allocated
    ]
    assert [p.participant_id for p in a.informed] == [
        p.participant_id for p in b.informed
    ]
    assert a.consult_messages == b.consult_messages
    assert a.metadata == b.metadata  # exact float equality (economic bids)
    assert a.scores == b.scores
    assert a.omegas == b.omegas


@pytest.mark.parametrize("policy_name", BASELINES)
def test_select_fast_matches_select(policy_name, population):
    sim, providers, consumer = population
    slow = make_policy(policy_name, RandomRoot(77))
    fast = make_policy(policy_name, RandomRoot(77))
    jitter = RandomStream(5)
    for round_index in range(40):
        # Advance the clock and randomize backlogs so utilization,
        # bids, debts and queue depths all vary between rounds.
        sim.run_until(sim.now + jitter.uniform(1.0, 30.0))
        for p in providers:
            p._busy_until = sim.now + jitter.uniform(-20.0, 120.0)
        query = Query(
            consumer=consumer,
            topic="c0",
            service_demand=jitter.uniform(0.5, 25.0),
            n_results=1 + round_index % 3,
            issued_at=sim.now,
        )
        ctx = AllocationContext(now=sim.now, trace=NULL_RECORDER)
        a = slow.select(query, providers, ctx)
        b = fast.select_fast(query, tuple(providers), ctx)
        assert isinstance(b, FastAllocationDecision)
        assert_decisions_equal(a, b)


def test_round_robin_snapshot_cache_tracks_new_snapshots(population):
    """The id-sort cache keys on snapshot identity: a different tuple
    (e.g. after churn) must re-sort, not reuse the stale order."""
    sim, providers, consumer = population
    policy = make_policy("round-robin", RandomRoot(1))
    ctx = AllocationContext(now=0.0, trace=NULL_RECORDER)

    def query():
        return Query(
            consumer=consumer,
            topic="c0",
            service_demand=1.0,
            n_results=1,
            issued_at=0.0,
        )

    full = tuple(providers)
    first = policy.select_fast(query(), full, ctx)
    shrunk = tuple(providers[5:])
    second = policy.select_fast(query(), shrunk, ctx)
    assert second.allocated[0] in providers[5:]


def test_default_select_fast_delegates_to_select(population):
    """A policy without a bespoke fast path still works on the fast
    engine via the base-class delegation."""
    from repro.core.policy import AllocationDecision, AllocationPolicy

    class MinimalPolicy(AllocationPolicy):
        name = "minimal"

        def select(self, query, candidates, ctx):
            return AllocationDecision(allocated=[candidates[0]])

    sim, providers, consumer = population
    policy = MinimalPolicy()
    ctx = AllocationContext(now=0.0, trace=NULL_RECORDER)
    query = Query(
        consumer=consumer,
        topic="c0",
        service_demand=1.0,
        n_results=1,
        issued_at=0.0,
    )
    decision = policy.select_fast(query, tuple(providers), ctx)
    assert decision.allocated == [providers[0]]
