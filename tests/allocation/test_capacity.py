"""Unit tests for the capacity-based baseline [9]."""

import pytest

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.policy import AllocationContext
from repro.system.query import AllocationRecord


class TestCapacityBased:
    def test_picks_highest_available_capacity(self, factory):
        slow = factory.provider("slow", capacity=0.5)
        fast = factory.provider("fast", capacity=2.0)
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=1)
        decision = CapacityBasedPolicy().select(
            query, [slow, fast], AllocationContext(now=0.0)
        )
        assert decision.allocated[0].participant_id == "fast"

    def test_busy_fast_machine_loses_to_idle_one(self, factory, sim):
        busy = factory.provider("busy", capacity=2.0, saturation_horizon=10.0)
        idle = factory.provider("idle", capacity=1.5)
        consumer = factory.consumer()
        # saturate the fast machine
        q = factory.query(consumer, demand=40.0)
        busy.execute(AllocationRecord(query=q, decided_at=0.0, allocated=[busy]))
        query = factory.query(consumer, n_results=1)
        decision = CapacityBasedPolicy().select(
            query, [busy, idle], AllocationContext(now=0.0)
        )
        assert decision.allocated[0].participant_id == "idle"

    def test_allocates_n_results_providers(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(5)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=3)
        decision = CapacityBasedPolicy().select(
            query, providers, AllocationContext(now=0.0)
        )
        assert len(decision.allocated) == 3

    def test_informed_equals_allocated(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(3)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=1)
        decision = CapacityBasedPolicy().select(
            query, providers, AllocationContext(now=0.0)
        )
        assert decision.informed == decision.allocated

    def test_ties_break_by_id(self, factory):
        providers = [factory.provider(pid) for pid in ("z", "a", "m")]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=2)
        decision = CapacityBasedPolicy().select(
            query, providers, AllocationContext(now=0.0)
        )
        assert [p.participant_id for p in decision.allocated] == ["a", "m"]

    def test_no_consultation(self):
        assert CapacityBasedPolicy.consults_participants is False
