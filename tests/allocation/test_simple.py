"""Unit tests for the random / round-robin / shortest-queue baselines."""

import pytest

from repro.allocation.simple import RandomPolicy, RoundRobinPolicy, ShortestQueuePolicy
from repro.core.policy import AllocationContext
from repro.des.rng import RandomStream
from repro.system.query import AllocationRecord


def ctx():
    return AllocationContext(now=0.0)


class TestRandomPolicy:
    def test_allocates_from_candidates(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(5)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=2)
        policy = RandomPolicy(RandomStream(1))
        decision = policy.select(query, providers, ctx())
        assert len(decision.allocated) == 2
        assert set(decision.allocated) <= set(providers)

    def test_deterministic_per_seed(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(10)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=3)
        d1 = RandomPolicy(RandomStream(7)).select(query, providers, ctx())
        d2 = RandomPolicy(RandomStream(7)).select(query, providers, ctx())
        assert [p.participant_id for p in d1.allocated] == [
            p.participant_id for p in d2.allocated
        ]

    def test_covers_population_over_time(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(10)]
        consumer = factory.consumer()
        policy = RandomPolicy(RandomStream(3))
        seen = set()
        for _ in range(100):
            query = factory.query(consumer, n_results=1)
            seen.update(
                p.participant_id for p in policy.select(query, providers, ctx()).allocated
            )
        assert len(seen) == 10


class TestRoundRobinPolicy:
    def test_cycles_through_providers(self, factory):
        providers = [factory.provider(pid) for pid in ("a", "b", "c")]
        consumer = factory.consumer()
        policy = RoundRobinPolicy()
        picks = []
        for _ in range(6):
            query = factory.query(consumer, n_results=1)
            picks.append(policy.select(query, providers, ctx()).allocated[0].participant_id)
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_multi_allocation_advances_cursor(self, factory):
        providers = [factory.provider(pid) for pid in ("a", "b", "c")]
        consumer = factory.consumer()
        policy = RoundRobinPolicy()
        query = factory.query(consumer, n_results=2)
        first = policy.select(query, providers, ctx())
        assert [p.participant_id for p in first.allocated] == ["a", "b"]
        second = policy.select(factory.query(consumer, n_results=2), providers, ctx())
        assert [p.participant_id for p in second.allocated] == ["c", "a"]

    def test_cursor_survives_shrinking_pool(self, factory):
        providers = [factory.provider(pid) for pid in ("a", "b", "c")]
        consumer = factory.consumer()
        policy = RoundRobinPolicy()
        for _ in range(2):
            policy.select(factory.query(consumer, n_results=1), providers, ctx())
        # provider list shrinks (e.g. departures); selection must not crash
        decision = policy.select(factory.query(consumer, n_results=1), providers[:2], ctx())
        assert len(decision.allocated) == 1


class TestShortestQueuePolicy:
    def test_picks_smallest_backlog(self, factory):
        busy = factory.provider("busy", capacity=1.0)
        idle = factory.provider("idle", capacity=1.0)
        consumer = factory.consumer()
        filler = factory.query(consumer, demand=50.0)
        busy.execute(AllocationRecord(query=filler, decided_at=0.0, allocated=[busy]))
        query = factory.query(consumer, n_results=1)
        decision = ShortestQueuePolicy().select(query, [busy, idle], ctx())
        assert decision.allocated[0].participant_id == "idle"

    def test_ignores_raw_capacity(self, factory):
        """A slow idle machine beats a fast busy one (contrast with
        the capacity-based policy)."""
        fast_busy = factory.provider("fast", capacity=10.0)
        slow_idle = factory.provider("slow", capacity=0.1)
        consumer = factory.consumer()
        filler = factory.query(consumer, demand=10.0)
        fast_busy.execute(
            AllocationRecord(query=filler, decided_at=0.0, allocated=[fast_busy])
        )
        query = factory.query(consumer, n_results=1)
        decision = ShortestQueuePolicy().select(query, [fast_busy, slow_idle], ctx())
        assert decision.allocated[0].participant_id == "slow"
