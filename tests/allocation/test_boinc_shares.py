"""Unit tests for the native BOINC resource-shares dispatcher."""

import pytest

from repro.allocation.boinc_shares import BoincSharesPolicy
from repro.core.policy import AllocationContext


def ctx(now=0.0):
    return AllocationContext(now=now)


class TestDebtModel:
    def test_zero_share_refuses(self, factory):
        provider = factory.provider(resource_shares={"other": 1.0})
        policy = BoincSharesPolicy()
        assert policy.debt(provider, "c0", now=100.0) == float("-inf")

    def test_debt_grows_with_time(self, factory):
        provider = factory.provider(capacity=2.0, resource_shares={"c0": 1.0})
        policy = BoincSharesPolicy()
        assert policy.debt(provider, "c0", now=10.0) == pytest.approx(20.0)

    def test_debt_shrinks_with_granted_work(self, factory):
        provider = factory.provider(capacity=1.0, resource_shares={"c0": 1.0})
        consumer = factory.consumer("c0")
        policy = BoincSharesPolicy()
        query = factory.query(consumer, demand=30.0, n_results=1)
        policy.select(query, [provider], ctx(now=100.0))
        assert policy.debt(provider, "c0", now=100.0) == pytest.approx(70.0)

    def test_shares_normalised(self, factory):
        provider = factory.provider(capacity=1.0, resource_shares={"a": 8.0, "b": 2.0})
        policy = BoincSharesPolicy()
        # share of a = 0.8 -> debt at t=100 is 80
        assert policy.debt(provider, "a", now=100.0) == pytest.approx(80.0)

    def test_no_shares_at_all_refuses(self, factory):
        provider = factory.provider(resource_shares={})
        policy = BoincSharesPolicy()
        assert policy.debt(provider, "c0", now=100.0) == float("-inf")

    def test_overdraft_validation(self):
        with pytest.raises(ValueError, match="overdraft"):
            BoincSharesPolicy(overdraft=-1.0)


class TestSelection:
    def test_highest_debt_wins(self, factory):
        poor = factory.provider("poor", resource_shares={"c0": 0.2, "x": 0.8})
        rich = factory.provider("rich", resource_shares={"c0": 1.0})
        consumer = factory.consumer("c0")
        query = factory.query(consumer, demand=5.0, n_results=1)
        decision = BoincSharesPolicy().select(query, [poor, rich], ctx(now=100.0))
        assert decision.allocated[0].participant_id == "rich"

    def test_rigid_cap_wastes_idle_capacity(self, factory):
        """The paper's 80/20 example: c_b cannot exceed its 20% share
        even when the 80% project is silent and the provider idle."""
        provider = factory.provider(
            "v", capacity=1.0, resource_shares={"c_a": 0.8, "c_b": 0.2}
        )
        consumer_b = factory.consumer("c_b")
        policy = BoincSharesPolicy(overdraft=0.0)
        # at t=100 c_b's entitlement is 20 work units
        q1 = factory.query(consumer_b, demand=15.0, n_results=1)
        assert not policy.select(q1, [provider], ctx(now=100.0)).is_failure
        # entitlement nearly consumed: a further query is refused even
        # though the provider is idle -- wasted capacity
        q2 = factory.query(consumer_b, demand=15.0, n_results=1)
        assert policy.select(q2, [provider], ctx(now=100.0)).is_failure

    def test_overdraft_softens_cold_start(self, factory):
        provider = factory.provider("v", capacity=1.0, resource_shares={"c0": 1.0})
        consumer = factory.consumer("c0")
        # at t=0 the entitlement is 0; only the overdraft admits work
        query = factory.query(consumer, demand=5.0, n_results=1)
        assert not BoincSharesPolicy(overdraft=30.0).select(
            query, [provider], ctx(now=0.0)
        ).is_failure
        assert BoincSharesPolicy(overdraft=0.0).select(
            query, [provider], ctx(now=0.0)
        ).is_failure

    def test_failure_when_no_shares_match(self, factory):
        provider = factory.provider(resource_shares={"other": 1.0})
        consumer = factory.consumer("c0")
        query = factory.query(consumer, n_results=1)
        assert BoincSharesPolicy().select(query, [provider], ctx(100.0)).is_failure

    def test_replicated_allocation(self, factory):
        providers = [
            factory.provider(f"p{i}", resource_shares={"c0": 1.0}) for i in range(3)
        ]
        consumer = factory.consumer("c0")
        query = factory.query(consumer, demand=5.0, n_results=2)
        decision = BoincSharesPolicy().select(query, providers, ctx(now=100.0))
        assert len(decision.allocated) == 2

    def test_granted_work_tracked_per_pair(self, factory):
        provider = factory.provider("p", capacity=1.0, resource_shares={"a": 0.5, "b": 0.5})
        ca, cb = factory.consumer("a"), factory.consumer("b")
        policy = BoincSharesPolicy()
        policy.select(factory.query(ca, demand=10.0, n_results=1), [provider], ctx(100.0))
        # consumer b's debt is untouched by a's grant
        assert policy.debt(provider, "b", now=100.0) == pytest.approx(50.0)
        assert policy.debt(provider, "a", now=100.0) == pytest.approx(40.0)
