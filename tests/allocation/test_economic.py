"""Unit tests for the economic (Mariposa-style) baseline [13]."""

import pytest

from repro.allocation.economic import EconomicPolicy
from repro.core.policy import AllocationContext
from repro.system.query import AllocationRecord


class TestBids:
    def test_idle_indifferent_provider_bids_service_time(self, factory):
        provider = factory.provider(capacity=2.0)
        consumer = factory.consumer()
        query = factory.query(consumer, demand=10.0)
        policy = EconomicPolicy(selfishness=0.0)
        assert policy.bid(provider, query) == pytest.approx(5.0)

    def test_backlog_raises_bid(self, factory):
        provider = factory.provider(capacity=1.0)
        consumer = factory.consumer()
        filler = factory.query(consumer, demand=20.0)
        provider.execute(AllocationRecord(query=filler, decided_at=0.0, allocated=[provider]))
        query = factory.query(consumer, demand=10.0)
        policy = EconomicPolicy(selfishness=0.0)
        assert policy.bid(provider, query) == pytest.approx(30.0)

    def test_disliked_queries_cost_more(self, factory):
        lover = factory.provider("lover", preferences={"c0": 1.0})
        hater = factory.provider("hater", preferences={"c0": -1.0})
        consumer = factory.consumer("c0")
        query = factory.query(consumer, demand=10.0)
        policy = EconomicPolicy(selfishness=1.0)
        assert policy.bid(lover, query) == pytest.approx(10.0)  # markup 1.0
        assert policy.bid(hater, query) == pytest.approx(20.0)  # markup 2.0

    def test_selfishness_validation(self):
        with pytest.raises(ValueError, match="selfishness"):
            EconomicPolicy(selfishness=1.5)


class TestSelection:
    def test_cheapest_bids_win(self, factory):
        fast = factory.provider("fast", capacity=2.0)
        slow = factory.provider("slow", capacity=0.5)
        consumer = factory.consumer()
        query = factory.query(consumer, demand=10.0, n_results=1)
        decision = EconomicPolicy().select(
            query, [slow, fast], AllocationContext(now=0.0)
        )
        assert decision.allocated[0].participant_id == "fast"

    def test_every_candidate_is_informed(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(4)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=1)
        decision = EconomicPolicy().select(query, providers, AllocationContext(now=0.0))
        assert len(decision.informed) == 4
        assert len(decision.allocated) == 1

    def test_consult_messages_two_per_candidate(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(4)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=1)
        decision = EconomicPolicy().select(query, providers, AllocationContext(now=0.0))
        assert decision.consult_messages == 8

    def test_bids_in_metadata(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(2)]
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=1)
        decision = EconomicPolicy().select(query, providers, AllocationContext(now=0.0))
        assert set(decision.metadata["bids"]) == {"p0", "p1"}

    def test_preference_can_beat_mild_load_difference(self, factory, sim):
        """A provider that loves the consumer can underbid a slightly
        less-loaded indifferent one -- the provider-interest ingredient."""
        loved = factory.provider("loved", capacity=1.0, preferences={"c0": 1.0})
        neutral = factory.provider("neutral", capacity=1.0, preferences={"c0": -1.0})
        consumer = factory.consumer("c0")
        # give 'loved' slightly more backlog
        filler = factory.query(consumer, demand=2.0)
        loved.execute(AllocationRecord(query=filler, decided_at=0.0, allocated=[loved]))
        query = factory.query(consumer, demand=10.0, n_results=1)
        decision = EconomicPolicy(selfishness=1.0).select(
            query, [loved, neutral], AllocationContext(now=0.0)
        )
        # loved bid: 12 * 1.0 = 12; neutral bid: 10 * 2.0 = 20
        assert decision.allocated[0].participant_id == "loved"

    def test_consults_participants_flag(self):
        assert EconomicPolicy.consults_participants is True
