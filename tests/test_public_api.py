"""The public API surface: everything advertised in repro.__all__ works."""

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ advertises missing {name!r}"

    def test_core_quickstart_pieces(self):
        """The README quickstart must work from the top-level package."""
        score = repro.sqlb_score(0.5, 0.5, 0.5)
        assert score == pytest.approx(0.5)
        omega = repro.adaptive_omega(0.8, 0.2)
        assert omega == pytest.approx(0.8)

    def test_policy_factory_from_top_level(self):
        root = repro.RandomRoot(1)
        policy = repro.make_policy("sbqa", root, sbqa=repro.SbQAConfig(k=4, kn=2))
        assert policy.name == "sbqa"
        assert set(repro.available_policies()) >= {"sbqa", "capacity", "economic"}

    def test_scenario_entrypoints_exported(self):
        for i in range(1, 8):
            assert any(
                name.startswith(f"scenario{i}_") for name in repro.__all__
            ), f"scenario {i} missing from the public API"

    def test_manual_assembly(self):
        """Build a minimal mediated system from public names only."""
        sim = repro.Simulator()
        network = repro.Network(sim)
        registry = repro.SystemRegistry()
        provider = repro.Provider(sim, network, "p0")
        registry.add_provider(provider)
        consumer = repro.Consumer(sim, network, "c0", preferences={"p0": 0.8})
        registry.add_consumer(consumer)
        policy = repro.CapacityBasedPolicy()
        mediator = repro.Mediator(sim, network, registry, policy)
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert consumer.stats.queries_completed == 1


class TestSubmoduleAccess:
    def test_submodules_reachable_as_attributes(self):
        """`import repro; repro.experiments.runner...` must keep working
        (the eager facade used to bind subpackages as attributes).

        Runs in a fresh interpreter: within the test session other
        imports would already have bound the submodule attributes,
        masking a lazy-facade regression.
        """
        import subprocess
        import sys

        code = (
            "import repro; "
            "assert repro.experiments.runner.run_once; "
            "assert repro.core.Mediator; "
            "assert repro.api.presets.scenario_spec; "
            "assert repro.api.Session"
        )
        subprocess.run([sys.executable, "-c", code], check=True)
