"""Unit tests for scenario report rendering."""

import pytest

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.report import (
    render_claims,
    render_comparison,
    render_group_series,
    render_run_series,
)
from repro.experiments.runner import run_once
from repro.experiments.scenarios import Claim
from repro.workloads.boinc import BoincScenarioParams

TINY = ExperimentConfig(
    name="tiny-report",
    seed=42,
    duration=100.0,
    population=BoincScenarioParams(n_providers=10),
)


@pytest.fixture(scope="module")
def runs():
    return [
        run_once(TINY, PolicySpec(name="capacity")),
        run_once(TINY, PolicySpec(name="random")),
    ]


class TestComparison:
    def test_one_row_per_run(self, runs):
        table = render_comparison(runs, title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "capacity" in table
        assert "random" in table

    def test_custom_columns(self, runs):
        table = render_comparison(runs, columns=("mean_rt", "work_gini"))
        assert "mean rt (s)" in table
        assert "work gini" in table
        assert "prov online" not in table


class TestClaims:
    def test_pass_fail_rendering(self):
        table = render_claims(
            [
                Claim("always true", True, "ok"),
                Claim("always false", False, "nope"),
            ]
        )
        assert "PASS" in table
        assert "FAIL" in table


class TestSeries:
    def test_run_series_sparklines(self, runs):
        text = render_run_series(runs, "provider_satisfaction")
        assert "capacity" in text
        assert "last=" in text

    def test_run_series_custom_title(self, runs):
        text = render_run_series(runs, "throughput", title="THPT")
        assert text.startswith("THPT")

    def test_group_series(self, runs):
        text = render_group_series(runs[0], group_prefix="consumer:")
        assert "consumer:seti" in text
        assert "archetype:" not in text
