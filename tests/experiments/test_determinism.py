"""Cross-interpreter determinism: results must not depend on hash seeds.

Regression for the ``Mediator._commit`` bug where Equation-1 performer
intentions were gathered by iterating a *set* of allocated ids, so the
float summation order (and therefore consumer satisfaction, and
everything downstream) varied with ``PYTHONHASHSEED``.  The fix
iterates the decision's allocation order; this test runs the same tiny
experiment in two subprocesses with different hash seeds and asserts
identical summaries.
"""

import json
import os
import subprocess
import sys

#: A small autonomous SbQA run.  ``n_results=3`` matters: with three or
#: more performer intentions the Equation-1 summation is sensitive to
#: ordering (two-operand float addition commutes, three-operand float
#: addition does not associate), which is what makes a set-order
#: iteration observable at all.
_SCRIPT = """
import json, sys
from repro.api.builder import Experiment

result = (
    Experiment.builder()
    .named("hashseed-probe")
    .seed(13)
    .duration(150.0)
    .providers(12)
    .replication_factor(3)
    .autonomous(warmup=20.0)
    .policy("sbqa", k=8, kn=4)
    .policy("capacity")
    .replications(1)
    .run()
)
rows = [
    {k: repr(v) for k, v in s.as_dict().items()}
    for p in result.policies
    for s in p.summaries
]
json.dump(rows, sys.stdout, sort_keys=True)
"""


def _run_with_hash_seed(seed: str) -> list:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_summaries_identical_across_hash_seeds():
    # repr()-level comparison: bit-identical floats, not approximately
    # equal ones -- hash-order float summation is exactly the bug class
    # that produces tiny, flaky drifts.
    assert _run_with_hash_seed("0") == _run_with_hash_seed("4242")
