"""Integration tests: the seven demo scenarios at reduced scale.

These are the repository's primary end-to-end checks -- each scenario
runs its full simulation stack and its paper claims must hold at the
reduced scale used here (seed-pinned; the benches run larger scales).
"""

import pytest

from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    scenario1_satisfaction_model,
    scenario2_departures,
    scenario3_captive,
    scenario4_autonomous,
    scenario5_expectation_adaptation,
    scenario6_application_adaptability,
    scenario7_focal_participant,
)

SCALE = {"duration": 1000.0, "n_providers": 70}


@pytest.fixture(scope="module")
def results():
    """Run each scenario once per test module (they are expensive)."""
    return {}


def run_cached(results, name, fn, **kwargs):
    if name not in results:
        results[name] = fn(**kwargs)
    return results[name]


class TestScenario1:
    def test_claims_hold(self, results):
        result = run_cached(results, "s1", scenario1_satisfaction_model, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_compares_the_two_baselines(self, results):
        result = run_cached(results, "s1", scenario1_satisfaction_model, **SCALE)
        assert [r.label for r in result.runs] == ["capacity", "economic"]

    def test_report_renders(self, results):
        result = run_cached(results, "s1", scenario1_satisfaction_model, **SCALE)
        report = result.report()
        assert "scenario1" in report
        assert "PASS" in report


class TestScenario2:
    def test_claims_hold(self, results):
        result = run_cached(results, "s2", scenario2_departures, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_departures_recorded_with_timeline(self, results):
        result = run_cached(results, "s2", scenario2_departures, **SCALE)
        for run in result.runs:
            for departure in run.hub.departures:
                assert 0.0 < departure.time <= 1000.0


class TestScenario3:
    def test_claims_hold(self, results):
        result = run_cached(results, "s3", scenario3_captive, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_sbqa_included(self, results):
        result = run_cached(results, "s3", scenario3_captive, **SCALE)
        assert result.run("sbqa").summary.queries_completed > 0


class TestScenario4:
    def test_claims_hold(self, results):
        result = run_cached(results, "s4", scenario4_autonomous, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_sbqa_preserves_most_providers(self, results):
        result = run_cached(results, "s4", scenario4_autonomous, **SCALE)
        sbqa = result.run("sbqa").summary
        assert sbqa.providers_remaining_fraction >= 0.6


class TestScenario5:
    def test_claims_hold(self, results):
        result = run_cached(results, "s5", scenario5_expectation_adaptation, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"


class TestScenario6:
    def test_claims_hold(self, results):
        result = run_cached(
            results, "s6", scenario6_application_adaptability,
            duration=600.0, n_providers=60,
        )
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_sweep_covers_kn_and_omega(self, results):
        result = run_cached(
            results, "s6", scenario6_application_adaptability,
            duration=600.0, n_providers=60,
        )
        labels = [r.label for r in result.runs]
        assert any("kn=1" in l for l in labels)
        assert any("w=0" in l for l in labels)
        assert any("adaptive" in l for l in labels)


class TestScenario7:
    def test_claims_hold(self, results):
        result = run_cached(results, "s7", scenario7_focal_participant, **SCALE)
        for claim in result.claims:
            assert claim.passed, f"{claim.description}: {claim.details}"

    def test_focal_probes_present_in_every_run(self, results):
        result = run_cached(results, "s7", scenario7_focal_participant, **SCALE)
        for run in result.runs:
            run.registry.provider("focal-provider")
            run.registry.consumer("focal-consumer")


class TestScenarioRegistry:
    def test_all_scenarios_registered(self):
        assert set(ALL_SCENARIOS) == {f"scenario{i}" for i in range(1, 8)}

    def test_result_lookup_by_label(self, results):
        result = run_cached(results, "s1", scenario1_satisfaction_model, **SCALE)
        assert result.run("capacity").label == "capacity"
        with pytest.raises(KeyError, match="no run labelled"):
            result.run("bogus")
