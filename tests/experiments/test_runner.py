"""Integration tests for the experiment runner (small scale)."""

import pytest

from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once, run_policies
from repro.workloads.boinc import BoincScenarioParams

TINY = ExperimentConfig(
    name="tiny",
    seed=42,
    duration=200.0,
    sample_interval=10.0,
    population=BoincScenarioParams(n_providers=15),
)


class TestRunOnce:
    def test_produces_complete_result(self):
        result = run_once(TINY, PolicySpec(name="capacity"))
        assert result.summary.queries_issued > 0
        assert result.summary.queries_completed > 0
        assert result.summary.duration == 200.0
        assert result.label == "capacity"
        assert len(result.registry.providers) == 15

    def test_sbqa_runs(self):
        result = run_once(TINY, PolicySpec(name="sbqa"))
        assert result.summary.queries_completed > 0
        assert result.mediator.coordination_messages > 0

    def test_deterministic_per_seed(self):
        a = run_once(TINY, PolicySpec(name="sbqa"))
        b = run_once(TINY, PolicySpec(name="sbqa"))
        assert a.summary.queries_issued == b.summary.queries_issued
        assert a.summary.mean_response_time == b.summary.mean_response_time
        assert a.summary.provider_satisfaction_final == b.summary.provider_satisfaction_final

    def test_replications_differ(self):
        a = run_once(TINY, PolicySpec(name="sbqa"), replication=0)
        b = run_once(TINY, PolicySpec(name="sbqa"), replication=1)
        assert a.summary.mean_response_time != b.summary.mean_response_time

    def test_sampled_series_cover_run(self):
        result = run_once(TINY, PolicySpec(name="capacity"))
        points = result.hub.provider_satisfaction.points()
        assert points[0][0] == 0.0
        assert points[-1][0] == pytest.approx(200.0)

    def test_groups_registered(self):
        result = run_once(TINY, PolicySpec(name="capacity"))
        groups = set(result.hub.group_satisfaction)
        assert "consumer:seti" in groups
        assert any(g.startswith("archetype:") for g in groups)

    def test_captive_run_has_no_departures(self):
        result = run_once(TINY, PolicySpec(name="capacity"))
        assert result.summary.provider_departures == 0
        assert result.summary.providers_remaining == 15

    def test_autonomous_run_can_shed_providers(self):
        config = TINY.with_overrides(
            duration=600.0,
            autonomy=AutonomyConfig(mode="autonomous", warmup=100.0, min_observations=10),
        )
        result = run_once(config, PolicySpec(name="capacity"))
        assert result.summary.provider_departures > 0
        assert (
            result.summary.providers_remaining
            == 15 - result.summary.provider_departures
        )

    def test_participant_satisfaction_lookup(self):
        result = run_once(TINY, PolicySpec(name="capacity"))
        assert 0.0 <= result.participant_satisfaction("seti") <= 1.0
        assert 0.0 <= result.participant_satisfaction("p000") <= 1.0

    def test_all_satisfactions_well_defined(self):
        """The model invariant, end to end: delta_s in [0, 1] always."""
        for policy in ("sbqa", "capacity", "economic", "random"):
            result = run_once(TINY, PolicySpec(name=policy))
            for p in result.registry.providers:
                assert 0.0 <= p.satisfaction <= 1.0
            for c in result.registry.consumers:
                assert 0.0 <= c.satisfaction <= 1.0

    def test_boinc_shares_policy_runs(self):
        result = run_once(TINY, PolicySpec(name="boinc-shares"))
        # the rigid-shares dispatcher wastes capacity: some failures are expected,
        # but it must still complete a good share of queries
        assert result.summary.queries_completed > 0


class TestRunPolicies:
    def test_runs_every_spec(self):
        results = run_policies(TINY, [PolicySpec(name="capacity"), PolicySpec(name="random")])
        assert [r.label for r in results] == ["capacity", "random"]

    def test_same_population_draw_across_policies(self):
        results = run_policies(TINY, [PolicySpec(name="capacity"), PolicySpec(name="random")])
        prefs_a = results[0].registry.provider("p000").preferences
        prefs_b = results[1].registry.provider("p000").preferences
        assert prefs_a == prefs_b


class TestRejoinExtension:
    def test_rejoin_recovers_population(self):
        base = TINY.with_overrides(
            duration=800.0,
            autonomy=AutonomyConfig(
                mode="autonomous", warmup=100.0, min_observations=10
            ),
        )
        with_rejoin = TINY.with_overrides(
            duration=800.0,
            autonomy=AutonomyConfig(
                mode="autonomous",
                warmup=100.0,
                min_observations=10,
                rejoin_cooldown=120.0,
            ),
        )
        final = run_once(base, PolicySpec(name="capacity"))
        recovering = run_once(with_rejoin, PolicySpec(name="capacity"))
        assert final.summary.provider_rejoins == 0
        assert recovering.summary.provider_rejoins > 0
        # with returns, the end-of-run population can only be larger or equal
        assert (
            recovering.summary.providers_remaining
            >= final.summary.providers_remaining
        )

    def test_rejoin_events_reach_the_hub(self):
        config = TINY.with_overrides(
            duration=800.0,
            autonomy=AutonomyConfig(
                mode="autonomous",
                warmup=100.0,
                min_observations=10,
                rejoin_cooldown=120.0,
            ),
        )
        result = run_once(config, PolicySpec(name="capacity"))
        assert len(result.hub.rejoins) == result.summary.provider_rejoins + (
            result.summary.consumer_rejoins
        )

    def test_allocation_satisfaction_summary_field(self):
        config = TINY.with_overrides(adequation_over_candidates=True)
        result = run_once(config, PolicySpec(name="sbqa"))
        assert 0.0 <= result.summary.consumer_allocation_satisfaction <= 1.0
        # with the full candidate pool visible, the mediator cannot be
        # perfectly optimal under KnBest sampling
        assert result.summary.consumer_allocation_satisfaction > 0.3


class TestLiveRunStepping:
    def test_step_until_backwards_is_noop(self):
        from repro.experiments.runner import wire_run

        live = wire_run(TINY, PolicySpec(name="sbqa"))
        live.step_until(50.0)
        issued = live.hub.queries_issued
        # a target at or before now must neither raise nor disturb state
        assert live.step_until(20.0) is live
        assert live.step_until(50.0) is live
        assert live.sim.now == pytest.approx(50.0)
        assert live.hub.queries_issued == issued

    def test_noop_step_preserves_digest(self):
        from repro.experiments.runner import wire_run

        policy = PolicySpec(name="sbqa")
        plain = run_once(TINY, policy)
        stepped = wire_run(TINY, policy)
        stepped.step_until(80.0)
        for target in (80.0, 40.0, 0.0, -5.0):
            stepped.step_until(target)
        assert stepped.finalize().digest() == plain.digest()

    def test_step_clamps_to_horizon(self):
        from repro.experiments.runner import wire_run

        live = wire_run(TINY, PolicySpec(name="sbqa"))
        live.step_until(TINY.duration * 10)
        assert live.sim.now == pytest.approx(TINY.duration)
        assert live.finished

    def test_step_after_finalize_raises(self):
        from repro.experiments.runner import wire_run

        live = wire_run(TINY, PolicySpec(name="sbqa"))
        live.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            live.step_until(10.0)
