"""Unit tests for experiment configuration."""

import pytest

from repro.core.sbqa import SbQAConfig
from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec


class TestPolicySpec:
    def test_label_defaults_to_name(self):
        assert PolicySpec(name="sbqa").label == "sbqa"

    def test_explicit_label(self):
        spec = PolicySpec(name="sbqa", label="sbqa[kn=1]")
        assert spec.label == "sbqa[kn=1]"

    def test_carries_sbqa_config(self):
        spec = PolicySpec(name="sbqa", sbqa=SbQAConfig(k=8, kn=4))
        assert spec.sbqa.k == 8

    def test_frozen(self):
        spec = PolicySpec(name="sbqa")
        with pytest.raises(Exception):
            spec.name = "other"


class TestAutonomyConfig:
    def test_default_is_captive(self):
        assert AutonomyConfig().is_captive

    def test_paper_thresholds_default(self):
        config = AutonomyConfig(mode="autonomous")
        assert config.provider_threshold == 0.35
        assert config.consumer_threshold == 0.5

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            AutonomyConfig(mode="anarchic")


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.duration > 0
        assert config.autonomy.is_captive
        assert config.population.n_providers > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="duration"):
            ExperimentConfig(duration=0.0)
        with pytest.raises(ValueError, match="sample_interval"):
            ExperimentConfig(sample_interval=0.0)
        with pytest.raises(ValueError, match="latency"):
            ExperimentConfig(latency_low=0.5, latency_high=0.1)

    def test_with_overrides(self):
        config = ExperimentConfig(name="a", duration=100.0)
        other = config.with_overrides(duration=50.0)
        assert other.duration == 50.0
        assert other.name == "a"
        assert config.duration == 100.0  # original untouched

    def test_with_overrides_rejects_unknown_field(self):
        config = ExperimentConfig()
        with pytest.raises(ValueError) as err:
            config.with_overrides(durration=50.0)
        message = str(err.value)
        assert "durration" in message
        assert "duration" in message  # valid names are listed

    def test_with_overrides_points_nested_fields_at_population(self):
        with pytest.raises(ValueError, match="population"):
            ExperimentConfig().with_overrides(n_providers=10)
