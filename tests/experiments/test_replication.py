"""Tests for replication aggregation."""

import pytest

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.replication import (
    AGGREGATED_FIELDS,
    compare_policies,
    run_replications,
)
from repro.workloads.boinc import BoincScenarioParams

TINY = ExperimentConfig(
    name="tiny-rep",
    seed=42,
    duration=150.0,
    population=BoincScenarioParams(n_providers=12),
)


class TestRunReplications:
    def test_aggregates_all_fields(self):
        result = run_replications(TINY, PolicySpec(name="capacity"), replications=2)
        assert result.replications == 2
        assert set(result.means) == set(AGGREGATED_FIELDS)
        assert set(result.stdevs) == set(AGGREGATED_FIELDS)
        assert len(result.runs) == 2

    def test_replication_count_validation(self):
        with pytest.raises(ValueError, match="replication"):
            run_replications(TINY, PolicySpec(name="capacity"), replications=0)

    def test_mean_matches_runs(self):
        result = run_replications(TINY, PolicySpec(name="capacity"), replications=3)
        rts = [r.summary.mean_response_time for r in result.runs]
        assert result.means["mean_rt"] == pytest.approx(sum(rts) / len(rts))

    def test_cell_rendering(self):
        result = run_replications(TINY, PolicySpec(name="capacity"), replications=2)
        cell = result.cell("mean_rt", decimals=2)
        assert "±" in cell
        with pytest.raises(KeyError, match="not aggregated"):
            result.cell("bogus")

    def test_getitem(self):
        result = run_replications(TINY, PolicySpec(name="capacity"), replications=2)
        assert result["mean_rt"] == result.means["mean_rt"]

    def test_keep_runs_false_drops_raw_results(self):
        result = run_replications(
            TINY, PolicySpec(name="capacity"), replications=2, keep_runs=False
        )
        assert result.runs == []
        assert result.means["mean_rt"] > 0


class TestComparePolicies:
    def test_compares_on_same_seeds(self):
        results = compare_policies(
            TINY,
            [PolicySpec(name="capacity"), PolicySpec(name="shortest-queue")],
            replications=2,
        )
        assert [r.label for r in results] == ["capacity", "shortest-queue"]
        # both aggregated the same number of replications
        assert all(r.replications == 2 for r in results)
