"""Admission control: config validation, token buckets, drop stats."""

import pytest

from repro.serve.admission import (
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    SHED_POLICIES,
    AdmissionConfig,
    AdmissionController,
    DropStats,
    _TokenBucket,
)


class TestAdmissionConfig:
    def test_defaults_admit_everything(self):
        config = AdmissionConfig()
        assert config.queue_capacity is None
        assert config.rate_limit is None
        assert config.shed_policy in SHED_POLICIES

    def test_validation(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            AdmissionConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="shed policy"):
            AdmissionConfig(shed_policy="drop-random")
        with pytest.raises(ValueError, match="rate_limit"):
            AdmissionConfig(rate_limit=0.0)
        with pytest.raises(ValueError, match="burst"):
            AdmissionConfig(burst=0.5)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = _TokenBucket(burst=2.0, now=0.0)
        take = lambda t: bucket.try_take(t, rate=1.0, burst=2.0)
        assert take(0.0) and take(0.0)       # burst of 2 at t=0
        assert not take(0.0)                  # bucket empty
        assert take(1.0)                      # one token refilled in 1 s
        assert not take(1.0)

    def test_refill_caps_at_burst(self):
        bucket = _TokenBucket(burst=3.0, now=0.0)
        assert all(bucket.try_take(100.0, 1.0, 3.0) for _ in range(3))
        assert not bucket.try_take(100.0, 1.0, 3.0)

    def test_time_never_runs_backwards(self):
        bucket = _TokenBucket(burst=1.0, now=5.0)
        assert bucket.try_take(5.0, 1.0, 1.0)
        # an earlier timestamp must not mint tokens
        assert not bucket.try_take(4.0, 1.0, 1.0)
        assert bucket.last == 5.0


class TestAdmissionController:
    def test_unbounded_admits(self):
        ctrl = AdmissionController(AdmissionConfig())
        for i in range(5):
            assert ctrl.decide("c", float(i), backlog=10 ** 6) == ("admit", None)
            ctrl.admit()
        assert ctrl.stats.submitted == 5
        assert ctrl.stats.admitted == 5
        assert ctrl.stats.dropped == 0

    def test_queue_full_drop_newest(self):
        ctrl = AdmissionController(AdmissionConfig(queue_capacity=3))
        assert ctrl.decide("c", 0.0, backlog=2) == ("admit", None)
        verdict, reason = ctrl.decide("c", 0.0, backlog=3)
        assert (verdict, reason) == ("drop", REASON_QUEUE_FULL)
        ctrl.drop("c", reason)
        assert ctrl.stats.by_reason == {REASON_QUEUE_FULL: 1}

    def test_queue_full_drop_oldest_verdict(self):
        ctrl = AdmissionController(
            AdmissionConfig(queue_capacity=3, shed_policy="drop-oldest")
        )
        assert ctrl.decide("c", 0.0, backlog=3) == ("evict-oldest", None)

    def test_rate_limit_is_per_consumer(self):
        ctrl = AdmissionController(AdmissionConfig(rate_limit=1.0, burst=1.0))
        assert ctrl.decide("a", 0.0, 0)[0] == "admit"
        assert ctrl.decide("a", 0.0, 0) == ("drop", REASON_RATE_LIMITED)
        # consumer b has its own bucket
        assert ctrl.decide("b", 0.0, 0)[0] == "admit"
        # a's bucket refills on simulation time
        assert ctrl.decide("a", 2.0, 0)[0] == "admit"

    def test_rate_limit_checked_before_capacity(self):
        ctrl = AdmissionController(
            AdmissionConfig(queue_capacity=1, rate_limit=1.0, burst=1.0)
        )
        ctrl.decide("a", 0.0, backlog=0)
        verdict, reason = ctrl.decide("a", 0.0, backlog=1)
        assert reason == REASON_RATE_LIMITED


class TestDropStats:
    def test_accounting(self):
        stats = DropStats()
        stats.submitted = 3
        stats.admitted = 1
        stats.record_drop("b", "queue-full")
        stats.record_drop("a", "queue-full")
        stats.record_drop("a", "rate-limited")
        snap = stats.snapshot()
        assert snap["submitted"] == 3
        assert snap["dropped"] == 3
        assert snap["by_reason"] == {"queue-full": 2, "rate-limited": 1}
        assert snap["by_consumer"] == {"a": 2, "b": 1}
        # snapshot dicts are sorted for stable JSON
        assert list(snap["by_consumer"]) == ["a", "b"]
