"""ServeEngine: open-loop ingestion, drop accounting, replay parity."""

import pytest

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.serve.admission import (
    REASON_PAST_HORIZON,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    REASON_SHED_OLDEST,
    REASON_UNKNOWN_CONSUMER,
    AdmissionConfig,
)
from repro.serve.engine import ServeEngine
from repro.workloads.boinc import BoincScenarioParams
from repro.workloads.traces import record_trace

TINY = ExperimentConfig(
    name="serve-tiny",
    seed=42,
    duration=150.0,
    population=BoincScenarioParams(n_providers=15),
)

SBQA = PolicySpec(name="sbqa")


def make_engine(**admission_kwargs):
    admission = AdmissionConfig(**admission_kwargs) if admission_kwargs else None
    return ServeEngine(TINY, SBQA, admission=admission)


class TestSubmit:
    def test_submit_and_serve(self):
        engine = make_engine()
        for t in (1.0, 2.0, 3.0):
            accepted, reason = engine.submit("seti", at=t)
            assert accepted and reason is None
        engine.advance_to(50.0)
        snap = engine.metrics_snapshot()
        assert snap["queries"]["issued"] == 3
        assert snap["admission"]["admitted"] == 3
        assert snap["admission"]["dropped"] == 0
        assert snap["sim_time"] == pytest.approx(50.0)

    def test_unknown_consumer(self):
        engine = make_engine()
        accepted, reason = engine.submit("martians")
        assert not accepted
        assert reason == REASON_UNKNOWN_CONSUMER
        assert engine.admission.stats.by_reason == {REASON_UNKNOWN_CONSUMER: 1}

    def test_past_horizon(self):
        engine = make_engine()
        accepted, reason = engine.submit("seti", at=TINY.duration + 1.0)
        assert not accepted
        assert reason == REASON_PAST_HORIZON

    def test_defaults_resolve(self):
        engine = make_engine()
        accepted, _ = engine.submit("seti")  # demand/topic/time defaulted
        assert accepted
        assert engine.backlog == 1
        engine.advance_to(10.0)
        assert engine.backlog == 0


class TestOverload:
    def test_drop_newest_above_capacity(self):
        engine = make_engine(queue_capacity=3)
        results = [engine.submit("seti", at=0.0) for _ in range(8)]
        assert [a for a, _ in results] == [True] * 3 + [False] * 5
        assert engine.admission.stats.by_reason == {REASON_QUEUE_FULL: 5}
        assert engine.backlog == 3
        engine.advance_to(TINY.duration)
        assert engine.metrics_snapshot()["queries"]["issued"] == 3

    def test_below_capacity_no_drops(self):
        engine = make_engine(queue_capacity=100)
        for t in range(10):
            assert engine.submit("seti", at=float(t))[0]
        engine.advance_to(TINY.duration)
        snap = engine.metrics_snapshot()["admission"]
        assert snap["dropped"] == 0
        assert snap["admitted"] == 10

    def test_drop_oldest_evicts_and_admits(self):
        engine = make_engine(queue_capacity=3, shed_policy="drop-oldest")
        results = [engine.submit("seti", at=0.0) for _ in range(8)]
        # every submission is admitted; the 5 overflow each evict the
        # longest-waiting pending query
        assert all(a for a, _ in results)
        stats = engine.admission.stats
        assert stats.by_reason == {REASON_SHED_OLDEST: 5}
        assert engine.backlog == 3
        engine.advance_to(TINY.duration)
        assert engine.metrics_snapshot()["queries"]["issued"] == 3

    def test_drop_oldest_across_consumers(self):
        engine = make_engine(queue_capacity=2, shed_policy="drop-oldest")
        engine.submit("seti", at=0.0)
        engine.submit("proteins", at=0.0)
        engine.submit("einstein", at=0.0)  # evicts seti's (oldest)
        assert engine.admission.stats.by_consumer == {"seti": 1}
        engine.advance_to(TINY.duration)
        issued = {c.consumer_id: c.issued for c in engine.summary_now().consumers}
        assert issued["seti"] == 0
        assert issued["proteins"] == 1
        assert issued["einstein"] == 1

    def test_rate_limit(self):
        engine = make_engine(rate_limit=1.0, burst=2.0)
        verdicts = [engine.submit("seti", at=0.0)[0] for _ in range(5)]
        assert verdicts == [True, True, False, False, False]
        assert engine.admission.stats.by_reason == {REASON_RATE_LIMITED: 3}
        # simulation time mints new tokens
        assert engine.submit("seti", at=3.0)[0]


class TestAdvance:
    def test_advance_is_monotonic_noop_backwards(self):
        engine = make_engine()
        engine.advance_to(20.0)
        engine.advance_to(5.0)  # must not raise, must not rewind
        assert engine.now == pytest.approx(20.0)

    def test_advance_wall_applies_speed(self):
        engine = make_engine()
        engine.advance_wall(2.0, speed=10.0)
        assert engine.now == pytest.approx(20.0)

    def test_finished_at_horizon(self):
        engine = make_engine()
        assert not engine.finished
        engine.advance_to(TINY.duration)
        assert engine.finished

    def test_horizon_boundary_is_closed(self):
        engine = make_engine()
        engine.advance_to(TINY.duration)
        # exactly at the horizon is still in-window...
        accepted, _ = engine.submit("seti")
        assert accepted
        # ...but one instant past it is not
        accepted, reason = engine.submit("seti", at=TINY.duration + 1e-9)
        assert not accepted
        assert reason == REASON_PAST_HORIZON


class TestSnapshots:
    def test_metrics_snapshot_shape(self):
        engine = make_engine()
        engine.submit("seti", at=1.0)
        engine.advance_to(30.0)
        snap = engine.metrics_snapshot()
        assert snap["policy"] == "sbqa"
        assert snap["horizon"] == TINY.duration
        assert set(snap["queries"]) == {"issued", "completed", "failed", "timed_out"}
        assert set(snap["latency"]) == {"ingress_delay", "response_time"}
        for key in ("submitted", "admitted", "dropped", "by_reason", "by_consumer"):
            assert key in snap["admission"]
        assert snap["population"]["consumers_online"] == 3
        import json

        json.dumps(snap)  # must be JSON-serializable as-is

    def test_response_time_quantiles_populated(self):
        engine = make_engine()
        for t in range(20):
            engine.submit("seti", at=float(t))
        engine.advance_to(TINY.duration)
        latency = engine.metrics_snapshot()["latency"]
        assert latency["response_time"]["count"] == 20
        assert latency["response_time"]["p50"] > 0
        # ingestion at the arrival instant: no ingress delay
        assert latency["ingress_delay"]["max"] == pytest.approx(0.0)

    def test_final_payload_matches_summary_digest(self):
        from repro.metrics.summary import summary_digest

        engine = make_engine()
        engine.submit("seti", at=1.0)
        engine.advance_to(TINY.duration)
        payload = engine.final_payload()
        assert payload["digest"] == summary_digest(engine.summary_now())
        assert payload["admission"]["admitted"] == 1


class TestReplayParity:
    def test_serve_replay_reproduces_batch_digest(self):
        trace, batch = record_trace(TINY, SBQA)
        served = ServeEngine(TINY, SBQA).replay(trace)
        assert served.digest() == batch.digest()

    def test_stepped_ingestion_reproduces_batch_digest(self):
        trace, batch = record_trace(TINY, SBQA)
        arrivals = trace.materialize()
        engine = ServeEngine(TINY, SBQA)
        index = 0
        target = 0.0
        while target < TINY.duration:
            target = min(target + 7.0, TINY.duration)
            while index < len(arrivals) and arrivals[index].time <= target:
                a = arrivals[index]
                engine.submit(
                    a.consumer_id,
                    service_demand=a.service_demand,
                    topic=a.topic,
                    n_results=a.n_results,
                    quorum=a.quorum,
                    at=a.time,
                )
                index += 1
            engine.advance_to(target)
        assert engine.final_payload()["digest"] == batch.digest()

    def test_replay_digest_backend_invariant(self, monkeypatch):
        """replay() through the fused SoA kernel (vectorized default)
        and through the scalar oracle backend, digest-identical: the
        serve path inherits the engine-level backend contract."""
        import repro.core.scoring as scoring

        trace, _ = record_trace(TINY, SBQA)
        monkeypatch.setattr(scoring, "_DEFAULT_BACKEND", "python")
        scalar = ServeEngine(TINY, SBQA).replay(trace).digest()
        monkeypatch.setattr(scoring, "_DEFAULT_BACKEND", "numpy")
        fused = ServeEngine(TINY, SBQA).replay(trace).digest()
        assert scalar == fused

    def test_replay_refuses_admission_drops(self):
        trace, _ = record_trace(TINY, SBQA)
        engine = ServeEngine(
            TINY, SBQA, admission=AdmissionConfig(queue_capacity=1)
        )
        with pytest.raises(RuntimeError, match="dropped"):
            engine.replay(trace)
