"""ServeServer smoke tests: readiness, HTTP endpoints, graceful flush.

The server is exercised the way the CI smoke job runs it -- as a real
subprocess (``python -m repro.cli serve``) with an ephemeral port
discovered from the ``SERVE_READY`` line and the final accounting
parsed from the ``SERVE_FINAL`` flush."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.server import SUBMIT_FIELDS, parse_submission
from repro.workloads.traces import TraceSpec

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


class TestParseSubmission:
    def test_passthrough(self):
        data = {"consumer_id": "seti", "service_demand": 5.0, "at": 1.0}
        assert parse_submission(data) == data

    def test_requires_consumer_id(self):
        with pytest.raises(ValueError, match="consumer_id"):
            parse_submission({"service_demand": 5.0})

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown submission field"):
            parse_submission({"consumer_id": "seti", "priority": 9})

    def test_rejects_non_objects(self):
        with pytest.raises(ValueError, match="JSON object"):
            parse_submission(["seti"])

    def test_field_set_is_stable(self):
        assert SUBMIT_FIELDS == {
            "consumer_id", "service_demand", "topic", "n_results", "quorum", "at",
        }


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _start(args, **popen_kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **popen_kwargs,
    )


def _read_ready(proc, timeout=20.0):
    """Read stdout until the SERVE_READY line; returns the bound port."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("SERVE_READY"):
            return int(line.strip().split("port=", 1)[1])
    proc.kill()
    raise AssertionError("server never printed SERVE_READY")


def _final_payload(stdout_text):
    for line in stdout_text.splitlines():
        if line.startswith("SERVE_FINAL "):
            return json.loads(line[len("SERVE_FINAL "):])
    raise AssertionError(f"no SERVE_FINAL line in output:\n{stdout_text}")


def _get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as r:
        return r.status, r.read().decode("utf-8")


def _post(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as r:
            return r.status, r.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


class TestLiveServer:
    def test_http_endpoints_and_sigterm_flush(self):
        proc = _start(["--duration", "60", "--speed", "5", "--port", "0"])
        try:
            port = _read_ready(proc)

            status, body = _get(port, "/healthz")
            assert status == 200 and json.loads(body)["ok"] is True

            status, body = _post(port, "/submit", {"consumer_id": "seti"})
            assert status == 200
            reply = json.loads(body)
            assert reply["accepted"] is True and reply["reason"] is None

            status, body = _post(port, "/submit", {"consumer_id": "nobody"})
            assert status == 429
            assert json.loads(body)["reason"] == "unknown-consumer"

            status, body = _post(port, "/submit", {"bogus": 1})
            assert status == 400

            status, body = _get(port, "/metrics")
            assert status == 200
            metrics = json.loads(body)
            assert metrics["policy"] == "sbqa"
            assert metrics["admission"]["submitted"] >= 2

            status, body = _get(port, "/dashboard")
            assert status == 200 and "sbqa serve" in body

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/nope")
            assert excinfo.value.code == 404

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        payload = _final_payload("SERVE_READY ignored\n" + out)
        assert "digest" in payload and len(payload["digest"]) == 64
        assert payload["admission"]["submitted"] >= 2
        assert payload["admission"]["by_reason"].get("unknown-consumer") == 1

    def test_trace_run_below_capacity_sheds_nothing(self, tmp_path):
        trace_path = tmp_path / "flash.json"
        TraceSpec(
            name="smoke", shape="flash-crowd", duration=10.0, base_rate=3.0,
            consumers=("seti", "proteins", "einstein"),
        ).save(trace_path)
        n_arrivals = len(
            TraceSpec.load(trace_path).materialize()
        )
        proc = _start(
            [
                "--trace", str(trace_path), "--duration", "10",
                "--speed", "200", "--tick", "0.005",
                "--exit-when-done", "--port", "-1",
            ]
        )
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        payload = _final_payload(out)
        assert payload["admission"]["dropped"] == 0
        assert payload["admission"]["admitted"] == n_arrivals
        assert payload["summary"]["issued"] == n_arrivals

    def test_trace_run_above_capacity_drops_and_accounts(self, tmp_path):
        trace_path = tmp_path / "burst.json"
        TraceSpec(
            name="burst", shape="flash-crowd", duration=10.0, base_rate=6.0,
            params={"spike_start": 1.0, "spike_duration": 5.0, "spike_factor": 12.0},
            consumers=("seti", "proteins", "einstein"),
        ).save(trace_path)
        proc = _start(
            [
                "--trace", str(trace_path), "--duration", "10",
                "--speed", "200", "--tick", "0.005",
                "--exit-when-done", "--port", "-1",
                "--queue-capacity", "2",
            ]
        )
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        payload = _final_payload(out)
        admission = payload["admission"]
        assert admission["dropped"] > 0
        assert admission["by_reason"].get("queue-full", 0) == admission["dropped"]
        assert (
            admission["admitted"] + admission["dropped"] == admission["submitted"]
        )

    def test_stdin_feed(self):
        proc = _start(
            [
                "--duration", "30", "--speed", "100", "--tick", "0.005",
                "--stdin", "--exit-when-done", "--port", "-1",
            ],
            stdin=subprocess.PIPE,
        )
        lines = [
            json.dumps({"consumer_id": "seti", "at": 1.0}),
            json.dumps({"consumer_id": "proteins", "at": 2.0}),
            "this is not json",
            json.dumps({"consumer_id": "einstein", "at": 3.0}),
        ]
        out, err = proc.communicate("\n".join(lines) + "\n", timeout=60)
        assert proc.returncode == 0, err
        payload = _final_payload(out)
        assert payload["admission"]["admitted"] == 3
        assert payload["submit_errors"] == 1
