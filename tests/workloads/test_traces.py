"""Trace workloads: spec round-trips, generator determinism, and the
replay-parity guarantee (recorded arrivals replayed through the batch
engine reproduce the recording run's allocation digest bit-for-bit)."""

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.workloads.boinc import BoincScenarioParams
from repro.workloads.traces import (
    SHAPE_PARAMS,
    TRACE_SHAPES,
    ArrivalRecorder,
    TraceArrival,
    TraceSpec,
    heavy_tail_times,
    record_trace,
    replay_once,
    resolve_shape_params,
    thinned_arrival_times,
)

TINY = ExperimentConfig(
    name="trace-tiny",
    seed=42,
    duration=150.0,
    population=BoincScenarioParams(n_providers=15),
)

SBQA = PolicySpec(name="sbqa")


class TestTraceArrival:
    def test_round_trip(self):
        arrival = TraceArrival(
            time=1.5, consumer_id="seti", topic="seti", service_demand=30.0,
            n_results=2, quorum=1,
        )
        assert TraceArrival.from_dict(arrival.to_dict()) == arrival

    def test_quorum_omitted_when_none(self):
        arrival = TraceArrival(
            time=0.0, consumer_id="c", topic="t", service_demand=1.0
        )
        assert "quorum" not in arrival.to_dict()
        assert TraceArrival.from_dict(arrival.to_dict()) == arrival

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrival(time=-1.0, consumer_id="c", topic="t", service_demand=1.0)
        with pytest.raises(ValueError):
            TraceArrival(time=0.0, consumer_id="c", topic="t", service_demand=0.0)
        with pytest.raises(ValueError):
            TraceArrival(
                time=0.0, consumer_id="c", topic="t", service_demand=1.0, n_results=0
            )
        with pytest.raises(ValueError):
            TraceArrival.from_dict({"time": 0.0, "bogus": 1})


class TestTraceSpec:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown trace shape"):
            TraceSpec(name="x", shape="sawtooth", duration=10.0)

    def test_synthetic_rejects_explicit_arrivals(self):
        arrival = TraceArrival(
            time=0.5, consumer_id="c", topic="t", service_demand=1.0
        )
        with pytest.raises(ValueError, match="must not carry"):
            TraceSpec(
                name="x", shape="diurnal", duration=10.0, arrivals=(arrival,),
                consumers=("c",),
            )

    def test_recorded_requires_time_order(self):
        arrivals = (
            TraceArrival(time=2.0, consumer_id="c", topic="t", service_demand=1.0),
            TraceArrival(time=1.0, consumer_id="c", topic="t", service_demand=1.0),
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceSpec(name="x", shape="recorded", duration=10.0, arrivals=arrivals)

    def test_bad_shape_param_fails_at_build(self):
        with pytest.raises(ValueError, match="unknown diurnal param"):
            TraceSpec(
                name="x", shape="diurnal", duration=10.0,
                params={"wobble": 3.0}, consumers=("c",),
            )

    @pytest.mark.parametrize("shape", [s for s in TRACE_SHAPES if s != "recorded"])
    def test_synthetic_json_round_trip(self, shape):
        spec = TraceSpec(
            name=f"rt-{shape}", shape=shape, duration=45.0, seed=7,
            base_rate=3.0, consumers=("seti", "proteins"), demand_cv=0.4,
        )
        again = TraceSpec.from_json(spec.to_json())
        assert again == spec
        assert again.materialize() == spec.materialize()

    def test_recorded_json_round_trip(self, tmp_path):
        trace, _ = record_trace(TINY, SBQA)
        path = tmp_path / "trace.json"
        trace.save(path)
        again = TraceSpec.load(path)
        assert again == trace
        assert len(again) == len(trace)

    def test_version_tag_checked(self):
        data = json.loads(
            TraceSpec(
                name="x", shape="diurnal", duration=10.0, consumers=("c",)
            ).to_json()
        )
        data["trace_version"] = 99
        with pytest.raises(ValueError, match="unsupported trace_version"):
            TraceSpec.from_dict(data)

    @pytest.mark.parametrize("shape", [s for s in TRACE_SHAPES if s != "recorded"])
    def test_generation_deterministic(self, shape):
        spec = TraceSpec(
            name=f"det-{shape}", shape=shape, duration=60.0, seed=11,
            base_rate=2.0, consumers=("a", "b", "c"),
        )
        first = spec.materialize()
        assert first == spec.materialize()
        assert all(a.time <= b.time for a, b in zip(first, first[1:]))
        assert all(0.0 <= a.time <= 60.0 for a in first)
        assert {a.consumer_id for a in first} <= {"a", "b", "c"}

    def test_different_seeds_differ(self):
        base = dict(
            name="seeded", shape="diurnal", duration=60.0, base_rate=2.0,
            consumers=("a", "b"),
        )
        assert (
            TraceSpec(seed=1, **base).materialize()
            != TraceSpec(seed=2, **base).materialize()
        )

    def test_synthetic_needs_consumers(self):
        spec = TraceSpec(name="x", shape="diurnal", duration=10.0)
        with pytest.raises(ValueError, match="declares no consumers"):
            spec.materialize()
        assert spec.materialize(consumer_ids=("c",)) == spec.materialize(
            consumer_ids=("c",)
        )

    def test_flash_crowd_spike_visible(self):
        spec = TraceSpec(
            name="crowd", shape="flash-crowd", duration=100.0, base_rate=1.0,
            params={"spike_start": 40.0, "spike_duration": 20.0, "spike_factor": 10.0},
            consumers=("c",),
        )
        arrivals = spec.materialize()
        inside = sum(1 for a in arrivals if 40.0 <= a.time < 60.0)
        outside = len(arrivals) - inside
        # the 20 s spike window at 10x should out-produce the other 80 s
        assert inside > outside

    def test_consumer_ids_derived_for_recorded(self):
        trace, _ = record_trace(TINY, SBQA)
        assert set(trace.consumer_ids()) == {"seti", "proteins", "einstein"}


class TestGenerators:
    def test_resolve_defaults_derive_from_duration(self):
        params = resolve_shape_params("flash-crowd", {}, 100.0)
        assert params["spike_start"] == pytest.approx(40.0)
        assert params["spike_duration"] == pytest.approx(15.0)
        assert resolve_shape_params("diurnal", {}, 100.0)["period"] == 100.0

    def test_thinning_respects_bounds(self):
        from repro.des.rng import RandomRoot

        stream = RandomRoot(3).stream("t")
        times = thinned_arrival_times(lambda t: 2.0, 2.0, 50.0, stream)
        assert times and all(0.0 < t <= 50.0 for t in times)
        # homogeneous rate 2/s over 50 s: ~100 arrivals, loosely checked
        assert 50 <= len(times) <= 160

    def test_heavy_tail_mean_rate(self):
        from repro.des.rng import RandomRoot

        stream = RandomRoot(5).stream("h")
        times = heavy_tail_times(
            4.0, 500.0, alpha=1.6, burst_spacing=0.05, max_burst=1000.0,
            stream=stream,
        )
        assert times == sorted(times)
        # mean rate engineered to base_rate; generous band for tail noise
        assert 0.4 * 4.0 * 500.0 <= len(times) <= 2.5 * 4.0 * 500.0

    def test_shape_params_cover_all_synthetic_shapes(self):
        assert set(SHAPE_PARAMS) == {s for s in TRACE_SHAPES if s != "recorded"}


class TestRecordReplayParity:
    def test_recording_is_invisible_to_the_run(self):
        plain = run_once(TINY, SBQA)
        _, recorded = record_trace(TINY, SBQA)
        assert recorded.digest() == plain.digest()

    def test_replay_reproduces_digest(self):
        trace, result = record_trace(TINY, SBQA)
        replayed = replay_once(TINY, SBQA, trace)
        assert replayed.digest() == result.digest()
        assert replayed.summary.queries_issued == result.summary.queries_issued

    def test_replay_round_trips_through_json(self, tmp_path):
        trace, result = record_trace(TINY, SBQA)
        path = tmp_path / "t.json"
        trace.save(path)
        replayed = replay_once(TINY, SBQA, TraceSpec.load(path))
        assert replayed.digest() == result.digest()

    def test_replay_parity_on_event_engine(self):
        from dataclasses import replace

        trace, result = record_trace(TINY, SBQA)
        event_config = replace(TINY, engine="event")
        assert replay_once(event_config, SBQA, trace).digest() == result.digest()

    def test_replay_parity_with_autonomy(self):
        from dataclasses import replace

        from repro.experiments.config import AutonomyConfig

        config = replace(
            TINY,
            duration=300.0,
            autonomy=AutonomyConfig(
                mode="autonomous",
                consumer_threshold=0.5,
                provider_threshold=0.35,
                warmup=30.0,
            ),
        )
        trace, result = record_trace(config, SBQA)
        assert replay_once(config, SBQA, trace).digest() == result.digest()

    def test_replay_rejects_unknown_consumers(self):
        alien = TraceSpec(
            name="alien",
            shape="recorded",
            duration=10.0,
            arrivals=(
                TraceArrival(
                    time=1.0, consumer_id="martians", topic="martians",
                    service_demand=5.0,
                ),
            ),
        )
        with pytest.raises(ValueError, match="unknown consumer"):
            replay_once(TINY, SBQA, alien)

    def test_recorder_attach_captures_query_fields(self):
        from repro.experiments.runner import wire_run

        live = wire_run(TINY, SBQA)
        recorder = ArrivalRecorder().attach(live.population.consumers)
        live.step_until(30.0)
        assert recorder.arrivals
        first = recorder.arrivals[0]
        assert first.consumer_id in {"seti", "proteins", "einstein"}
        assert first.service_demand > 0
        assert first.time <= 30.0


#: Replay parity in a subprocess with randomized hashing: digests must
#: not depend on dict/set iteration order anywhere in the replay path.
_HASHSEED_SCRIPT = """
import json, sys
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.workloads.boinc import BoincScenarioParams
from repro.workloads.traces import record_trace, replay_once

config = ExperimentConfig(
    name="trace-tiny", seed=42, duration=150.0,
    population=BoincScenarioParams(n_providers=15),
)
policy = PolicySpec(name="sbqa")
trace, result = record_trace(config, policy)
replayed = replay_once(config, policy, trace)
json.dump(
    {"batch": result.digest(), "replay": replayed.digest()}, sys.stdout
)
"""


def test_replay_parity_under_random_hash_seed():
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "random"
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    digests = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT],
            env=env, capture_output=True, text=True, check=True,
        )
        payload = json.loads(proc.stdout)
        assert payload["replay"] == payload["batch"]
        digests.append(payload["batch"])
    assert digests[0] == digests[1]
