"""Unit tests for service-demand models."""

import pytest

from repro.des.rng import RandomStream
from repro.workloads.queries import FixedDemand, LognormalDemand, ParetoDemand


class TestFixedDemand:
    def test_constant(self):
        model = FixedDemand(12.0)
        assert model.sample() == 12.0
        assert model.mean == 12.0

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            FixedDemand(0.0)


class TestLognormalDemand:
    def test_samples_positive(self):
        model = LognormalDemand(RandomStream(1), mean=30.0, cv=0.5)
        assert all(model.sample() > 0 for _ in range(200))

    def test_empirical_mean_near_parameter(self):
        model = LognormalDemand(RandomStream(1), mean=30.0, cv=0.5)
        n = 5000
        empirical = sum(model.sample() for _ in range(n)) / n
        assert 27.0 < empirical < 33.0

    def test_mean_property(self):
        assert LognormalDemand(RandomStream(1), mean=42.0).mean == 42.0

    def test_validation(self):
        with pytest.raises(ValueError, match="mean"):
            LognormalDemand(RandomStream(1), mean=-1.0)
        with pytest.raises(ValueError, match="cv"):
            LognormalDemand(RandomStream(1), mean=1.0, cv=-0.5)


class TestParetoDemand:
    def test_bounded_below(self):
        model = ParetoDemand(RandomStream(1), alpha=2.5, minimum=10.0)
        assert all(model.sample() >= 10.0 for _ in range(200))

    def test_mean_formula(self):
        model = ParetoDemand(RandomStream(1), alpha=2.0, minimum=10.0)
        assert model.mean == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            ParetoDemand(RandomStream(1), alpha=1.0)
        with pytest.raises(ValueError, match="minimum"):
            ParetoDemand(RandomStream(1), alpha=2.0, minimum=0.0)
