"""Unit tests for the BOINC population builder."""

import pytest

from repro.des.network import Network
from repro.des.rng import RandomRoot
from repro.des.scheduler import Simulator
from repro.workloads.boinc import (
    BoincScenarioParams,
    FocalConsumerSpec,
    FocalProviderSpec,
    build_boinc_population,
    paper_projects,
)


def build(params=None, seed=77):
    sim = Simulator()
    network = Network(sim)
    root = RandomRoot(seed)
    return build_boinc_population(
        sim, network, root, params or BoincScenarioParams(n_providers=60)
    )


class TestParams:
    def test_paper_projects_popularity_order(self):
        projects = paper_projects()
        assert [p.name for p in projects] == ["seti", "proteins", "einstein"]
        weights = [p.popularity_weight for p in projects]
        assert weights == sorted(weights, reverse=True)
        rates = [p.rate_scale for p in projects]
        assert sum(rates) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="provider"):
            BoincScenarioParams(n_providers=0)
        with pytest.raises(ValueError, match="target_load"):
            BoincScenarioParams(target_load=0.0)
        with pytest.raises(ValueError, match="n_results"):
            BoincScenarioParams(n_results=0)
        with pytest.raises(ValueError, match="project"):
            BoincScenarioParams(projects=())

    def test_arrival_rate_hits_target_load(self):
        params = BoincScenarioParams(n_providers=100, target_load=0.6)
        total_capacity = 100.0
        rate = params.arrival_rate(total_capacity)
        consumers = len(params.consumer_ids)
        implied_load = (
            rate * consumers * params.demand_mean * params.n_results / total_capacity
        )
        assert implied_load == pytest.approx(0.6)

    def test_consumer_ids_include_focal(self):
        params = BoincScenarioParams(focal_consumer=FocalConsumerSpec())
        assert "focal-consumer" in params.consumer_ids


class TestPopulation:
    def test_counts(self):
        population = build()
        assert len(population.providers) == 60
        assert len(population.consumers) == 3
        assert len(population.registry.providers) == 60

    def test_archetypes_assigned(self):
        population = build()
        archetypes = set(population.archetype_of.values())
        assert archetypes <= {"enthusiast", "selective", "picky"}
        assert len(archetypes) == 3  # all present at this size

    def test_popularity_structure_holds(self):
        """Paper: seti popular (majority positive), proteins normal,
        einstein unpopular (small minority positive)."""
        population = build(BoincScenarioParams(n_providers=300))
        def liking(project):
            return sum(
                1 for p in population.providers if p.preferences[project] > 0
            ) / len(population.providers)

        assert liking("seti") > 0.5          # the majority
        assert 0.3 < liking("proteins") < liking("seti")  # great number, not most
        assert liking("einstein") < liking("proteins")    # unpopular

    def test_deterministic_in_seed(self):
        a = build(seed=5)
        b = build(seed=5)
        for pa, pb in zip(a.providers, b.providers):
            assert pa.preferences == pb.preferences
            assert pa.capacity == pb.capacity

    def test_different_seeds_differ(self):
        a = build(seed=5)
        b = build(seed=6)
        assert any(
            pa.preferences != pb.preferences
            for pa, pb in zip(a.providers, b.providers)
        )

    def test_resource_shares_attached(self):
        population = build()
        for provider in population.providers:
            assert provider.resource_shares
            assert sum(provider.resource_shares.values()) == pytest.approx(1.0)

    def test_consumer_preferences_cover_all_providers(self):
        population = build()
        provider_ids = {p.participant_id for p in population.providers}
        for consumer in population.consumers:
            assert set(consumer.preferences) == provider_ids

    def test_providers_of_archetype(self):
        population = build()
        total = sum(
            len(population.providers_of_archetype(a))
            for a in ("enthusiast", "selective", "picky")
        )
        assert total == len(population.providers)


class TestFocalProbes:
    def test_focal_provider_added(self):
        params = BoincScenarioParams(
            n_providers=20, focal_provider=FocalProviderSpec(loves="einstein")
        )
        population = build(params)
        focal = population.registry.provider("focal-provider")
        assert focal.preferences["einstein"] == 0.9
        assert focal.preferences["seti"] == -0.8
        assert population.archetype_of["focal-provider"] == "focal"

    def test_focal_consumer_added(self):
        params = BoincScenarioParams(
            n_providers=20, focal_consumer=FocalConsumerSpec(n_trusted=5)
        )
        population = build(params)
        focal = population.registry.consumer("focal-consumer")
        trusted = [pid for pid, v in focal.preferences.items() if v > 0]
        assert len(trusted) == 5
        # providers drew a preference for the focal consumer too
        assert all(
            "focal-consumer" in p.preferences for p in population.providers
        )


class TestMemoryHeterogeneity:
    def test_zero_jitter_gives_uniform_memory(self):
        population = build(BoincScenarioParams(n_providers=30, memory=80))
        assert all(p.tracker.memory == 80 for p in population.providers)
        assert all(c.tracker.memory == 80 for c in population.consumers)

    def test_jitter_spreads_memories(self):
        params = BoincScenarioParams(n_providers=60, memory=100, memory_jitter=0.5)
        population = build(params)
        memories = {p.tracker.memory for p in population.providers}
        assert len(memories) > 10  # genuinely heterogeneous
        assert all(50 <= m <= 150 for m in memories)

    def test_jitter_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="memory_jitter"):
            BoincScenarioParams(memory_jitter=1.0)

    def test_jitter_is_deterministic_per_seed(self):
        params = BoincScenarioParams(n_providers=20, memory_jitter=0.3)
        a = build(params, seed=9)
        b = build(BoincScenarioParams(n_providers=20, memory_jitter=0.3), seed=9)
        assert [p.tracker.memory for p in a.providers] == [
            p.tracker.memory for p in b.providers
        ]


class TestDemandDistribution:
    def test_default_is_lognormal(self):
        from repro.des.rng import RandomStream
        from repro.workloads.queries import LognormalDemand

        params = BoincScenarioParams(n_providers=5)
        model = params.make_demand_model(RandomStream(1))
        assert isinstance(model, LognormalDemand)
        assert model.mean == params.demand_mean

    def test_pareto_model_built_with_matching_mean(self):
        from repro.des.rng import RandomStream
        from repro.workloads.queries import ParetoDemand

        params = BoincScenarioParams(
            n_providers=5, demand_distribution="pareto", demand_mean=30.0
        )
        model = params.make_demand_model(RandomStream(1))
        assert isinstance(model, ParetoDemand)
        assert model.mean == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="demand_distribution"):
            BoincScenarioParams(demand_distribution="weibull")
        with pytest.raises(ValueError, match="pareto"):
            BoincScenarioParams(
                demand_distribution="pareto", demand_mean=5.0, pareto_minimum=10.0
            )

    def test_pareto_runs_end_to_end(self):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.runner import run_once

        config = ExperimentConfig(
            name="pareto",
            seed=3,
            duration=150.0,
            population=BoincScenarioParams(
                n_providers=10, demand_distribution="pareto"
            ),
        )
        result = run_once(config, PolicySpec(name="sbqa"))
        assert result.summary.queries_completed > 0
