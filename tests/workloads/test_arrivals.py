"""Unit tests for arrival processes."""

import pytest

from repro.allocation.capacity import CapacityBasedPolicy
from repro.core.mediator import Mediator
from repro.des.rng import RandomStream
from repro.workloads.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workloads.queries import FixedDemand


def wire(factory, n_providers=2):
    providers = [factory.provider(f"p{i}") for i in range(n_providers)]
    consumer = factory.consumer("c0")
    mediator = Mediator(
        factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
    )
    consumer.attach_mediator(mediator)
    return consumer, mediator


class TestDeterministicArrivals:
    def test_issues_at_fixed_interval(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=10.0, horizon=100.0
        )
        arrivals.start()
        sim.run_until(100.0)
        # arrivals at t=10, 20, ..., 100
        assert arrivals.queries_issued == 10

    def test_initial_delay_override(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=10.0, horizon=25.0
        )
        arrivals.start(initial_delay=0.0)
        sim.run_until(25.0)
        # arrivals at t=0, 10, 20
        assert arrivals.queries_issued == 3

    def test_horizon_stops_issuing(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=10.0, horizon=35.0
        )
        arrivals.start()
        sim.run_until(200.0)
        assert arrivals.queries_issued == 3  # t=10, 20, 30

    def test_departed_consumer_stops_issuing(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(sim, consumer, FixedDemand(1.0), interval=10.0)
        arrivals.start()
        sim.schedule_at(25.0, consumer.leave)
        sim.run_until(100.0)
        assert arrivals.queries_issued == 2  # t=10, 20 only

    def test_start_is_idempotent(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=10.0, horizon=15.0
        )
        arrivals.start()
        arrivals.start()
        sim.run_until(15.0)
        assert arrivals.queries_issued == 1

    def test_topic_defaults_to_consumer_id(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=5.0, horizon=6.0
        )
        arrivals.start()
        sim.run_until(6.0)
        assert mediator.records[0].query.topic == "c0"

    def test_interval_validation(self, factory, sim):
        consumer, mediator = wire(factory)
        with pytest.raises(ValueError, match="interval"):
            DeterministicArrivals(sim, consumer, FixedDemand(1.0), interval=0.0)

    def test_n_results_override(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = DeterministicArrivals(
            sim, consumer, FixedDemand(1.0), interval=5.0, n_results=2, horizon=6.0
        )
        arrivals.start()
        sim.run_until(6.0)
        assert mediator.records[0].query.n_results == 2


class TestPoissonArrivals:
    def test_rate_validation(self, factory, sim):
        consumer, mediator = wire(factory)
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(sim, consumer, FixedDemand(1.0), rate=0.0, stream=RandomStream(1))

    def test_empirical_rate_near_parameter(self, factory, sim):
        consumer, mediator = wire(factory)
        arrivals = PoissonArrivals(
            sim, consumer, FixedDemand(0.001), rate=2.0,
            stream=RandomStream(9), horizon=1000.0,
        )
        arrivals.start()
        sim.run_until(1000.0)
        # ~2000 expected; allow generous tolerance
        assert 1700 < arrivals.queries_issued < 2300

    def test_reproducible_per_seed(self, factory, sim):
        consumer, mediator = wire(factory)
        a = PoissonArrivals(
            sim, consumer, FixedDemand(0.001), rate=1.0,
            stream=RandomStream(4), horizon=200.0,
        )
        a.start()
        sim.run_until(200.0)
        first = a.queries_issued

        # fresh simulation, same seed
        import repro.des.scheduler as sched
        from repro.des.network import Network

        sim2 = sched.Simulator()
        network2 = Network(sim2)
        from tests.conftest import Factory

        factory2 = Factory(sim2, network2)
        consumer2, mediator2 = wire(factory2)
        b = PoissonArrivals(
            sim2, consumer2, FixedDemand(0.001), rate=1.0,
            stream=RandomStream(4), horizon=200.0,
        )
        b.start()
        sim2.run_until(200.0)
        assert b.queries_issued == first
