"""Unit tests for preference-matrix generators."""

import pytest

from repro.des.rng import RandomStream
from repro.workloads.preferences import (
    ARCHETYPES,
    ArchetypeMix,
    draw_consumer_preferences,
    draw_provider_archetype,
    draw_provider_preferences,
    shares_from_preferences,
)

CONSUMERS = ["seti", "proteins", "einstein"]
WEIGHTS = [0.6, 0.3, 0.1]


class TestArchetypeMix:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ArchetypeMix(enthusiast=0.5, selective=0.5, picky=0.5)

    def test_fractions_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            ArchetypeMix(enthusiast=1.2, selective=-0.2, picky=0.0)

    def test_draw_respects_degenerate_mix(self):
        mix = ArchetypeMix(enthusiast=1.0, selective=0.0, picky=0.0)
        stream = RandomStream(1)
        assert all(
            draw_provider_archetype(stream, mix) == "enthusiast" for _ in range(50)
        )

    def test_draw_covers_all_archetypes(self):
        mix = ArchetypeMix()
        stream = RandomStream(2)
        seen = {draw_provider_archetype(stream, mix) for _ in range(300)}
        assert seen == set(ARCHETYPES)


class TestProviderPreferences:
    def test_enthusiast_likes_everything(self):
        prefs = draw_provider_preferences(
            RandomStream(1), "enthusiast", CONSUMERS, WEIGHTS
        )
        assert set(prefs) == set(CONSUMERS)
        assert all(v >= 0.2 for v in prefs.values())

    def test_selective_loves_exactly_one(self):
        prefs = draw_provider_preferences(
            RandomStream(3), "selective", CONSUMERS, WEIGHTS
        )
        loved = [c for c, v in prefs.items() if v > 0]
        hated = [c for c, v in prefs.items() if v < 0]
        assert len(loved) == 1
        assert len(hated) == 2
        assert prefs[loved[0]] >= 0.7
        assert all(prefs[c] <= -0.85 for c in hated)

    def test_selective_favourites_follow_popularity(self):
        favourites = []
        for i in range(400):
            prefs = draw_provider_preferences(
                RandomStream(i), "selective", CONSUMERS, WEIGHTS
            )
            favourites.append(max(prefs, key=prefs.get))
        seti = favourites.count("seti")
        einstein = favourites.count("einstein")
        assert seti > 2 * einstein  # popular project attracts far more devotees

    def test_picky_dislikes_everything_mildly(self):
        prefs = draw_provider_preferences(RandomStream(5), "picky", CONSUMERS, WEIGHTS)
        assert all(-0.6 <= v <= -0.2 for v in prefs.values())

    def test_unknown_archetype(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            draw_provider_preferences(RandomStream(1), "zealot", CONSUMERS, WEIGHTS)

    def test_weight_alignment_checked(self):
        with pytest.raises(ValueError, match="align"):
            draw_provider_preferences(RandomStream(1), "picky", CONSUMERS, [0.5])


class TestConsumerPreferences:
    def test_draws_for_every_provider(self):
        providers = [f"p{i}" for i in range(50)]
        prefs = draw_consumer_preferences(RandomStream(1), providers)
        assert set(prefs) == set(providers)
        assert all(-0.2 <= v <= 0.9 for v in prefs.values())

    def test_preferred_fraction_extremes(self):
        providers = [f"p{i}" for i in range(50)]
        all_preferred = draw_consumer_preferences(
            RandomStream(1), providers, preferred_fraction=1.0
        )
        assert all(v >= 0.4 for v in all_preferred.values())
        none_preferred = draw_consumer_preferences(
            RandomStream(1), providers, preferred_fraction=0.0
        )
        assert all(v <= 0.5 for v in none_preferred.values())

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="preferred_fraction"):
            draw_consumer_preferences(RandomStream(1), ["p"], preferred_fraction=1.5)


class TestShares:
    def test_shares_normalised(self):
        shares = shares_from_preferences({"a": 0.8, "b": 0.2, "c": -0.5})
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["a"] > shares["b"] > shares["c"] > 0.0

    def test_negative_preferences_get_floor_only(self):
        shares = shares_from_preferences({"a": -0.9, "b": 0.9}, floor=0.02)
        assert shares["a"] == pytest.approx(0.02 / (0.02 + 0.92))

    def test_all_negative_with_zero_floor_uniform(self):
        shares = shares_from_preferences({"a": -0.9, "b": -0.5}, floor=0.0)
        assert shares == {"a": 0.5, "b": 0.5}

    def test_empty_preferences(self):
        assert shares_from_preferences({}) == {}

    def test_floor_validation(self):
        with pytest.raises(ValueError, match="floor"):
            shares_from_preferences({"a": 0.5}, floor=-0.1)
