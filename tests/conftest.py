"""Shared fixtures: a tiny simulation toolkit for unit tests."""

from __future__ import annotations

from typing import Dict, Optional

import pytest

from repro.des.network import Network
from repro.des.rng import RandomRoot
from repro.des.scheduler import Simulator
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query, reset_query_counter
from repro.system.registry import SystemRegistry


@pytest.fixture(autouse=True)
def _fresh_query_ids():
    """Reset the global query-id counter so qids are stable per test."""
    reset_query_counter()
    yield


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim) -> Network:
    """Zero-latency network: message delivery is same-instant events."""
    return Network(sim)


@pytest.fixture
def root() -> RandomRoot:
    return RandomRoot(1234)


class Factory:
    """Builds wired participants and queries with terse defaults."""

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network
        self.registry = SystemRegistry()
        self._consumer_count = 0
        self._provider_count = 0

    def provider(
        self,
        pid: Optional[str] = None,
        capacity: float = 1.0,
        preferences: Optional[Dict[str, float]] = None,
        register: bool = True,
        **kwargs,
    ) -> Provider:
        if pid is None:
            pid = f"p{self._provider_count}"
        self._provider_count += 1
        provider = Provider(
            self.sim,
            self.network,
            participant_id=pid,
            capacity=capacity,
            preferences=preferences,
            **kwargs,
        )
        if register:
            self.registry.add_provider(provider)
        return provider

    def consumer(
        self,
        cid: Optional[str] = None,
        preferences: Optional[Dict[str, float]] = None,
        register: bool = True,
        **kwargs,
    ) -> Consumer:
        if cid is None:
            cid = f"c{self._consumer_count}"
        self._consumer_count += 1
        consumer = Consumer(
            self.sim,
            self.network,
            participant_id=cid,
            preferences=preferences,
            **kwargs,
        )
        if register:
            self.registry.add_consumer(consumer)
        return consumer

    def query(
        self,
        consumer: Consumer,
        topic: Optional[str] = None,
        demand: float = 10.0,
        n_results: int = 1,
    ) -> Query:
        return Query(
            consumer=consumer,
            topic=topic if topic is not None else consumer.participant_id,
            service_demand=demand,
            n_results=n_results,
            issued_at=self.sim.now,
        )


@pytest.fixture
def factory(sim, network) -> Factory:
    return Factory(sim, network)
