"""The documentation suite's relative links must resolve.

Runs the same checker CI uses (``tools/check_links.py``) as a unit
test, so a renamed example or doc page fails locally before it fails
the docs job.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_links import dead_links, default_doc_set, iter_links  # noqa: E402


def test_doc_set_is_nonempty():
    docs = default_doc_set(ROOT)
    names = {p.name for p in docs}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "sweeps.md" in names
    assert "api.md" in names


def test_no_dead_relative_links():
    failures = dead_links(default_doc_set(ROOT))
    assert not failures, "dead documentation links:\n" + "\n".join(failures)


def test_checker_sees_links_and_skips_code_fences(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "see [spec](grid.json) and [web](https://example.com)\n"
        "```bash\n"
        "echo [not a](link.md)\n"
        "```\n"
        "[anchor](#section) and [dead](missing.md)\n",
        encoding="utf-8",
    )
    (tmp_path / "grid.json").write_text("{}", encoding="utf-8")
    targets = [t for _, t in iter_links(page)]
    assert targets == ["grid.json", "https://example.com", "#section", "missing.md"]
    failures = dead_links([page])
    assert [f.split(": ")[1] for f in failures] == ["missing.md"]
    (tmp_path / "missing.md").write_text("", encoding="utf-8")
    assert dead_links([page]) == []
