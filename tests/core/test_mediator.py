"""Unit/integration tests for the mediator pipeline (Figure 1)."""

import pytest

from repro.core.mediator import Mediator
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.allocation.capacity import CapacityBasedPolicy
from repro.des.rng import RandomStream
from repro.des.tracing import TraceRecorder
from repro.metrics.collectors import MetricsHub
from repro.system.query import QueryStatus


def sbqa(k=4, kn=2, seed=5):
    return SbQAPolicy(SbQAConfig(k=k, kn=kn), RandomStream(seed))


class TestMediationSuccess:
    def _setup(self, factory, n_providers=4, n_results=1, policy=None):
        providers = [factory.provider(f"p{i}") for i in range(n_providers)]
        consumer = factory.consumer(
            "c0", preferences={p.participant_id: 0.5 for p in providers}
        )
        mediator = Mediator(
            factory.sim,
            factory.network,
            factory.registry,
            policy or CapacityBasedPolicy(),
        )
        consumer.attach_mediator(mediator)
        return providers, consumer, mediator

    def test_query_flows_to_completion(self, factory, sim):
        providers, consumer, mediator = self._setup(factory)
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        assert consumer.stats.queries_completed == 1
        assert consumer.stats.queries_issued == 1
        assert mediator.mediations == 1
        assert mediator.failures == 0

    def test_response_time_includes_service(self, factory, sim):
        providers, consumer, mediator = self._setup(factory)
        consumer.issue("c0", service_demand=10.0)  # capacity 1.0 -> 10s service
        sim.run()
        assert consumer.stats.mean_response_time == pytest.approx(10.0)

    def test_replicated_query_completes_when_all_results_arrive(self, factory, sim):
        providers, consumer, mediator = self._setup(factory, n_results=2)
        consumer.default_n_results = 2
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        record = mediator.records[0]
        assert len(record.allocated) == 2
        assert len(record.results) == 2
        assert record.query.status is QueryStatus.COMPLETED

    def test_consumer_satisfaction_recorded_at_mediation(self, factory, sim):
        from repro.core.intentions import PreferenceIntentions

        providers, consumer, mediator = self._setup(factory)
        consumer.intention_model = PreferenceIntentions()
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        # preference 0.5 -> Equation 1 gives (0.5+1)/2 = 0.75 with n=1
        assert consumer.tracker.observations == 1
        assert consumer.satisfaction == pytest.approx(0.75)

    def test_provider_proposal_recorded_for_allocated(self, factory, sim):
        providers, consumer, mediator = self._setup(factory)
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        proposals = sum(p.tracker.observations for p in providers)
        assert proposals == 1  # capacity policy informs only the allocated one

    def test_sbqa_informs_whole_working_set(self, factory, sim):
        providers, consumer, mediator = self._setup(factory, policy=sbqa(k=4, kn=3))
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        proposals = sum(p.tracker.observations for p in providers)
        assert proposals == 3  # kn = 3 informed
        performed = sum(p.tracker.total_performed for p in providers)
        assert performed == 1

    def test_record_bookkeeping(self, factory, sim):
        providers, consumer, mediator = self._setup(factory, policy=sbqa(k=4, kn=2))
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        record = mediator.records[0]
        assert record.adequation is not None
        assert set(record.allocated_ids) <= set(record.informed_ids)
        assert record.response_time is not None
        assert record.response_time >= 10.0

    def test_keep_records_false_stores_nothing(self, factory, sim):
        providers = [factory.provider(f"p{i}") for i in range(2)]
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim,
            factory.network,
            factory.registry,
            CapacityBasedPolicy(),
            keep_records=False,
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert mediator.records == []
        assert mediator.mediations == 1

    def test_observer_notified(self, factory, sim):
        hub = MetricsHub()
        providers = [factory.provider(f"p{i}") for i in range(2)]
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy(),
            observer=hub,
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert hub.queries_issued == 1
        assert hub.queries_allocated == 1

    def test_consultation_counts_coordination_messages(self, factory, sim):
        providers, consumer, mediator = self._setup(factory, policy=sbqa(k=4, kn=2))
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        # 2*kn + 2 consult messages + kn outcome notifications
        assert mediator.coordination_messages == (2 * 2 + 2) + 2

    def test_trace_pipeline_categories(self, factory, sim):
        trace = TraceRecorder()
        providers = [factory.provider(f"p{i}") for i in range(3)]
        consumer = factory.consumer(
            "c0", preferences={p.participant_id: 0.5 for p in providers}
        )
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, sbqa(k=3, kn=2), trace=trace
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=10.0)
        sim.run()
        assert {"mediate", "knbest", "sqlb", "allocate"} <= trace.categories()


class TestMediationFailure:
    def test_no_capable_providers(self, factory, sim):
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        consumer.attach_mediator(mediator)
        query = consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert mediator.failures == 1
        assert query.status is QueryStatus.FAILED
        assert consumer.stats.queries_failed == 1
        # Equation 1 over an empty performer set: satisfaction 0
        assert consumer.satisfaction == 0.0

    def test_offline_providers_are_not_capable(self, factory, sim):
        provider = factory.provider("p0")
        provider.leave()
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert mediator.failures == 1

    def test_failure_reported_to_observer(self, factory, sim):
        hub = MetricsHub()
        consumer = factory.consumer("c0")
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy(),
            observer=hub,
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        assert hub.queries_failed == 1
        assert hub.failure_rate == 1.0


class TestAdequation:
    def test_adequation_over_informed_by_default(self, factory, sim):
        providers = [factory.provider(f"p{i}") for i in range(4)]
        consumer = factory.consumer(
            "c0", preferences={"p0": 0.9, "p1": 0.1, "p2": 0.1, "p3": 0.1}
        )
        mediator = Mediator(
            factory.sim, factory.network, factory.registry, CapacityBasedPolicy()
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        record = mediator.records[0]
        # informed == allocated for the capacity policy, so adequation
        # equals the achieved satisfaction
        assert record.adequation == pytest.approx(
            consumer.tracker.satisfaction()
        )

    def test_adequation_over_candidates_sees_full_pool(self, factory, sim):
        from repro.core.intentions import PreferenceIntentions

        providers = [factory.provider(f"p{i}") for i in range(4)]
        # p3 is loved but slow to be chosen by capacity (equal otherwise)
        consumer = factory.consumer(
            "c0",
            preferences={"p0": 0.0, "p1": 0.0, "p2": 0.0, "p3": 1.0},
            intention_model=PreferenceIntentions(),
        )
        mediator = Mediator(
            factory.sim,
            factory.network,
            factory.registry,
            CapacityBasedPolicy(),
            adequation_over_candidates=True,
        )
        consumer.attach_mediator(mediator)
        consumer.issue("c0", service_demand=5.0)
        sim.run()
        record = mediator.records[0]
        # best candidate has preference 1.0 -> adequation (1+1)/2 = 1.0
        assert record.adequation == pytest.approx(1.0)
