"""Unit and property tests for the satisfaction model (Section II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satisfaction import (
    NEUTRAL_SATISFACTION,
    ConsumerSatisfactionTracker,
    ProviderSatisfactionTracker,
    adequation,
    allocation_satisfaction,
    consumer_query_satisfaction,
    intention_to_unit,
)

intentions = st.floats(min_value=-1.0, max_value=1.0)


class TestIntentionToUnit:
    def test_extremes(self):
        assert intention_to_unit(-1.0) == 0.0
        assert intention_to_unit(1.0) == 1.0
        assert intention_to_unit(0.0) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            intention_to_unit(1.5)
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            intention_to_unit(-1.5)

    @given(intentions)
    def test_stays_in_unit_interval(self, intention):
        assert 0.0 <= intention_to_unit(intention) <= 1.0

    @given(intentions, intentions)
    def test_monotone(self, a, b):
        if a <= b:
            assert intention_to_unit(a) <= intention_to_unit(b)


class TestConsumerQuerySatisfaction:
    """Equation 1 of the paper."""

    def test_full_allocation_of_wanted_providers(self):
        # two providers, both with intention 1, n=2 -> satisfaction 1
        assert consumer_query_satisfaction([1.0, 1.0], 2) == 1.0

    def test_unwanted_providers_give_zero(self):
        assert consumer_query_satisfaction([-1.0, -1.0], 2) == 0.0

    def test_neutral_providers_give_half(self):
        assert consumer_query_satisfaction([0.0, 0.0], 2) == 0.5

    def test_missing_results_depress_satisfaction(self):
        # one wanted provider but two results required -> only 1/2
        assert consumer_query_satisfaction([1.0], 2) == 0.5

    def test_empty_performer_set_is_zero(self):
        assert consumer_query_satisfaction([], 3) == 0.0

    def test_n_validation(self):
        with pytest.raises(ValueError, match="n_results"):
            consumer_query_satisfaction([0.5], 0)

    def test_worked_example_from_definition(self):
        # n=2, performers with CI 0.6 and -0.2:
        # ((0.6+1)/2 + (-0.2+1)/2) / 2 = (0.8 + 0.4) / 2 = 0.6
        assert consumer_query_satisfaction([0.6, -0.2], 2) == pytest.approx(0.6)

    @given(st.lists(intentions, max_size=8), st.integers(min_value=1, max_value=8))
    def test_always_in_unit_interval(self, values, n):
        performers = values[:n]  # the mediator allocates at most n
        assert 0.0 <= consumer_query_satisfaction(performers, n) <= 1.0

    @given(st.lists(intentions, min_size=1, max_size=5))
    def test_more_required_results_never_increase_satisfaction(self, values):
        n = len(values)
        assert consumer_query_satisfaction(values, n + 1) <= consumer_query_satisfaction(
            values, n
        )


class TestAdequation:
    def test_takes_best_n(self):
        # best 2 of {-1, 0.5, 1} -> (1 + 0.75)/2... units: (1.0 + 0.75)/2
        value = adequation([-1.0, 0.5, 1.0], 2)
        assert value == pytest.approx((1.0 + 0.75) / 2)

    def test_empty_candidates(self):
        assert adequation([], 2) == 0.0

    @given(st.lists(intentions, max_size=10), st.integers(min_value=1, max_value=5))
    def test_adequation_bounds_achieved(self, values, n):
        """No subset of size <= n can beat the adequation."""
        ach = consumer_query_satisfaction(sorted(values, reverse=True)[:n], n)
        assert adequation(values, n) == pytest.approx(ach)


class TestAllocationSatisfaction:
    def test_perfect_allocation(self):
        assert allocation_satisfaction(0.8, 0.8) == 1.0

    def test_partial_allocation(self):
        assert allocation_satisfaction(0.4, 0.8) == 0.5

    def test_zero_achievable_means_blameless(self):
        assert allocation_satisfaction(0.0, 0.0) == 1.0

    def test_clamped_to_one(self):
        assert allocation_satisfaction(0.9, 0.8) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="achieved"):
            allocation_satisfaction(1.2, 0.5)
        with pytest.raises(ValueError, match="achievable"):
            allocation_satisfaction(0.5, -0.1)


class TestConsumerTracker:
    """Definition 1."""

    def test_neutral_before_any_query(self):
        tracker = ConsumerSatisfactionTracker()
        assert tracker.satisfaction() == NEUTRAL_SATISFACTION
        assert tracker.satisfaction(default=0.0) == 0.0

    def test_mean_of_recorded_values(self):
        tracker = ConsumerSatisfactionTracker(memory=10)
        tracker.record_query(0.2)
        tracker.record_query(0.8)
        assert tracker.satisfaction() == pytest.approx(0.5)

    def test_window_evicts_oldest(self):
        tracker = ConsumerSatisfactionTracker(memory=2)
        tracker.record_query(0.0)
        tracker.record_query(1.0)
        tracker.record_query(1.0)
        assert tracker.satisfaction() == 1.0
        assert tracker.observations == 2
        assert tracker.total_recorded == 3

    def test_memory_validation(self):
        with pytest.raises(ValueError, match="memory"):
            ConsumerSatisfactionTracker(memory=0)

    def test_satisfaction_validation(self):
        tracker = ConsumerSatisfactionTracker()
        with pytest.raises(ValueError, match="satisfaction"):
            tracker.record_query(1.2)
        with pytest.raises(ValueError, match="adequation"):
            tracker.record_query(0.5, adequation_value=1.5)

    def test_allocation_satisfaction_ratio(self):
        tracker = ConsumerSatisfactionTracker()
        tracker.record_query(0.4, adequation_value=0.8)
        assert tracker.allocation_satisfaction() == pytest.approx(0.5)

    def test_adequation_mean(self):
        tracker = ConsumerSatisfactionTracker()
        tracker.record_query(0.4, adequation_value=0.8)
        tracker.record_query(0.4, adequation_value=0.4)
        assert tracker.adequation() == pytest.approx(0.6)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=50))
    def test_satisfaction_always_in_unit_interval(self, values):
        tracker = ConsumerSatisfactionTracker(memory=10)
        for v in values:
            tracker.record_query(v)
        assert 0.0 <= tracker.satisfaction() <= 1.0

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_window_mean_matches_manual_computation(self, values, memory):
        tracker = ConsumerSatisfactionTracker(memory=memory)
        for v in values:
            tracker.record_query(v)
        window = values[-memory:]
        assert tracker.satisfaction() == pytest.approx(sum(window) / len(window))


class TestProviderTracker:
    """Definition 2."""

    def test_neutral_before_any_proposal(self):
        tracker = ProviderSatisfactionTracker()
        assert tracker.satisfaction() == NEUTRAL_SATISFACTION

    def test_zero_when_proposed_but_never_performed(self):
        """The paper's explicit '0 if SQ empty' rule."""
        tracker = ProviderSatisfactionTracker()
        tracker.record_proposal(0.9, performed=False)
        tracker.record_proposal(0.9, performed=False)
        assert tracker.satisfaction() == 0.0

    def test_mean_over_performed_only(self):
        tracker = ProviderSatisfactionTracker()
        tracker.record_proposal(1.0, performed=True)   # unit 1.0
        tracker.record_proposal(-1.0, performed=False)  # ignored
        tracker.record_proposal(0.0, performed=True)   # unit 0.5
        assert tracker.satisfaction() == pytest.approx(0.75)

    def test_window_eviction_can_revive_satisfaction(self):
        tracker = ProviderSatisfactionTracker(memory=2)
        tracker.record_proposal(0.5, performed=False)
        tracker.record_proposal(0.5, performed=False)
        assert tracker.satisfaction() == 0.0
        tracker.record_proposal(1.0, performed=True)
        tracker.record_proposal(1.0, performed=True)
        assert tracker.satisfaction() == 1.0

    def test_performed_fraction(self):
        tracker = ProviderSatisfactionTracker()
        assert tracker.performed_fraction() == 0.0
        tracker.record_proposal(0.5, performed=True)
        tracker.record_proposal(0.5, performed=False)
        assert tracker.performed_fraction() == 0.5

    def test_counters(self):
        tracker = ProviderSatisfactionTracker(memory=1)
        tracker.record_proposal(0.5, performed=True)
        tracker.record_proposal(0.5, performed=False)
        assert tracker.total_proposed == 2
        assert tracker.total_performed == 1
        assert tracker.observations == 1  # window evicted the first

    def test_window_entries_order(self):
        tracker = ProviderSatisfactionTracker()
        tracker.record_proposal(0.1, performed=False)
        tracker.record_proposal(0.2, performed=True)
        assert tracker.window_entries() == [(0.1, False), (0.2, True)]

    def test_intention_validation(self):
        tracker = ProviderSatisfactionTracker()
        with pytest.raises(ValueError, match="intention"):
            tracker.record_proposal(2.0, performed=True)

    def test_memory_validation(self):
        with pytest.raises(ValueError, match="memory"):
            ProviderSatisfactionTracker(memory=0)

    @given(
        st.lists(
            st.tuples(intentions, st.booleans()),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=1, max_value=15),
    )
    def test_definition2_matches_manual_computation(self, proposals, memory):
        tracker = ProviderSatisfactionTracker(memory=memory)
        for intention, performed in proposals:
            tracker.record_proposal(intention, performed)
        window = proposals[-memory:]
        performed = [(i + 1) / 2 for i, p in window if p]
        expected = sum(performed) / len(performed) if performed else 0.0
        assert tracker.satisfaction() == pytest.approx(expected)

    @given(st.lists(st.tuples(intentions, st.booleans()), max_size=40))
    def test_satisfaction_always_in_unit_interval(self, proposals):
        tracker = ProviderSatisfactionTracker()
        for intention, performed in proposals:
            tracker.record_proposal(intention, performed)
        assert 0.0 <= tracker.satisfaction() <= 1.0


class TestTrackerReset:
    def test_consumer_reset_restores_neutrality(self):
        tracker = ConsumerSatisfactionTracker()
        tracker.record_query(0.1, adequation_value=0.9)
        tracker.reset()
        assert tracker.observations == 0
        assert tracker.satisfaction() == NEUTRAL_SATISFACTION
        # total_recorded is lifetime, not window
        assert tracker.total_recorded == 1

    def test_provider_reset_restores_neutrality(self):
        tracker = ProviderSatisfactionTracker()
        tracker.record_proposal(-0.9, performed=True)
        tracker.reset()
        assert tracker.observations == 0
        assert tracker.satisfaction() == NEUTRAL_SATISFACTION
        assert tracker.total_proposed == 1
