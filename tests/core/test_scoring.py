"""Unit and property tests for the SQLB score (Definition 3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (
    DEFAULT_EPSILON,
    ScoredProvider,
    rank_providers,
    score_pairs,
    sqlb_score,
)

intentions = st.floats(min_value=-1.0, max_value=1.0)
omegas = st.floats(min_value=0.0, max_value=1.0)


class TestScoreBranches:
    def test_positive_branch_value(self):
        # PI=0.5, CI=0.5, omega=0.5 -> sqrt(0.5)*sqrt(0.5) = 0.5
        assert sqlb_score(0.5, 0.5, 0.5) == pytest.approx(0.5)

    def test_positive_branch_omega_extremes(self):
        assert sqlb_score(0.4, 0.9, 1.0) == pytest.approx(0.4)
        assert sqlb_score(0.4, 0.9, 0.0) == pytest.approx(0.9)

    def test_negative_branch_when_provider_objects(self):
        assert sqlb_score(-0.5, 0.9, 0.5) < 0.0

    def test_negative_branch_when_consumer_objects(self):
        assert sqlb_score(0.9, -0.5, 0.5) < 0.0

    def test_zero_intention_uses_negative_branch(self):
        """The positive branch needs strictly positive intentions."""
        assert sqlb_score(0.0, 0.9, 0.5) < 0.0
        assert sqlb_score(0.9, 0.0, 0.5) < 0.0

    def test_negative_branch_value(self):
        # PI=-1, CI=-1, omega=0.5, eps=1 -> -((3)^0.5 * (3)^0.5) = -3
        assert sqlb_score(-1.0, -1.0, 0.5) == pytest.approx(-3.0)

    def test_epsilon_keeps_information_at_intention_one(self):
        """With PI=1 but CI<0 the provider side must not erase the
        consumer's objection (the paper's stated reason for epsilon)."""
        mild = sqlb_score(1.0, -0.1, 0.5, epsilon=1.0)
        strong = sqlb_score(1.0, -0.9, 0.5, epsilon=1.0)
        assert strong < mild < 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="provider intention"):
            sqlb_score(1.5, 0.0, 0.5)
        with pytest.raises(ValueError, match="consumer intention"):
            sqlb_score(0.5, -1.5, 0.5)
        with pytest.raises(ValueError, match="omega"):
            sqlb_score(0.5, 0.5, 1.5)
        with pytest.raises(ValueError, match="epsilon"):
            sqlb_score(0.5, 0.5, 0.5, epsilon=0.0)


class TestScoreProperties:
    @given(intentions, intentions, omegas)
    def test_sign_iff_both_positive(self, pi, ci, omega):
        score = sqlb_score(pi, ci, omega)
        if pi > 0 and ci > 0:
            assert score > 0
        else:
            assert score <= 0

    @given(intentions, intentions, omegas)
    def test_positive_providers_always_outrank_objectionable(self, ci, pi, omega):
        """Any mutually wanted pairing beats any objected pairing."""
        if pi > 0 and ci > 0:
            good = sqlb_score(pi, ci, omega)
            bad = sqlb_score(-abs(pi), ci, omega)
            assert good > bad

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        omegas,
    )
    def test_positive_branch_monotone_in_provider_intention(self, a, b, ci, omega):
        lo, hi = sorted((a, b))
        assert sqlb_score(lo, ci, omega) <= sqlb_score(hi, ci, omega) + 1e-12

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        omegas,
    )
    def test_positive_branch_monotone_in_consumer_intention(self, a, b, pi, omega):
        lo, hi = sorted((a, b))
        assert sqlb_score(pi, lo, omega) <= sqlb_score(pi, hi, omega) + 1e-12

    @given(intentions, intentions, intentions, omegas)
    def test_negative_branch_monotone_in_intentions(self, a, b, other, omega):
        """Less objectionable pairs score closer to zero."""
        lo, hi = sorted((a, b))
        negative_other = -abs(other)  # forces the negative branch
        assert (
            sqlb_score(lo, negative_other, omega)
            <= sqlb_score(hi, negative_other, omega) + 1e-12
        )

    @given(intentions, intentions, omegas)
    def test_score_bounds(self, pi, ci, omega):
        score = sqlb_score(pi, ci, omega)
        # positive branch is bounded by 1; negative by (2+eps).  The
        # negative bound needs an ulp allowance: at pi=ci=-1 the branch
        # computes (2+eps)^w * (2+eps)^(1-w), which is exactly 2+eps in
        # the reals but can round one ulp past it in floats.
        assert -(2.0 + DEFAULT_EPSILON) - 1e-12 <= score <= 1.0

    @given(st.floats(min_value=0.01, max_value=1.0), omegas)
    def test_omega_irrelevant_when_intentions_equal(self, value, omega):
        assert sqlb_score(value, value, omega) == pytest.approx(value)

    @given(intentions, intentions, omegas)
    def test_omega_symmetry(self, pi, ci, omega):
        """Swapping intentions mirrors omega around 1/2."""
        assert sqlb_score(pi, ci, omega) == pytest.approx(
            sqlb_score(ci, pi, 1.0 - omega)
        )


class TestRanking:
    @staticmethod
    def entry(pid, score):
        return ScoredProvider(
            provider_id=pid,
            score=score,
            omega=0.5,
            provider_intention=0.0,
            consumer_intention=0.0,
        )

    def test_best_score_first(self):
        ranking = rank_providers(
            [self.entry("a", 0.1), self.entry("b", 0.9), self.entry("c", 0.5)]
        )
        assert [e.provider_id for e in ranking] == ["b", "c", "a"]

    def test_negative_scores_rank_below_positive(self):
        ranking = rank_providers([self.entry("a", -0.1), self.entry("b", 0.05)])
        assert [e.provider_id for e in ranking] == ["b", "a"]

    def test_ties_break_deterministically_by_id(self):
        ranking = rank_providers(
            [self.entry("z", 0.5), self.entry("a", 0.5), self.entry("m", 0.5)]
        )
        assert [e.provider_id for e in ranking] == ["a", "m", "z"]

    def test_custom_tie_break(self):
        ranking = rank_providers(
            [self.entry("a", 0.5), self.entry("b", 0.5)],
            tie_break=lambda s: (-ord(s.provider_id),),
        )
        assert [e.provider_id for e in ranking] == ["b", "a"]

    @given(st.lists(st.floats(min_value=-3, max_value=1), min_size=1, max_size=20))
    def test_ranking_scores_non_increasing(self, scores):
        entries = [self.entry(f"p{i}", s) for i, s in enumerate(scores)]
        ranking = rank_providers(entries)
        ranked_scores = [e.score for e in ranking]
        assert ranked_scores == sorted(ranked_scores, reverse=True)


class TestScorePairs:
    def test_per_provider_omega(self):
        pairs = [("a", 0.5, 0.5), ("b", 0.5, 0.5)]
        omegas_used = {"a": 1.0, "b": 0.0}
        scored = score_pairs(pairs, omega_for=lambda pid: omegas_used[pid])
        by_id = {s.provider_id: s for s in scored}
        assert by_id["a"].omega == 1.0
        assert by_id["b"].omega == 0.0
        assert by_id["a"].score == pytest.approx(0.5)

    def test_preserves_intentions(self):
        scored = score_pairs([("a", 0.3, 0.7)], omega_for=lambda pid: 0.5)
        assert scored[0].provider_intention == 0.3
        assert scored[0].consumer_intention == 0.7
