"""Unit tests for the allocation-policy interface."""

import pytest

from repro.core.policy import (
    AllocationContext,
    AllocationDecision,
    AllocationPolicy,
    allocation_count,
)


class TestAllocationDecision:
    def test_informed_defaults_to_allocated(self, factory):
        consumer = factory.consumer()
        providers = [factory.provider(), factory.provider()]
        decision = AllocationDecision(allocated=providers)
        assert decision.informed == providers

    def test_allocated_must_be_subset_of_informed(self, factory):
        a = factory.provider("a")
        b = factory.provider("b")
        with pytest.raises(ValueError, match="subset"):
            AllocationDecision(allocated=[a], informed=[b])

    def test_failure_flag(self, factory):
        assert AllocationDecision(allocated=[]).is_failure
        assert not AllocationDecision(allocated=[factory.provider()]).is_failure

    def test_informed_can_exceed_allocated(self, factory):
        a = factory.provider("a")
        b = factory.provider("b")
        decision = AllocationDecision(allocated=[a], informed=[a, b])
        assert len(decision.informed) == 2


class TestAllocationCount:
    def test_limited_by_n_results(self, factory):
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=2)
        assert allocation_count(query, pool_size=10) == 2

    def test_limited_by_pool(self, factory):
        consumer = factory.consumer()
        query = factory.query(consumer, n_results=5)
        assert allocation_count(query, pool_size=3) == 3


class TestBasePolicy:
    def test_select_is_abstract(self, factory):
        policy = AllocationPolicy()
        consumer = factory.consumer()
        query = factory.query(consumer)
        with pytest.raises(NotImplementedError):
            policy.select(query, [], AllocationContext(now=0.0))

    def test_describe_and_repr(self):
        policy = AllocationPolicy()
        assert policy.describe() == {"name": "abstract"}
        assert "AllocationPolicy" in repr(policy)
