"""The incremental satisfaction windows against a naive reference.

The trackers now maintain rolling window sums (O(1) reads -- the hot
operation of the allocation engine).  These tests pin them to a naive
recompute-from-the-window reference: bit-identical before the window
ever wraps (appends accumulate in left-to-right order), and within a
few ulps -- with periodic exact rebuilds bounding the drift -- over
long post-wrap histories.
"""

import random

import pytest

from repro.core.satisfaction import (
    ConsumerSatisfactionTracker,
    ProviderSatisfactionTracker,
    allocation_satisfaction,
    intention_to_unit,
)


def naive_consumer(values):
    return sum(values) / len(values) if values else None


class TestConsumerIncremental:
    def test_bit_identical_before_wrap(self):
        rng = random.Random(1)
        tracker = ConsumerSatisfactionTracker(memory=50)
        values = []
        for _ in range(50):
            v = rng.random()
            values.append(v)
            tracker.record_query(v, adequation_value=rng.random())
            assert tracker.satisfaction() == sum(values) / len(values)

    def test_long_history_tracks_reference(self):
        rng = random.Random(2)
        memory = 37
        tracker = ConsumerSatisfactionTracker(memory=memory)
        values = []
        adequations = []
        for step in range(5000):
            v, a = rng.random(), rng.random()
            values.append(v)
            adequations.append(a)
            tracker.record_query(v, adequation_value=a)
            if step % 97 == 0:
                window_v = values[-memory:]
                window_a = adequations[-memory:]
                assert tracker.satisfaction() == pytest.approx(
                    sum(window_v) / len(window_v), rel=1e-9
                )
                assert tracker.adequation() == pytest.approx(
                    sum(window_a) / len(window_a), rel=1e-9
                )
                ratios = [
                    allocation_satisfaction(s, q)
                    for s, q in zip(window_v, window_a)
                ]
                assert tracker.allocation_satisfaction() == pytest.approx(
                    sum(ratios) / len(ratios), rel=1e-9
                )
                assert 0.0 <= tracker.satisfaction() <= 1.0

    def test_reset_clears_rolling_state(self):
        tracker = ConsumerSatisfactionTracker(memory=3)
        for _ in range(10):
            tracker.record_query(0.9, adequation_value=0.7)
        tracker.reset()
        assert tracker.observations == 0
        tracker.record_query(0.25)
        assert tracker.satisfaction() == 0.25
        assert tracker.adequation() == 1.0

    def test_extreme_windows_stay_exact(self):
        """All-zero and all-one windows never drift off the boundary."""
        for constant in (0.0, 1.0):
            tracker = ConsumerSatisfactionTracker(memory=5)
            for _ in range(1000):
                tracker.record_query(constant)
            assert tracker.satisfaction() == constant


class TestProviderIncremental:
    def test_bit_identical_before_wrap(self):
        rng = random.Random(3)
        tracker = ProviderSatisfactionTracker(memory=60)
        units = []
        for _ in range(60):
            intention = rng.uniform(-1.0, 1.0)
            performed = rng.random() < 0.4
            tracker.record_proposal(intention, performed)
            if performed:
                units.append(intention_to_unit(intention))
            expected = sum(units) / len(units) if units else 0.0
            assert tracker.satisfaction() == expected

    def test_long_history_tracks_reference(self):
        rng = random.Random(4)
        memory = 23
        tracker = ProviderSatisfactionTracker(memory=memory)
        history = []
        for step in range(5000):
            intention = rng.uniform(-1.0, 1.0)
            performed = rng.random() < 0.3
            history.append((intention, performed))
            tracker.record_proposal(intention, performed)
            if step % 89 == 0:
                window = history[-memory:]
                units = [intention_to_unit(i) for i, p in window if p]
                expected = sum(units) / len(units) if units else 0.0
                assert tracker.satisfaction() == pytest.approx(
                    expected, rel=1e-9, abs=1e-12
                )
                assert 0.0 <= tracker.satisfaction() <= 1.0
                performed_count = sum(1 for _, p in window if p)
                assert tracker.performed_fraction() == pytest.approx(
                    performed_count / len(window)
                )

    def test_zero_exact_when_performed_entries_evict(self):
        """The paper's '0 if SQ empty' rule is count-driven, not
        float-driven: it stays exactly 0 after arbitrary churn."""
        tracker = ProviderSatisfactionTracker(memory=3)
        tracker.record_proposal(0.9, performed=True)
        for _ in range(3):
            tracker.record_proposal(0.1, performed=False)
        assert tracker.satisfaction() == 0.0

    def test_reset_clears_rolling_state(self):
        tracker = ProviderSatisfactionTracker(memory=4)
        for _ in range(12):
            tracker.record_proposal(0.8, performed=True)
        tracker.reset()
        assert tracker.observations == 0
        assert tracker.satisfaction() == 0.5  # neutral again
        tracker.record_proposal(0.0, performed=True)
        assert tracker.satisfaction() == 0.5  # unit of intention 0
        assert tracker.performed_fraction() == 1.0
