"""Unit tests for the SbQA policy (KnBest + SQLB pipeline)."""

import pytest

from repro.core.policy import AllocationContext
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.rng import RandomStream
from repro.des.tracing import TraceRecorder


def make_policy(k=4, kn=2, omega="adaptive", epsilon=1.0, seed=11):
    return SbQAPolicy(SbQAConfig(k=k, kn=kn, omega=omega, epsilon=epsilon), RandomStream(seed))


class TestConfig:
    def test_defaults_valid(self):
        config = SbQAConfig()
        assert 1 <= config.kn <= config.k

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            SbQAConfig(k=0, kn=1)

    def test_kn_validation(self):
        with pytest.raises(ValueError, match="kn must satisfy"):
            SbQAConfig(k=5, kn=6)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            SbQAConfig(epsilon=0.0)


class TestSelection:
    def test_allocates_min_n_kn(self, factory):
        providers = [factory.provider() for _ in range(10)]
        consumer = factory.consumer(preferences={p.participant_id: 0.5 for p in providers})
        query = factory.query(consumer, n_results=3)
        policy = make_policy(k=6, kn=4)
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        assert len(decision.allocated) == 3  # min(n=3, kn=4)
        assert len(decision.informed) == 4

    def test_allocation_capped_by_kn(self, factory):
        providers = [factory.provider() for _ in range(10)]
        consumer = factory.consumer(preferences={p.participant_id: 0.5 for p in providers})
        query = factory.query(consumer, n_results=8)
        policy = make_policy(k=6, kn=2)
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        assert len(decision.allocated) == 2  # min(n=8, kn=2)

    def test_allocated_are_best_scored(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(4)]
        # consumer loves p0 and p1, dislikes p2, p3
        consumer = factory.consumer(
            preferences={"p0": 0.9, "p1": 0.8, "p2": -0.9, "p3": -0.8}
        )
        query = factory.query(consumer, n_results=2)
        # k = kn = 4: no sampling noise, pure scoring
        policy = make_policy(k=4, kn=4, omega=0.0)  # omega 0: consumer only
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        assert sorted(p.participant_id for p in decision.allocated) == ["p0", "p1"]

    def test_omega_one_follows_provider_intentions(self, factory):
        providers = [
            factory.provider("eager", preferences={"c0": 0.9}),
            factory.provider("averse", preferences={"c0": -0.9}),
        ]
        consumer = factory.consumer("c0", preferences={"eager": 0.5, "averse": 0.5})
        query = factory.query(consumer, n_results=1)
        policy = make_policy(k=2, kn=2, omega=1.0)
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        assert decision.allocated[0].participant_id == "eager"

    def test_decision_carries_intentions_scores_omegas(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(3)]
        consumer = factory.consumer(preferences={p.participant_id: 0.4 for p in providers})
        query = factory.query(consumer, n_results=1)
        policy = make_policy(k=3, kn=3)
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        informed_ids = {p.participant_id for p in decision.informed}
        assert set(decision.consumer_intentions) == informed_ids
        assert set(decision.provider_intentions) == informed_ids
        assert set(decision.scores) == informed_ids
        assert set(decision.omegas) == informed_ids

    def test_consult_messages_counted(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(5)]
        consumer = factory.consumer(preferences={p.participant_id: 0.4 for p in providers})
        query = factory.query(consumer, n_results=1)
        policy = make_policy(k=5, kn=3)
        decision = policy.select(query, providers, AllocationContext(now=0.0))
        # 2 per consulted provider + 2 for the consumer
        assert decision.consult_messages == 2 * 3 + 2

    def test_adaptive_omega_reflects_pair_satisfaction(self, factory):
        provider = factory.provider("p0", preferences={"c0": 0.5})
        # make the provider very dissatisfied: proposals never performed
        provider.tracker.record_proposal(0.5, performed=False)
        consumer = factory.consumer("c0", preferences={"p0": 0.5})
        consumer.tracker.record_query(0.9)
        query = factory.query(consumer, n_results=1)
        policy = make_policy(k=1, kn=1, omega="adaptive")
        decision = policy.select(query, [provider], AllocationContext(now=0.0))
        # consumer sat 0.9, provider sat 0.0 -> omega = 0.95
        assert decision.omegas["p0"] == pytest.approx(0.95)

    def test_trace_records_pipeline_stages(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(3)]
        consumer = factory.consumer(preferences={p.participant_id: 0.4 for p in providers})
        query = factory.query(consumer, n_results=1)
        trace = TraceRecorder()
        policy = make_policy(k=3, kn=2)
        policy.select(query, providers, AllocationContext(now=0.0, trace=trace))
        assert trace.by_category("knbest")
        assert trace.by_category("sqlb")

    def test_describe_lists_parameters(self):
        policy = make_policy(k=7, kn=3, omega=0.25)
        described = policy.describe()
        assert described["k"] == 7
        assert described["kn"] == 3
        assert "FixedOmega" in described["omega"]

    def test_consults_participants_flag(self):
        assert SbQAPolicy.consults_participants is True

    def test_deterministic_given_seed(self, factory):
        providers = [factory.provider(f"p{i}") for i in range(20)]
        consumer = factory.consumer(preferences={p.participant_id: 0.4 for p in providers})
        query = factory.query(consumer, n_results=2)
        d1 = make_policy(k=5, kn=3, seed=9).select(
            query, providers, AllocationContext(now=0.0)
        )
        d2 = make_policy(k=5, kn=3, seed=9).select(
            query, providers, AllocationContext(now=0.0)
        )
        assert [p.participant_id for p in d1.allocated] == [
            p.participant_id for p in d2.allocated
        ]
