"""Unit tests for the intention models."""

import pytest

from repro.core.intentions import (
    LoadOnlyIntentions,
    PreferenceIntentions,
    PreferenceUtilizationIntentions,
    ProviderPreferenceIntentions,
    ReputationBlendIntentions,
    ResponseTimeIntentions,
    clamp_intention,
    make_consumer_intention_model,
    make_provider_intention_model,
)


class TestClamp:
    def test_in_range_untouched(self):
        assert clamp_intention(0.3) == 0.3

    def test_clamps_both_sides(self):
        assert clamp_intention(1.7) == 1.0
        assert clamp_intention(-1.7) == -1.0


class TestConsumerModels:
    def _pair(self, factory, pref=0.6):
        provider = factory.provider("p1")
        consumer = factory.consumer("c1", preferences={"p1": pref})
        query = factory.query(consumer)
        return consumer, query, provider

    def test_preference_model_returns_static_preference(self, factory):
        consumer, query, provider = self._pair(factory, pref=0.6)
        assert PreferenceIntentions().intention(consumer, query, provider) == 0.6

    def test_preference_model_uses_default_for_unknown(self, factory):
        provider = factory.provider("p9")
        consumer = factory.consumer("c1", default_preference=-0.2)
        query = factory.query(consumer)
        assert PreferenceIntentions().intention(consumer, query, provider) == -0.2

    def test_blend_neutral_reputation_keeps_preference_direction(self, factory):
        consumer, query, provider = self._pair(factory, pref=0.6)
        # unknown provider -> reputation 0.5 -> performance term 0
        value = ReputationBlendIntentions(alpha=0.5).intention(consumer, query, provider)
        assert value == pytest.approx(0.3)  # 0.5 * 0.6 + 0.5 * 0

    def test_blend_rewards_fast_providers(self, factory):
        consumer, query, provider = self._pair(factory, pref=0.0)
        consumer.observe_response_time("p1", 1.0)  # very fast vs rt_reference=60
        fast = ReputationBlendIntentions(alpha=1.0).intention(consumer, query, provider)
        consumer.observe_response_time("p1", 10_000.0)  # now very slow
        consumer.observe_response_time("p1", 10_000.0)
        slow = ReputationBlendIntentions(alpha=1.0).intention(consumer, query, provider)
        assert fast > 0.8
        assert slow < fast

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            ReputationBlendIntentions(alpha=1.5)

    def test_response_time_only_ignores_preference(self, factory):
        consumer, query, provider = self._pair(factory, pref=-1.0)
        value = ResponseTimeIntentions().intention(consumer, query, provider)
        assert value == pytest.approx(0.0)  # neutral reputation, pref ignored

    def test_results_always_within_range(self, factory):
        consumer, query, provider = self._pair(factory, pref=1.0)
        consumer.observe_response_time("p1", 0.0)
        for model in (
            PreferenceIntentions(),
            ReputationBlendIntentions(0.5),
            ResponseTimeIntentions(),
        ):
            assert -1.0 <= model.intention(consumer, query, provider) <= 1.0


class TestProviderModels:
    def _pair(self, factory, pref=0.4, capacity=1.0):
        provider = factory.provider("p1", capacity=capacity, preferences={"c1": pref})
        consumer = factory.consumer("c1")
        query = factory.query(consumer, demand=30.0)
        return provider, query

    def test_preference_model(self, factory):
        provider, query = self._pair(factory, pref=0.4)
        assert ProviderPreferenceIntentions().intention(provider, query) == 0.4

    def test_blend_idle_provider_wants_work(self, factory):
        provider, query = self._pair(factory, pref=0.0)
        # idle: utilization 0 -> load term +1
        value = PreferenceUtilizationIntentions(beta=0.5).intention(provider, query)
        assert value == pytest.approx(0.5)

    def test_blend_saturated_provider_declines(self, factory):
        provider, query = self._pair(factory, pref=0.0)
        for _ in range(10):  # 10 x 30s of work saturates the 120s horizon
            provider.execute(_record_for(provider, query))
        value = PreferenceUtilizationIntentions(beta=0.5).intention(provider, query)
        assert value == pytest.approx(-0.5)

    def test_beta_validation(self):
        with pytest.raises(ValueError, match="beta"):
            PreferenceUtilizationIntentions(beta=-0.1)

    def test_load_only_ignores_preference(self, factory):
        provider, query = self._pair(factory, pref=-1.0)
        assert LoadOnlyIntentions().intention(provider, query) == pytest.approx(1.0)

    def test_topic_preference_fallback(self, factory):
        provider = factory.provider("p1", topic_preferences={"astro": 0.7})
        consumer = factory.consumer("c1")
        query = factory.query(consumer, topic="astro")
        assert ProviderPreferenceIntentions().intention(provider, query) == 0.7


class TestFactories:
    def test_consumer_strings(self):
        assert isinstance(
            make_consumer_intention_model("preference"), PreferenceIntentions
        )
        assert isinstance(
            make_consumer_intention_model("reputation-blend"), ReputationBlendIntentions
        )
        assert isinstance(
            make_consumer_intention_model("response-time-only"), ResponseTimeIntentions
        )

    def test_consumer_passthrough(self):
        model = ReputationBlendIntentions(0.7)
        assert make_consumer_intention_model(model) is model

    def test_consumer_unknown(self):
        with pytest.raises(ValueError, match="unknown consumer"):
            make_consumer_intention_model("bogus")
        with pytest.raises(TypeError, match="cannot build"):
            make_consumer_intention_model(42)

    def test_provider_strings(self):
        assert isinstance(
            make_provider_intention_model("preference"), ProviderPreferenceIntentions
        )
        assert isinstance(
            make_provider_intention_model("preference-utilization"),
            PreferenceUtilizationIntentions,
        )
        assert isinstance(make_provider_intention_model("load-only"), LoadOnlyIntentions)

    def test_provider_unknown(self):
        with pytest.raises(ValueError, match="unknown provider"):
            make_provider_intention_model("bogus")
        with pytest.raises(TypeError, match="cannot build"):
            make_provider_intention_model(3.14)


def _record_for(provider, query):
    """Minimal allocation record for direct provider.execute tests."""
    from repro.system.query import AllocationRecord

    return AllocationRecord(
        query=query, decided_at=provider.sim.now, allocated=[provider]
    )
