"""The fast engine's contract: bit-identical results, fewer events.

Three layers of evidence:

* decision-level: ``SbQAPolicy.select_fast`` reproduces ``select``'s
  allocation, scores, omegas and intentions exactly;
* run-level: full experiment digests (``ExperimentResult.to_json``)
  are byte-identical between ``engine="fast"`` and ``engine="event"``
  across latency regimes, churn, crashes and policies -- while the
  fast engine fires strictly fewer scheduler events when the dispatch
  collapse is active;
* preset-level: every shipped scenario preset, scaled down, produces
  byte-identical ``ExperimentResult`` digests under both engines, and
  the fused SoA kernel matches the scalar oracle backend digest for
  digest (the engine-level face of the tests/oracle/ contract).
"""

import json

import pytest

from repro.api.builder import Experiment
from repro.api.presets import available_scenarios
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.core.engine import (
    ENGINE_MODES,
    FastMediator,
    FastNetwork,
    make_mediator,
    make_network,
    resolve_engine,
)
from repro.core.mediator import Mediator
from repro.core.policy import AllocationContext
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.network import FixedLatency, Network, UniformLatency, ZeroLatency
from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once, wire_run
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query
from repro.system.registry import SystemRegistry

def run_digest(engine, **overrides):
    """One short session run's JSON digest under the given engine."""
    builder = (
        Experiment.builder()
        .named("engine-parity")
        .seed(20090301)
        .duration(overrides.pop("duration", 300.0))
        .providers(overrides.pop("providers", 40))
        .engine(engine)
    )
    latency = overrides.pop("latency", None)
    if latency is not None:
        builder.latency(*latency)
    for policy in overrides.pop("policies", [("sbqa", {})]):
        name, params = policy
        builder.policy(name, **params)
    if overrides.pop("autonomous", False):
        builder.autonomous()
    failures = overrides.pop("failures", None)
    if failures is not None:
        builder.failures(**failures)
    assert not overrides, f"unused overrides: {overrides}"
    return Session(builder.build()).run(keep_runs=False).to_json()


class TestResolveEngine:
    def test_modes(self):
        assert set(ENGINE_MODES) == {"fast", "event"}
        assert resolve_engine("FAST") == "fast"
        assert resolve_engine("event") == "event"

    def test_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")

    def test_factories(self):
        sim = Simulator()
        assert isinstance(make_network("fast", sim), FastNetwork)
        assert type(make_network("event", sim)) is Network

    def test_config_validates_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentConfig(engine="warp")
        assert ExperimentConfig().engine == "fast"
        assert ExperimentConfig(engine="EVENT").engine == "event"


def build_micro_system(n_providers=60, seed=11, latency=None):
    sim = Simulator()
    network = Network(sim, latency or ZeroLatency())
    registry = SystemRegistry()
    stream = RandomStream(seed)
    providers = [
        Provider(
            sim,
            network,
            participant_id=f"p{i:02d}",
            capacity=stream.uniform(0.5, 2.0),
            preferences={"c0": stream.uniform(-1.0, 1.0)},
        )
        for i in range(n_providers)
    ]
    for p in providers:
        registry.add_provider(p)
    consumer = Consumer(
        sim,
        network,
        participant_id="c0",
        preferences={p.participant_id: stream.uniform(-1.0, 1.0) for p in providers},
    )
    registry.add_consumer(consumer)
    return sim, network, registry, consumer, providers


class TestSelectFastParity:
    @pytest.mark.parametrize("omega", ["adaptive", 0.0, 0.3, 1.0])
    def test_decision_equals_select(self, omega):
        """select_fast reproduces select bit-for-bit, field by field."""
        sim, network, registry, consumer, providers = build_micro_system()
        config = SbQAConfig(k=15, kn=7, omega=omega)
        # Same stream seed => both policies draw the same stage-1 sample.
        slow = SbQAPolicy(config, RandomStream(3))
        fast = SbQAPolicy(config, RandomStream(3))
        ctx = AllocationContext(now=0.0, trace=NULL_RECORDER)
        for round_index in range(30):
            query = Query(
                consumer=consumer,
                topic="c0",
                service_demand=5.0,
                n_results=2,
                issued_at=0.0,
            )
            a = slow.select(query, providers, ctx)
            b = fast.select_fast(query, providers, ctx)
            assert [p.participant_id for p in a.allocated] == [
                p.participant_id for p in b.allocated
            ]
            assert [p.participant_id for p in a.informed] == [
                p.participant_id for p in b.informed
            ]
            assert a.scores == b.scores
            assert a.omegas == b.omegas
            assert a.consumer_intentions == b.consumer_intentions
            assert a.provider_intentions == b.provider_intentions
            assert a.consult_messages == b.consult_messages
            assert a.metadata == b.metadata
            # Keep the state evolving so later rounds differ: record the
            # proposals of the *reference* decision on both sides' state.
            for p in a.informed:
                p.record_proposal(
                    a.provider_intentions[p.participant_id],
                    p in a.allocated,
                )
            consumer.record_query_satisfaction(0.5)

    def test_select_fast_handles_single_candidate(self):
        sim, network, registry, consumer, providers = build_micro_system(
            n_providers=1
        )
        policy = SbQAPolicy(SbQAConfig(k=5, kn=2), RandomStream(1))
        ctx = AllocationContext(now=0.0, trace=NULL_RECORDER)
        query = Query(
            consumer=consumer,
            topic="c0",
            service_demand=5.0,
            n_results=3,
            issued_at=0.0,
        )
        decision = policy.select_fast(query, providers, ctx)
        assert len(decision.allocated) == 1
        assert not decision.is_failure


class TestRunDigestParity:
    """Byte-identical ExperimentResult digests, fast vs event."""

    def test_random_latency(self):
        assert run_digest("fast") == run_digest("event")

    def test_fixed_latency_collapse_path(self):
        fixed = {"latency": (0.05, 0.05)}
        assert run_digest("fast", **fixed) == run_digest("event", **fixed)

    def test_zero_latency(self):
        zero = {"latency": (0.0, 0.0)}
        assert run_digest("fast", **zero) == run_digest("event", **zero)

    def test_mixed_scenario(self):
        mixed = {
            "latency": (0.05, 0.05),
            "autonomous": True,
            "failures": {"mttf": 1500.0, "repair_time": 60.0, "result_timeout": 240.0},
            "policies": [("sbqa", {}), ("capacity", {})],
        }
        assert run_digest("fast", **mixed) == run_digest("event", **mixed)

    def test_fixed_omega_and_baselines(self):
        spec = {
            "policies": [
                ("sbqa", {"omega": 0.3, "kn": 4}),
                ("economic", {}),
                ("round-robin", {}),
            ],
        }
        assert run_digest("fast", **spec) == run_digest("event", **spec)

    @pytest.mark.parametrize(
        "policy",
        [
            "sbqa",
            "capacity",
            "economic",
            "boinc-shares",
            "random",
            "round-robin",
            "shortest-queue",
        ],
    )
    def test_every_policy_covered_on_the_collapse_path(self, policy):
        """The universal-select_fast claim: engine="fast" produces
        byte-identical digests for *every* policy, on the deterministic-
        latency path where the collapsed dispatch and the batched
        result drain are both active."""
        spec = {
            "latency": (0.05, 0.05),
            "duration": 200.0,
            "policies": [(policy, {})],
        }
        assert run_digest("fast", **spec) == run_digest("event", **spec)

    def test_aggressive_crashes_hit_the_drain_cancellation(self):
        """Crashes cancel pending completions; with the batched result
        drain those are per-member cancellations inside shared drain
        events, which must shed exactly the crashed provider's result
        and nothing else."""
        spec = {
            "latency": (0.05, 0.05),
            "duration": 250.0,
            "failures": {"mttf": 250.0, "repair_time": 20.0, "result_timeout": 120.0},
            "policies": [("sbqa", {}), ("capacity", {})],
        }
        assert run_digest("fast", **spec) == run_digest("event", **spec)

    def test_homogeneous_replicas_batch_into_one_drain(self):
        """Equal-capacity idle providers serving the same allocation
        finish at the same instant, so their completion/delivery pairs
        collapse into a single two-hop drain -- results, clocks and
        counters must still match the event engine exactly."""
        from repro.workloads.arrivals import DeterministicArrivals
        from repro.workloads.queries import FixedDemand

        def run(engine):
            from repro.system.query import reset_query_counter

            reset_query_counter()
            sim = Simulator()
            network = (FastNetwork if engine == "fast" else Network)(
                sim, FixedLatency(0.05)
            )
            registry = SystemRegistry()
            stream = RandomStream(23)
            providers = [
                Provider(
                    sim,
                    network,
                    participant_id=f"p{i:02d}",
                    capacity=1.0,  # homogeneous: replicas share finishes
                    preferences={"c0": stream.uniform(-1.0, 1.0)},
                )
                for i in range(10)
            ]
            for p in providers:
                registry.add_provider(p)
            consumer = Consumer(
                sim,
                network,
                participant_id="c0",
                default_n_results=3,
                preferences={
                    p.participant_id: stream.uniform(-1.0, 1.0) for p in providers
                },
            )
            registry.add_consumer(consumer)
            policy = SbQAPolicy(SbQAConfig(k=8, kn=5), RandomStream(9))
            mediator = make_mediator(
                engine, sim, network, registry, policy, keep_records=True
            )
            consumer.attach_mediator(mediator)
            arrivals = DeterministicArrivals(
                sim, consumer, FixedDemand(6.0), interval=2.0, horizon=80.0
            )
            arrivals.start()
            sim.run()
            outcome = [
                (
                    tuple(r.allocated_ids),
                    r.completed_at,
                    tuple(
                        (res.provider_id, res.started_at, res.finished_at)
                        for res in r.results
                    ),
                )
                for r in mediator.records
            ]
            return (
                outcome,
                sim.events_fired,
                network.messages_sent,
                network.messages_delivered,
                consumer.stats.queries_completed,
                consumer.stats.response_time_sum,
            )

        fast = run("fast")
        event = run("event")
        assert fast[0] == event[0]  # records, clocks, per-result spans
        assert fast[2:] == event[2:]  # message + completion accounting
        assert fast[1] < event[1]  # strictly fewer scheduler events

    def test_collapse_fires_fewer_events(self):
        """Under deterministic latency the fast engine collapses each
        dispatch into one event; clock results stay identical."""
        fired = {}
        summaries = {}
        for engine in ("fast", "event"):
            config = ExperimentConfig(
                name="events",
                duration=200.0,
                engine=engine,
                latency_low=0.05,
                latency_high=0.05,
            )
            live = wire_run(config, PolicySpec(name="sbqa"))
            result = live.finalize()
            fired[engine] = live.sim.events_fired
            summaries[engine] = json.dumps(result.summary.as_dict(), sort_keys=True)
        assert summaries["fast"] == summaries["event"]
        assert fired["fast"] < fired["event"]

    def test_deterministic_arrivals_fixed_latency_parity(self):
        """Regression: deterministic arrival grids make same-timestamp
        event ties systematic (arrival interval a multiple of the fixed
        latency), so the collapsed dispatch must be inserted into the
        heap at the same moments as the faithful chain -- tie-breaking
        is insertion order.  An eagerly-scheduled collapse diverged
        here at the 17th allocation."""
        from repro.workloads.arrivals import DeterministicArrivals
        from repro.workloads.queries import FixedDemand

        def allocations(engine):
            sim = Simulator()
            network = (FastNetwork if engine == "fast" else Network)(
                sim, FixedLatency(0.05)
            )
            registry = SystemRegistry()
            stream = RandomStream(17)
            providers = [
                Provider(
                    sim,
                    network,
                    participant_id=f"p{i:02d}",
                    capacity=stream.uniform(0.5, 2.0),
                    preferences={"c0": stream.uniform(-1.0, 1.0)},
                )
                for i in range(8)
            ]
            for p in providers:
                registry.add_provider(p)
            consumer = Consumer(
                sim,
                network,
                participant_id="c0",
                preferences={
                    p.participant_id: stream.uniform(-1.0, 1.0)
                    for p in providers
                },
            )
            registry.add_consumer(consumer)
            policy = SbQAPolicy(SbQAConfig(k=6, kn=3), RandomStream(5))
            mediator = make_mediator(
                engine, sim, network, registry, policy, keep_records=True
            )
            consumer.attach_mediator(mediator)
            arrivals = DeterministicArrivals(
                sim, consumer, FixedDemand(12.0), interval=0.15, horizon=30.0
            )
            arrivals.start()
            sim.run()
            return [tuple(r.allocated_ids) for r in mediator.records]

        assert allocations("fast") == allocations("event")

    def test_trace_runs_are_identical_and_traced(self):
        """With tracing on, the fast engine falls back to the faithful
        paths and records the same trace as the event engine."""
        from repro.system.query import reset_query_counter

        traces = {}
        summaries = {}
        for engine in ("fast", "event"):
            reset_query_counter()  # qids appear in trace payloads
            recorder = TraceRecorder(enabled=True)
            config = ExperimentConfig(
                name="traced", duration=60.0, engine=engine
            )
            result = run_once(config, PolicySpec(name="sbqa"), trace=recorder)
            traces[engine] = [
                (e.time, e.category, e.message) for e in recorder.events
            ]
            summaries[engine] = json.dumps(result.summary.as_dict(), sort_keys=True)
        assert summaries["fast"] == summaries["event"]
        assert traces["fast"] == traces["event"]
        assert traces["fast"]  # something was actually recorded


class TestLazyTracing:
    """Satellite: no trace payload is built when nothing listens."""

    class ExplodingRecorder(TraceRecorder):
        """A disabled recorder whose record() must never be reached."""

        def __init__(self):
            super().__init__(enabled=False)

        def record(self, *args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("record() called despite enabled=False")

    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_disabled_recorder_is_never_called(self, engine):
        sim, network, registry, consumer, providers = build_micro_system()
        if engine == "fast":
            network = FastNetwork(sim, ZeroLatency())
        policy = SbQAPolicy(SbQAConfig(k=10, kn=5), RandomStream(2))
        mediator = make_mediator(
            engine,
            sim,
            network,
            registry,
            policy,
            trace=self.ExplodingRecorder(),
        )
        consumer.attach_mediator(mediator)
        for _ in range(5):
            query = Query(
                consumer=consumer,
                topic="c0",
                service_demand=5.0,
                n_results=1,
                issued_at=sim.now,
            )
            record = mediator.mediate(query)
            assert not record.is_failure
        sim.run()

    def test_failure_path_is_guarded_too(self):
        sim = Simulator()
        network = Network(sim)
        registry = SystemRegistry()
        consumer = Consumer(sim, network, participant_id="c0")
        registry.add_consumer(consumer)
        mediator = Mediator(
            sim,
            network,
            registry,
            SbQAPolicy(SbQAConfig(), RandomStream(1)),
            trace=self.ExplodingRecorder(),
        )
        query = Query(
            consumer=consumer,
            topic="t",
            service_demand=1.0,
            n_results=1,
            issued_at=0.0,
        )
        record = mediator.mediate(query)
        assert record.is_failure


class TestFastNetworkFallback:
    def test_unknown_kind_uses_envelope_and_fails_loudly(self):
        from repro.des.entity import RecordingEntity

        sim = Simulator()
        network = FastNetwork(sim, ZeroLatency())
        a = RecordingEntity(sim, "a")
        b = RecordingEntity(sim, "b")
        network.send("custom-kind", a, b, payload={"x": 1})
        sim.run()
        assert b.payloads() == [{"x": 1}]
        assert network.messages_sent == 1
        assert network.messages_delivered == 1

    def test_constant_delay_detection(self):
        assert ZeroLatency().constant_delay() == 0.0
        assert FixedLatency(0.25).constant_delay() == 0.25
        assert UniformLatency(0.1, 0.1, RandomStream(1)).constant_delay() == 0.1
        assert UniformLatency(0.1, 0.2, RandomStream(1)).constant_delay() is None

    def test_fast_mediator_disables_collapse_for_random_latency(self):
        sim = Simulator()
        network = FastNetwork(sim, UniformLatency(0.1, 0.2, RandomStream(1)))
        registry = SystemRegistry()
        mediator = FastMediator(
            sim, network, registry, SbQAPolicy(SbQAConfig(), RandomStream(1))
        )
        assert mediator._constant_one_way is None


class TestScenarioPresetParity:
    """Every shipped scenario preset, fast vs event, digest-identical.

    A mutation-style smoke over the whole preset surface (replacing the
    earlier hand-picked three-grid ablation set): each preset exercises
    a different combination of autonomy, focal probes, policies and
    population knobs, so a fused-kernel bug that only bites one regime
    (e.g. the focal consumer's ReputationBlend column, or scenario 5's
    load-only intentions) fails its own test case."""

    DURATION = 120.0
    PROVIDERS = 24

    def _preset_digest(self, scenario_id, engine):
        from repro.api.presets import scenario_spec

        spec = scenario_spec(
            scenario_id, duration=self.DURATION, n_providers=self.PROVIDERS
        )
        data = spec.to_dict()
        data["engine"] = engine
        return (
            Session(ExperimentSpec.from_dict(data)).run(keep_runs=False).to_json()
        )

    @pytest.mark.parametrize("scenario_id", available_scenarios())
    def test_preset_digest_parity(self, scenario_id):
        assert self._preset_digest(scenario_id, "fast") == self._preset_digest(
            scenario_id, "event"
        )


class TestScoringBackendParity:
    """The fused SoA kernel vs the scalar oracle, digest-identical.

    ``SBQA_SCORING_BACKEND=scalar`` (resolved once into
    ``repro.core.scoring._DEFAULT_BACKEND``) pins the fast engine to the
    select_fast/_commit reference path; the default numpy backend turns
    the fused kernel on.  Both must produce byte-identical run digests
    -- the engine-level form of the contract the oracle suite
    (tests/oracle/) replays under randomized workloads."""

    def _backend_digest(self, backend, monkeypatch, **overrides):
        import repro.core.scoring as scoring

        monkeypatch.setattr(scoring, "_DEFAULT_BACKEND", backend)
        return run_digest("fast", **overrides)

    def test_scalar_and_fused_digests_match(self, monkeypatch):
        mixed = {
            "latency": (0.05, 0.05),
            "autonomous": True,
            "failures": {"mttf": 1500.0, "repair_time": 60.0, "result_timeout": 240.0},
            "policies": [("sbqa", {}), ("capacity", {})],
        }
        scalar = self._backend_digest("python", monkeypatch, **mixed)
        fused = self._backend_digest("numpy", monkeypatch, **mixed)
        assert scalar == fused

    def test_fixed_omega_backends_match(self, monkeypatch):
        spec = {
            "latency": (0.05, 0.05),
            "policies": [("sbqa", {"omega": 0.3, "kn": 4})],
        }
        scalar = self._backend_digest("python", monkeypatch, **spec)
        fused = self._backend_digest("numpy", monkeypatch, **spec)
        assert scalar == fused

    def test_fused_gate_follows_backend(self, monkeypatch):
        import repro.core.scoring as scoring

        sim = Simulator()
        network = FastNetwork(sim, FixedLatency(0.05))
        registry = SystemRegistry()
        policy = SbQAPolicy(SbQAConfig(), RandomStream(1))
        monkeypatch.setattr(scoring, "_DEFAULT_BACKEND", "python")
        scalar_mediator = FastMediator(sim, network, registry, policy)
        assert scalar_mediator._fused_columns is None
        monkeypatch.setattr(scoring, "_DEFAULT_BACKEND", "numpy")
        fused_mediator = FastMediator(sim, network, registry, policy)
        assert fused_mediator._fused_columns is not None
