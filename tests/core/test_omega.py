"""Unit and property tests for the balance parameter (Equation 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.omega import (
    AdaptiveOmega,
    FixedOmega,
    adaptive_omega,
    make_omega_policy,
)

sats = st.floats(min_value=0.0, max_value=1.0)


class TestAdaptiveOmega:
    def test_balanced_satisfaction_gives_half(self):
        assert adaptive_omega(0.5, 0.5) == 0.5
        assert adaptive_omega(0.9, 0.9) == 0.5

    def test_happier_consumer_raises_omega(self):
        """If the consumer is more satisfied, listen to the provider."""
        assert adaptive_omega(0.9, 0.1) == pytest.approx(0.9)

    def test_happier_provider_lowers_omega(self):
        assert adaptive_omega(0.1, 0.9) == pytest.approx(0.1)

    def test_extremes(self):
        assert adaptive_omega(1.0, 0.0) == 1.0
        assert adaptive_omega(0.0, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="consumer"):
            adaptive_omega(1.5, 0.5)
        with pytest.raises(ValueError, match="provider"):
            adaptive_omega(0.5, -0.5)

    @given(sats, sats)
    def test_always_in_unit_interval(self, cs, ps):
        assert 0.0 <= adaptive_omega(cs, ps) <= 1.0

    @given(sats, sats)
    def test_antisymmetric_around_half(self, cs, ps):
        assert adaptive_omega(cs, ps) + adaptive_omega(ps, cs) == pytest.approx(1.0)

    @given(sats, sats, sats)
    def test_monotone_in_consumer_satisfaction(self, a, b, ps):
        lo, hi = sorted((a, b))
        assert adaptive_omega(lo, ps) <= adaptive_omega(hi, ps)


class TestPolicies:
    def test_adaptive_policy_applies_equation2(self):
        policy = AdaptiveOmega()
        assert policy.omega(0.8, 0.2) == pytest.approx(0.8)
        assert policy.is_adaptive

    def test_fixed_policy_ignores_satisfaction(self):
        policy = FixedOmega(0.3)
        assert policy.omega(0.9, 0.1) == 0.3
        assert policy.omega(0.1, 0.9) == 0.3
        assert not policy.is_adaptive

    def test_fixed_validation(self):
        with pytest.raises(ValueError, match="omega"):
            FixedOmega(1.5)


class TestFactory:
    def test_passthrough(self):
        policy = FixedOmega(0.4)
        assert make_omega_policy(policy) is policy

    def test_adaptive_string(self):
        assert make_omega_policy("adaptive").is_adaptive
        assert make_omega_policy("ADAPTIVE").is_adaptive

    def test_number_becomes_fixed(self):
        policy = make_omega_policy(0.25)
        assert isinstance(policy, FixedOmega)
        assert policy.value == 0.25

    def test_int_zero_and_one(self):
        assert make_omega_policy(0).value == 0.0
        assert make_omega_policy(1).value == 1.0

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown omega"):
            make_omega_policy("sometimes")

    def test_bool_rejected(self):
        with pytest.raises(TypeError, match="cannot build"):
            make_omega_policy(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError, match="cannot build"):
            make_omega_policy([0.5])
