"""Scoring parity: the batch kernel vs the scalar Definition-3 kernel.

The fast engine ranks every consulted provider through
:func:`repro.core.scoring.score_providers_batch`; these tests pin the
*scalar* backend to :func:`~repro.core.scoring.sqlb_score` with exact
float equality across every branch boundary of Definition 3 and a
randomized grid, and hold the numpy backend (the default when numpy is
importable) to within one ulp of the scalar oracle.
"""

import itertools
import os
import random

import pytest

from repro.core.scoring import (
    DEFAULT_EPSILON,
    SCORING_BACKEND_ENV,
    score_providers_batch,
    sqlb_score,
)

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    HAVE_NUMPY = False

#: Branch boundaries of Definition 3: intentions at the +/-1 extremes,
#: exactly 0 (the positive branch needs strict positivity), a denormal
#: nudge above 0, and interior points of both signs.
BOUNDARY_INTENTIONS = (-1.0, -0.5, 0.0, 5e-324, 1e-12, 0.5, 1.0)

#: Omega at its ends (provider-only / consumer-only ranking) + interior.
BOUNDARY_OMEGAS = (0.0, 0.25, 0.5, 1.0)

#: Epsilon at the paper default and near its lower legality edge.
BOUNDARY_EPSILONS = (1e-12, 0.5, DEFAULT_EPSILON, 2.0)


class TestBranchBoundaries:
    def test_exact_equality_over_the_boundary_grid(self):
        """Every (PI, CI, omega, eps) boundary combination, bit-equal."""
        for epsilon in BOUNDARY_EPSILONS:
            triples = list(
                itertools.product(
                    BOUNDARY_INTENTIONS, BOUNDARY_INTENTIONS, BOUNDARY_OMEGAS
                )
            )
            pis = [t[0] for t in triples]
            cis = [t[1] for t in triples]
            omegas = [t[2] for t in triples]
            batch = score_providers_batch(
                pis, cis, omegas, epsilon, backend="python"
            )
            for (pi, ci, omega), got in zip(triples, batch):
                expected = sqlb_score(pi, ci, omega, epsilon)
                assert got == expected, (pi, ci, omega, epsilon)

    def test_positive_branch_needs_both_strictly_positive(self):
        """PI or CI exactly 0 falls to the negative branch, like scalar."""
        scores = score_providers_batch(
            [0.0, 0.5, 0.0], [0.5, 0.0, 0.0], [0.5, 0.5, 0.5]
        )
        assert all(s < 0 for s in scores)

    def test_randomized_grid_exact(self):
        rng = random.Random(20090301)
        pis = [rng.uniform(-1.0, 1.0) for _ in range(500)]
        cis = [rng.uniform(-1.0, 1.0) for _ in range(500)]
        omegas = [rng.random() for _ in range(500)]
        for epsilon in (0.25, DEFAULT_EPSILON, 3.0):
            batch = score_providers_batch(
                pis, cis, omegas, epsilon, backend="python"
            )
            for pi, ci, omega, got in zip(pis, cis, omegas, batch):
                assert got == sqlb_score(pi, ci, omega, epsilon)

    def test_default_backend_within_one_ulp_of_scalar(self):
        """Whatever backend is the default (numpy when importable), it
        must stay within one ulp of the scalar oracle on the boundary
        grid -- the tolerance the differential oracle in tests/oracle/
        enforces end to end."""
        import math

        for epsilon in BOUNDARY_EPSILONS:
            triples = list(
                itertools.product(
                    BOUNDARY_INTENTIONS, BOUNDARY_INTENTIONS, BOUNDARY_OMEGAS
                )
            )
            pis = [t[0] for t in triples]
            cis = [t[1] for t in triples]
            omegas = [t[2] for t in triples]
            batch = score_providers_batch(pis, cis, omegas, epsilon)
            for (pi, ci, omega), got in zip(triples, batch):
                expected = sqlb_score(pi, ci, omega, epsilon)
                assert got == expected or math.isclose(
                    got, expected, rel_tol=1e-15, abs_tol=5e-324
                ), (pi, ci, omega, epsilon)

    def test_empty_batch(self):
        assert score_providers_batch([], [], []) == []


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal lengths"):
            score_providers_batch([0.5], [0.5, 0.5], [0.5])

    def test_epsilon_validated_even_without_validate(self):
        with pytest.raises(ValueError, match="epsilon"):
            score_providers_batch([0.5], [0.5], [0.5], 0.0, validate=False)

    def test_out_of_range_inputs_raise(self):
        with pytest.raises(ValueError, match="provider intention"):
            score_providers_batch([1.5], [0.5], [0.5])
        with pytest.raises(ValueError, match="consumer intention"):
            score_providers_batch([0.5], [-1.5], [0.5])
        with pytest.raises(ValueError, match="omega"):
            score_providers_batch([0.5], [0.5], [1.5])

    def test_validate_false_skips_range_checks(self):
        # Positive in-range values still score identically.
        assert score_providers_batch(
            [0.5], [0.5], [0.5], validate=False
        ) == [sqlb_score(0.5, 0.5, 0.5)]

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            score_providers_batch([0.5], [0.5], [0.5], backend="fortran")


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
class TestNumpyBackend:
    """numpy's ``pow`` may differ from CPython's by the final ulp (libm
    vs npy_pow), which is exactly why the engines' parity-critical
    decision path (``select_fast``) stays pinned to the python loop
    even though the batch default is numpy; parity here is asserted to
    within one ulp."""

    @staticmethod
    def assert_ulp_close(got, expected):
        import math

        assert got == expected or math.isclose(
            got, expected, rel_tol=1e-15, abs_tol=5e-324
        ), (got, expected)

    def test_scalar_parity(self):
        rng = random.Random(7)
        pis = [rng.uniform(-1.0, 1.0) for _ in range(200)]
        cis = [rng.uniform(-1.0, 1.0) for _ in range(200)]
        omegas = [rng.random() for _ in range(200)]
        batch = score_providers_batch(pis, cis, omegas, backend="numpy")
        for pi, ci, omega, got in zip(pis, cis, omegas, batch):
            self.assert_ulp_close(got, sqlb_score(pi, ci, omega))

    def test_boundary_parity(self):
        triples = list(
            itertools.product(
                BOUNDARY_INTENTIONS, BOUNDARY_INTENTIONS, BOUNDARY_OMEGAS
            )
        )
        pis = [t[0] for t in triples]
        cis = [t[1] for t in triples]
        omegas = [t[2] for t in triples]
        numpy_scores = score_providers_batch(pis, cis, omegas, backend="numpy")
        python_scores = score_providers_batch(pis, cis, omegas, backend="python")
        for got, expected in zip(numpy_scores, python_scores):
            self.assert_ulp_close(got, expected)

    def test_returns_plain_floats(self):
        scores = score_providers_batch([0.5], [0.5], [0.5], backend="numpy")
        assert type(scores[0]) is float

    def test_env_flag_selects_backend_at_import(self):
        """The env switch is resolved once at import (hot path), so it
        is exercised in a fresh interpreter."""
        import subprocess
        import sys

        code = (
            "from repro.core.scoring import _DEFAULT_BACKEND, "
            "score_providers_batch\n"
            "assert _DEFAULT_BACKEND == 'numpy', _DEFAULT_BACKEND\n"
            "print(score_providers_batch([0.5], [0.5], [0.5])[0])\n"
        )
        from pathlib import Path

        import repro

        env = dict(os.environ, **{SCORING_BACKEND_ENV: "numpy"})
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode == 0, out.stderr
        self.assert_ulp_close(float(out.stdout), sqlb_score(0.5, 0.5, 0.5))

    def test_engine_select_path_is_env_immune(self):
        """select_fast pins backend='python': the fast/event parity
        contract must hold whatever SBQA_SCORING_BACKEND says."""
        import inspect

        from repro.core.sbqa import SbQAPolicy

        assert 'backend="python"' in inspect.getsource(SbQAPolicy.select_fast)
