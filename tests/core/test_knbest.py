"""Unit and property tests for the KnBest selection strategy [11]."""

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knbest import KnBestSelector
from repro.des.rng import RandomStream


@dataclass(frozen=True)
class FakeProvider:
    participant_id: str
    utilization: float


def providers(utilizations):
    return [FakeProvider(f"p{i:03d}", u) for i, u in enumerate(utilizations)]


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError, match="k must be"):
            KnBestSelector(0, 0, RandomStream(1))

    def test_kn_within_bounds(self):
        with pytest.raises(ValueError, match="kn must satisfy"):
            KnBestSelector(5, 6, RandomStream(1))
        with pytest.raises(ValueError, match="kn must satisfy"):
            KnBestSelector(5, 0, RandomStream(1))


class TestSelection:
    def test_sizes_match_parameters(self):
        selector = KnBestSelector(k=5, kn=2, stream=RandomStream(1))
        selection = selector.select(providers([0.1] * 20))
        assert selection.k_effective == 5
        assert selection.kn_effective == 2

    def test_small_candidate_sets_degrade_gracefully(self):
        selector = KnBestSelector(k=10, kn=4, stream=RandomStream(1))
        selection = selector.select(providers([0.5, 0.5]))
        assert selection.k_effective == 2
        assert selection.kn_effective == 2

    def test_working_set_is_least_utilized_of_sample(self):
        selector = KnBestSelector(k=4, kn=2, stream=RandomStream(7))
        candidates = providers([0.9, 0.1, 0.5, 0.3])
        selection = selector.select(candidates)
        sampled_utils = sorted(p.utilization for p in selection.sampled)
        working_utils = sorted(p.utilization for p in selection.working)
        assert working_utils == sampled_utils[:2]

    def test_working_set_ordered_least_utilized_first(self):
        selector = KnBestSelector(k=4, kn=4, stream=RandomStream(7))
        selection = selector.select(providers([0.9, 0.1, 0.5, 0.3]))
        utils = [p.utilization for p in selection.working]
        assert utils == sorted(utils)

    def test_utilization_ties_break_by_id(self):
        selector = KnBestSelector(k=3, kn=3, stream=RandomStream(7))
        selection = selector.select(providers([0.5, 0.5, 0.5]))
        ids = [p.participant_id for p in selection.working]
        assert ids == sorted(ids)

    def test_deterministic_given_stream_seed(self):
        candidates = providers([i / 30 for i in range(30)])
        first = KnBestSelector(5, 3, RandomStream(42)).select(candidates)
        second = KnBestSelector(5, 3, RandomStream(42)).select(candidates)
        assert [p.participant_id for p in first.sampled] == [
            p.participant_id for p in second.sampled
        ]
        assert [p.participant_id for p in first.working] == [
            p.participant_id for p in second.working
        ]

    def test_stage1_randomness_explores_population(self):
        """Across many queries the random stage must touch most providers."""
        selector = KnBestSelector(k=5, kn=2, stream=RandomStream(3))
        candidates = providers([0.5] * 40)
        seen = set()
        for _ in range(200):
            selection = selector.select(candidates)
            seen.update(p.participant_id for p in selection.sampled)
        assert len(seen) >= 38  # all but a couple of the 40

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_invariants(self, utils, k, kn_raw, seed):
        kn = min(kn_raw, k)
        selector = KnBestSelector(k=k, kn=kn, stream=RandomStream(seed))
        candidates = providers(utils)
        selection = selector.select(candidates)
        sampled_ids = {p.participant_id for p in selection.sampled}
        working_ids = {p.participant_id for p in selection.working}
        # sizes
        assert selection.k_effective == min(k, len(candidates))
        assert selection.kn_effective == min(kn, selection.k_effective)
        # subset chain: Kn subset of K subset of P_q
        assert working_ids <= sampled_ids
        assert sampled_ids <= {p.participant_id for p in candidates}
        # no duplicates
        assert len(sampled_ids) == len(selection.sampled)
        # stage 2 keeps exactly the least utilized of the sample
        threshold = max(p.utilization for p in selection.working)
        outside = [p for p in selection.sampled if p.participant_id not in working_ids]
        assert all(p.utilization >= threshold for p in outside)
