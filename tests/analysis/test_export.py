"""Unit tests for CSV export."""

import csv
import io

import pytest

from repro.analysis.export import rows_to_csv, series_to_csv


class TestRowsToCsv:
    def test_round_trips_through_csv_reader(self):
        text = rows_to_csv(["a", "b"], [[1, "x"], [2, "y"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows == [["a", "b"], ["1", "x"], ["2", "y"]]

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        rows_to_csv(["a"], [[1]], path=path)
        assert path.read_text().startswith("a\n")

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError, match="as many cells"):
            rows_to_csv(["a", "b"], [[1]])

    def test_quoting_of_commas(self):
        text = rows_to_csv(["a"], [["x,y"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[1] == ["x,y"]


class TestSeriesToCsv:
    def test_long_format(self):
        text = series_to_csv({"s1": [(0.0, 1.0), (1.0, 2.0)], "s2": [(0.0, 3.0)]})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["series", "t", "value"]
        assert ["s1", "0.0", "1.0"] in rows
        assert ["s2", "0.0", "3.0"] in rows
        assert len(rows) == 4

    def test_writes_file(self, tmp_path):
        path = tmp_path / "series.csv"
        series_to_csv({"s": [(0.0, 1.0)]}, path=path)
        assert "series,t,value" in path.read_text()
