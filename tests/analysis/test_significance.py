"""Unit tests for the Welch t-test comparison helpers."""

import pytest

from repro.analysis.significance import (
    Comparison,
    compare_aggregates,
    holm_adjust,
    holm_correction,
    welch_t_test,
)


class TestWelchTTest:
    def test_identical_samples_not_significant(self):
        t, dof, p = welch_t_test([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert t == 0.0
        assert p == 1.0

    def test_clearly_separated_samples(self):
        t, dof, p = welch_t_test([1.0, 1.1, 0.9, 1.05], [5.0, 5.1, 4.9, 5.05])
        assert p < 0.001
        assert t < 0  # a < b

    def test_matches_scipy_reference(self):
        from scipy import stats

        a = [2.1, 2.5, 2.3, 2.9, 2.0]
        b = [2.8, 3.1, 3.3, 2.9]
        t, dof, p = welch_t_test(a, b)
        reference = stats.ttest_ind(a, b, equal_var=False)
        assert t == pytest.approx(reference.statistic)
        assert p == pytest.approx(reference.pvalue)

    def test_symmetry(self):
        a = [1.0, 2.0, 3.0]
        b = [2.0, 3.0, 4.0]
        t_ab, _, p_ab = welch_t_test(a, b)
        t_ba, _, p_ba = welch_t_test(b, a)
        assert t_ab == pytest.approx(-t_ba)
        assert p_ab == pytest.approx(p_ba)

    def test_sample_size_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            welch_t_test([1.0], [1.0, 2.0])


class TestCompareAggregates:
    def _aggregates(self, replications=3):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.replication import run_replications
        from repro.workloads.boinc import BoincScenarioParams

        config = ExperimentConfig(
            name="sig",
            seed=11,
            duration=400.0,
            population=BoincScenarioParams(n_providers=30),
        )
        a = run_replications(config, PolicySpec(name="sbqa"), replications=replications)
        b = run_replications(config, PolicySpec(name="capacity"), replications=replications)
        return a, b

    def test_comparison_fields(self):
        a, b = self._aggregates()
        comparison = compare_aggregates(a, b, "provider_sat_final")
        assert comparison.metric == "provider_sat_final"
        assert comparison.label_a == "sbqa"
        assert comparison.label_b == "capacity"
        assert comparison.difference == pytest.approx(
            comparison.mean_a - comparison.mean_b
        )
        assert 0.0 <= comparison.p_value <= 1.0
        assert "provider_sat_final" in comparison.format()

    def test_sbqa_satisfaction_advantage_is_significant(self):
        """The core paper effect survives a significance test."""
        a, b = self._aggregates(replications=4)
        comparison = compare_aggregates(a, b, "provider_sat_final")
        assert comparison.difference > 0
        assert comparison.significant(alpha=0.05)

    def test_requires_kept_runs(self):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.replication import run_replications
        from repro.workloads.boinc import BoincScenarioParams

        config = ExperimentConfig(
            name="sig2",
            seed=11,
            duration=120.0,
            population=BoincScenarioParams(n_providers=10),
        )
        a = run_replications(
            config, PolicySpec(name="sbqa"), replications=2, keep_runs=False
        )
        b = run_replications(
            config, PolicySpec(name="capacity"), replications=2, keep_runs=False
        )
        with pytest.raises(ValueError, match="keep_runs"):
            compare_aggregates(a, b, "mean_rt")


def _comparison(metric, p_value):
    return Comparison(
        metric=metric,
        label_a="a",
        label_b="b",
        mean_a=1.0,
        mean_b=2.0,
        difference=-1.0,
        t_statistic=-2.0,
        degrees_of_freedom=4.0,
        p_value=p_value,
    )


class TestHolmCorrection:
    def test_matches_hand_computation(self):
        # m=3: sorted (0.01, 0.02, 0.05) -> scaled (0.03, 0.04, 0.05),
        # already monotone; mapped back to the input order.
        assert holm_correction([0.02, 0.05, 0.01]) == [
            pytest.approx(0.04),
            pytest.approx(0.05),
            pytest.approx(0.03),
        ]

    def test_monotonicity_enforced(self):
        # scaled values (0.02, then 1*0.02=0.02) tie; the running
        # maximum keeps the adjusted sequence monotone in rank order.
        assert holm_correction([0.01, 0.02]) == [
            pytest.approx(0.02),
            pytest.approx(0.02),
        ]
        # a genuine inversion: scaled (3*0.01, 2*0.02, 1*0.025) =
        # (0.03, 0.04, 0.025) -> running max lifts the last to 0.04
        assert holm_correction([0.01, 0.02, 0.025]) == [
            pytest.approx(0.03),
            pytest.approx(0.04),
            pytest.approx(0.04),
        ]

    def test_matches_reference_implementation(self):
        multitest = pytest.importorskip(
            "statsmodels.stats.multitest", reason="statsmodels not installed"
        )
        ps = [0.004, 0.03, 0.02, 0.2, 0.9, 0.049]
        _, adjusted, _, _ = multitest.multipletests(ps, method="holm")
        assert holm_correction(ps) == pytest.approx(list(adjusted))

    def test_clips_at_one(self):
        assert holm_correction([0.9, 0.8, 0.7]) == [1.0, 1.0, 1.0]

    def test_single_and_empty_families(self):
        assert holm_correction([]) == []
        assert holm_correction([0.03]) == [pytest.approx(0.03)]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            holm_correction([0.5, 1.5])

    def test_never_below_raw_p(self):
        ps = [0.001, 0.04, 0.04, 0.2, 0.6]
        for raw, adjusted in zip(ps, holm_correction(ps)):
            assert adjusted >= raw


class TestHolmAdjust:
    def test_fills_p_adjusted_preserving_order(self):
        family = [_comparison("m1", 0.03), _comparison("m2", 0.01)]
        adjusted = holm_adjust(family)
        assert [c.metric for c in adjusted] == ["m1", "m2"]
        # sorted (0.01, 0.03) -> scaled (0.02, 0.03), mapped back
        assert adjusted[0].p_adjusted == pytest.approx(0.03)
        assert adjusted[1].p_adjusted == pytest.approx(0.02)
        # originals untouched (frozen dataclass, copies returned)
        assert family[0].p_adjusted is None

    def test_significant_uses_adjusted_p(self):
        lone = _comparison("m", 0.03)
        assert lone.significant(alpha=0.05)
        family = holm_adjust([lone, _comparison("m2", 0.04)])
        # 0.03 doubles to 0.06 under Holm with m=2
        assert not family[0].significant(alpha=0.05)
        assert "p_holm" in family[0].format()
        assert family[0].as_dict()["p_adjusted"] == pytest.approx(0.06)

    def test_as_dict_carries_none_when_uncorrected(self):
        assert _comparison("m", 0.5).as_dict()["p_adjusted"] is None
