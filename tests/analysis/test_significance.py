"""Unit tests for the Welch t-test comparison helpers."""

import pytest

from repro.analysis.significance import Comparison, compare_aggregates, welch_t_test


class TestWelchTTest:
    def test_identical_samples_not_significant(self):
        t, dof, p = welch_t_test([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert t == 0.0
        assert p == 1.0

    def test_clearly_separated_samples(self):
        t, dof, p = welch_t_test([1.0, 1.1, 0.9, 1.05], [5.0, 5.1, 4.9, 5.05])
        assert p < 0.001
        assert t < 0  # a < b

    def test_matches_scipy_reference(self):
        from scipy import stats

        a = [2.1, 2.5, 2.3, 2.9, 2.0]
        b = [2.8, 3.1, 3.3, 2.9]
        t, dof, p = welch_t_test(a, b)
        reference = stats.ttest_ind(a, b, equal_var=False)
        assert t == pytest.approx(reference.statistic)
        assert p == pytest.approx(reference.pvalue)

    def test_symmetry(self):
        a = [1.0, 2.0, 3.0]
        b = [2.0, 3.0, 4.0]
        t_ab, _, p_ab = welch_t_test(a, b)
        t_ba, _, p_ba = welch_t_test(b, a)
        assert t_ab == pytest.approx(-t_ba)
        assert p_ab == pytest.approx(p_ba)

    def test_sample_size_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            welch_t_test([1.0], [1.0, 2.0])


class TestCompareAggregates:
    def _aggregates(self, replications=3):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.replication import run_replications
        from repro.workloads.boinc import BoincScenarioParams

        config = ExperimentConfig(
            name="sig",
            seed=11,
            duration=400.0,
            population=BoincScenarioParams(n_providers=30),
        )
        a = run_replications(config, PolicySpec(name="sbqa"), replications=replications)
        b = run_replications(config, PolicySpec(name="capacity"), replications=replications)
        return a, b

    def test_comparison_fields(self):
        a, b = self._aggregates()
        comparison = compare_aggregates(a, b, "provider_sat_final")
        assert comparison.metric == "provider_sat_final"
        assert comparison.label_a == "sbqa"
        assert comparison.label_b == "capacity"
        assert comparison.difference == pytest.approx(
            comparison.mean_a - comparison.mean_b
        )
        assert 0.0 <= comparison.p_value <= 1.0
        assert "provider_sat_final" in comparison.format()

    def test_sbqa_satisfaction_advantage_is_significant(self):
        """The core paper effect survives a significance test."""
        a, b = self._aggregates(replications=4)
        comparison = compare_aggregates(a, b, "provider_sat_final")
        assert comparison.difference > 0
        assert comparison.significant(alpha=0.05)

    def test_requires_kept_runs(self):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.replication import run_replications
        from repro.workloads.boinc import BoincScenarioParams

        config = ExperimentConfig(
            name="sig2",
            seed=11,
            duration=120.0,
            population=BoincScenarioParams(n_providers=10),
        )
        a = run_replications(
            config, PolicySpec(name="sbqa"), replications=2, keep_runs=False
        )
        b = run_replications(
            config, PolicySpec(name="capacity"), replications=2, keep_runs=False
        )
        with pytest.raises(ValueError, match="keep_runs"):
            compare_aggregates(a, b, "mean_rt")
