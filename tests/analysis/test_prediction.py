"""Unit tests for the departure-prediction analysis."""

import pytest

from repro.analysis.prediction import PredictionReport, predict_departures
from repro.metrics.collectors import MetricsHub


class TestPredictionReport:
    def make(self, tp=8, fp=2, fn=4, tn=16):
        return PredictionReport(
            observed_at=100.0, threshold=0.35,
            true_positives=tp, false_positives=fp,
            false_negatives=fn, true_negatives=tn,
        )

    def test_precision_recall_f1(self):
        report = self.make()
        assert report.precision == pytest.approx(0.8)
        assert report.recall == pytest.approx(8 / 12)
        assert report.f1 == pytest.approx(2 * 0.8 * (8 / 12) / (0.8 + 8 / 12))

    def test_base_rate(self):
        assert self.make().base_rate == pytest.approx(12 / 30)

    def test_degenerate_cases(self):
        empty = self.make(tp=0, fp=0, fn=0, tn=0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0
        assert empty.base_rate == 0.0

    def test_format(self):
        text = self.make().format()
        assert "precision=0.80" in text
        assert "tp=8" in text


class TestPredictDepartures:
    def _hub_with_snapshots(self, factory, snapshots):
        hub = MetricsHub()
        hub.enable_provider_snapshots()
        hub.provider_snapshots.extend(snapshots)
        return hub

    def test_requires_snapshots(self, factory):
        hub = MetricsHub()
        with pytest.raises(ValueError, match="snapshots"):
            predict_departures(hub, factory.registry)

    def test_correct_confusion_matrix(self, factory, sim):
        # four providers: two dissatisfied at t=100, one of each leaves
        leaver_flagged = factory.provider("leaver-flagged")
        stayer_flagged = factory.provider("stayer-flagged")
        leaver_missed = factory.provider("leaver-missed")
        stayer_clean = factory.provider("stayer-clean")
        sim.run_until(500.0)
        leaver_flagged.leave()
        leaver_missed.leave()

        snapshot = {
            "leaver-flagged": 0.1,
            "stayer-flagged": 0.2,
            "leaver-missed": 0.9,
            "stayer-clean": 0.8,
        }
        hub = self._hub_with_snapshots(factory, [(100.0, snapshot)])
        report = predict_departures(
            hub, factory.registry, threshold=0.35, observe_at=100.0
        )
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.true_negatives == 1
        assert report.precision == 0.5
        assert report.recall == 0.5

    def test_already_departed_excluded(self, factory, sim):
        early_leaver = factory.provider("early")
        sim.run_until(50.0)
        early_leaver.leave()  # gone before the observation at t=100
        stayer = factory.provider("stayer")
        hub = self._hub_with_snapshots(
            factory, [(100.0, {"early": 0.1, "stayer": 0.9})]
        )
        report = predict_departures(
            hub, factory.registry, threshold=0.35, observe_at=100.0
        )
        assert report.population == 1  # only the stayer is evaluable

    def test_default_observation_point(self, factory):
        provider = factory.provider("p")
        hub = self._hub_with_snapshots(
            factory,
            [(0.0, {"p": 0.9}), (100.0, {"p": 0.9}), (400.0, {"p": 0.9})],
        )
        report = predict_departures(hub, factory.registry)
        # first snapshot at/after 0 + (400-0)/4 = 100
        assert report.observed_at == 100.0


class TestEndToEnd:
    def test_snapshots_recorded_when_enabled(self):
        from repro.experiments.config import ExperimentConfig, PolicySpec
        from repro.experiments.runner import run_once
        from repro.workloads.boinc import BoincScenarioParams

        config = ExperimentConfig(
            name="snap",
            seed=3,
            duration=100.0,
            population=BoincScenarioParams(n_providers=8),
            track_provider_snapshots=True,
        )
        result = run_once(config, PolicySpec(name="capacity"))
        assert result.hub.provider_snapshots
        t0, snapshot = result.hub.provider_snapshots[0]
        assert len(snapshot) == 8
        assert all(0.0 <= v <= 1.0 for v in snapshot.values())
