"""Unit tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_value, render_table, rows_from_dicts


class TestFormatValue:
    def test_none(self):
        assert format_value(None) == "-"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_rounding(self):
        assert format_value(3.14159, decimals=3) == "3.142"

    def test_small_float_uses_general_format(self):
        assert format_value(0.00012) == "0.00012"

    def test_huge_float_uses_general_format(self):
        assert "e" in format_value(1.5e9) or "+" in format_value(1.5e9)

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("sbqa") == "sbqa"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["policy", "rt"],
            [["sbqa", 41.2], ["capacity", 39.9]],
            title="Results",
        )
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "policy" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert "sbqa" in lines[3]

    def test_numeric_columns_right_aligned(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 100.0]])
        rows = text.splitlines()[2:]
        # the numeric column ends aligned
        assert rows[0].endswith("1.000")
        assert rows[1].endswith("100.000")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="as many cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestRowsFromDicts:
    def test_column_order_first_seen(self):
        headers, rows = rows_from_dicts([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert headers == ["a", "b", "c"]
        assert rows == [[1, 2, None], [None, 3, 4]]

    def test_explicit_columns(self):
        headers, rows = rows_from_dicts([{"a": 1, "b": 2}], columns=["b"])
        assert headers == ["b"]
        assert rows == [[2]]
