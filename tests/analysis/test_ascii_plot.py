"""Unit tests for sparkline / chart rendering."""

from repro.analysis.ascii_plot import (
    _resample,
    multi_sparkline,
    render_series,
    sparkline,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_series_uses_increasing_blocks(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] < line[1] < line[2]

    def test_flat_series_renders_mid_blocks(self):
        line = sparkline([2.0, 2.0, 2.0])
        assert len(set(line)) == 1

    def test_pinned_scale(self):
        # with scale pinned to [0, 10], value 5 is mid-block
        line_auto = sparkline([4.9, 5.0, 5.1])
        line_pinned = sparkline([4.9, 5.0, 5.1], lo=0.0, hi=10.0)
        assert len(set(line_auto)) > 1
        assert len(set(line_pinned)) == 1


class TestMultiSparkline:
    def test_labels_aligned(self):
        text = multi_sparkline({"a": [1.0, 2.0], "longer": [2.0, 1.0]})
        lines = text.splitlines()
        # the sparkline starts at the same column on every line
        starts = [line.index(" ") for line in lines]
        assert "a      " in lines[0]
        assert "longer " in lines[1]

    def test_last_value_annotated(self):
        text = multi_sparkline({"a": [1.0, 2.5]})
        assert "last=2.500" in text

    def test_empty(self):
        assert multi_sparkline({}) == ""


class TestRenderSeries:
    def test_renders_axes_and_legend(self):
        chart = render_series(
            {"sbqa": [(0.0, 1.0), (10.0, 2.0)], "capacity": [(0.0, 2.0), (10.0, 1.0)]},
            title="satisfaction",
        )
        assert "satisfaction" in chart
        assert "* sbqa" in chart
        assert "+ capacity" in chart
        assert "t=0" in chart

    def test_no_data(self):
        assert render_series({}) == "(no data)"
        assert render_series({"a": []}) == "(no data)"

    def test_single_point(self):
        chart = render_series({"a": [(1.0, 1.0)]})
        assert "* a" in chart


class TestResample:
    def test_short_series_untouched(self):
        assert _resample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_downsampling_preserves_mean_roughly(self):
        values = [float(i) for i in range(100)]
        out = _resample(values, 10)
        assert len(out) == 10
        assert abs(sum(out) / len(out) - sum(values) / len(values)) < 5.0

    def test_monotone_input_stays_monotone(self):
        values = [float(i) for i in range(100)]
        out = _resample(values, 10)
        assert out == sorted(out)
