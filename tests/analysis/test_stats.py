"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    Welford,
    gini,
    mean,
    median,
    percentile,
    stdev,
    summarize_distribution,
)

floats = st.floats(min_value=-1e6, max_value=1e6)
positive_floats = st.floats(min_value=0.0, max_value=1e6)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([], default=7.0) == 7.0

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
        assert median([], default=-1.0) == -1.0

    def test_percentile_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0) == 0.0
        assert percentile(values, 50) == 5.0
        assert percentile(values, 100) == 10.0

    def test_percentile_single_value(self):
        assert percentile([42.0], 95) == 42.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], 150)

    def test_stdev(self):
        assert stdev([2.0, 4.0]) == 1.0
        assert stdev([5.0]) == 0.0
        assert stdev([], default=3.0) == 3.0

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6

    @given(st.lists(floats, min_size=1, max_size=50), st.floats(min_value=0, max_value=100))
    def test_percentile_within_bounds(self, values, q):
        assert min(values) - 1e-6 <= percentile(values, q) <= max(values) + 1e-6


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_total_concentration(self):
        # one provider does all the work; gini -> (n-1)/n
        assert gini([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.75)

    def test_empty_and_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            gini([1.0, -1.0])

    def test_known_value(self):
        # [1, 3]: G = (2*(1*1 + 2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    @given(st.lists(positive_floats, min_size=1, max_size=50))
    def test_bounded_in_unit_interval(self, values):
        assert -1e-9 <= gini(values) <= 1.0

    @given(st.lists(positive_floats, min_size=1, max_size=50), st.floats(min_value=0.1, max_value=10))
    def test_scale_invariant(self, values, scale):
        scaled = [v * scale for v in values]
        assert gini(scaled) == pytest.approx(gini(values), abs=1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_permutation_invariant(self, values):
        assert gini(values) == pytest.approx(gini(list(reversed(values))))


class TestWelford:
    def test_matches_batch_statistics(self):
        values = [1.0, 2.0, 3.0, 4.0, 10.0]
        accumulator = Welford()
        for v in values:
            accumulator.add(v)
        assert accumulator.mean == pytest.approx(mean(values))
        assert accumulator.stdev == pytest.approx(stdev(values))
        assert accumulator.minimum == 1.0
        assert accumulator.maximum == 10.0
        assert accumulator.count == 5

    def test_empty_accumulator(self):
        accumulator = Welford()
        assert accumulator.mean == 0.0
        assert accumulator.variance == 0.0
        assert accumulator.minimum is None

    def test_merge_matches_combined_batch(self):
        a_values = [1.0, 2.0, 3.0]
        b_values = [10.0, 20.0]
        a, b = Welford(), Welford()
        for v in a_values:
            a.add(v)
        for v in b_values:
            b.add(v)
        merged = a.merge(b)
        combined = a_values + b_values
        assert merged.count == 5
        assert merged.mean == pytest.approx(mean(combined))
        assert merged.stdev == pytest.approx(stdev(combined))
        assert merged.minimum == 1.0
        assert merged.maximum == 20.0

    def test_merge_with_empty(self):
        a = Welford()
        b = Welford()
        b.add(5.0)
        assert a.merge(b).mean == 5.0
        assert b.merge(a).mean == 5.0

    @given(st.lists(floats, min_size=2, max_size=60))
    @settings(max_examples=50)
    def test_streaming_equals_batch(self, values):
        accumulator = Welford()
        for v in values:
            accumulator.add(v)
        assert accumulator.mean == pytest.approx(mean(values), rel=1e-6, abs=1e-6)
        assert accumulator.stdev == pytest.approx(stdev(values), rel=1e-6, abs=1e-3)


class TestSummaries:
    def test_summary_fields(self):
        summary = summarize_distribution([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.5

    def test_empty_summary(self):
        summary = summarize_distribution([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_as_dict(self):
        d = summarize_distribution([1.0]).as_dict()
        assert set(d) == {"count", "mean", "stdev", "min", "p50", "p95", "p99", "max"}
