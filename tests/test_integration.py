"""Cross-module integration tests: determinism, conservation, autonomy.

These assert whole-system invariants that no single-module test can:
bit-for-bit reproducibility of full runs, query conservation through
the pipeline, and the monotone effect of autonomy on population size.
"""

import pytest

from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec
from repro.experiments.runner import run_once
from repro.workloads.boinc import BoincScenarioParams


def tiny_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        name="integration",
        seed=7,
        duration=300.0,
        sample_interval=10.0,
        population=BoincScenarioParams(n_providers=20),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


POLICIES = ("sbqa", "capacity", "economic", "random", "round-robin", "shortest-queue")


class TestDeterminism:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_full_run_reproducible(self, policy):
        a = run_once(tiny_config(), PolicySpec(name=policy))
        b = run_once(tiny_config(), PolicySpec(name=policy))
        assert a.summary.as_dict() == b.summary.as_dict()
        assert a.hub.provider_satisfaction.points() == b.hub.provider_satisfaction.points()

    def test_seed_changes_outcome(self):
        a = run_once(tiny_config(seed=7), PolicySpec(name="sbqa"))
        b = run_once(tiny_config(seed=8), PolicySpec(name="sbqa"))
        assert a.summary.mean_response_time != b.summary.mean_response_time


class TestConservation:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_queries_conserved(self, policy):
        """issued == completed + failed + still-in-flight at horizon."""
        result = run_once(tiny_config(), PolicySpec(name=policy))
        s = result.summary
        in_flight = s.queries_issued - s.queries_completed - s.queries_failed
        assert in_flight >= 0
        # nothing in flight can exceed what the allocated backlog explains
        assert in_flight <= s.queries_issued

    def test_provider_work_matches_completed_queries(self):
        result = run_once(tiny_config(), PolicySpec(name="capacity"))
        total_executed = sum(
            p.stats.queries_completed for p in result.registry.providers
        )
        # every completed query ran on n_results providers
        n = result.config.population.n_results
        assert total_executed >= result.summary.queries_completed * n

    def test_consumer_stats_match_hub(self):
        result = run_once(tiny_config(), PolicySpec(name="capacity"))
        issued = sum(c.stats.queries_issued for c in result.registry.consumers)
        assert issued == result.summary.queries_issued
        completed = sum(c.stats.queries_completed for c in result.registry.consumers)
        assert completed == result.summary.queries_completed


class TestAutonomyEffects:
    def test_captive_population_is_stable(self):
        result = run_once(tiny_config(), PolicySpec(name="capacity"))
        assert result.summary.providers_remaining == 20
        assert result.summary.consumer_departures == 0

    def test_autonomous_population_is_never_larger(self):
        captive = run_once(tiny_config(duration=600.0), PolicySpec(name="capacity"))
        autonomous = run_once(
            tiny_config(
                duration=600.0,
                autonomy=AutonomyConfig(
                    mode="autonomous", warmup=100.0, min_observations=10
                ),
            ),
            PolicySpec(name="capacity"),
        )
        assert (
            autonomous.summary.providers_remaining
            <= captive.summary.providers_remaining
        )

    def test_departed_providers_drain_backlog(self):
        """Lame-duck draining: allocated work completes even after churn."""
        result = run_once(
            tiny_config(
                duration=600.0,
                autonomy=AutonomyConfig(
                    mode="autonomous", warmup=100.0, min_observations=10
                ),
            ),
            PolicySpec(name="capacity"),
        )
        # every provider that left has no pending backlog by the horizon
        # (unless it received work moments before the end)
        for provider in result.registry.providers:
            if not provider.online and provider.left_at < 500.0:
                assert provider.backlog_seconds == 0.0


class TestSatisfactionDynamicsEndToEnd:
    def test_sbqa_provider_satisfaction_beats_capacity(self):
        """The core paper effect at integration scale."""
        sbqa = run_once(tiny_config(duration=500.0), PolicySpec(name="sbqa"))
        capacity = run_once(tiny_config(duration=500.0), PolicySpec(name="capacity"))
        assert (
            sbqa.summary.provider_satisfaction_final
            > capacity.summary.provider_satisfaction_final
        )

    def test_adaptive_omega_values_recorded_in_unit_interval(self):
        config = tiny_config(keep_records=True)
        result = run_once(config, PolicySpec(name="sbqa"))
        omegas = [w for r in result.mediator.records for w in r.omegas.values()]
        assert omegas
        assert all(0.0 <= w <= 1.0 for w in omegas)

    def test_scores_sign_matches_intentions(self):
        config = tiny_config(keep_records=True)
        result = run_once(config, PolicySpec(name="sbqa"))
        for record in result.mediator.records[:200]:
            for pid, score in record.scores.items():
                pi = record.provider_intentions[pid]
                ci = record.consumer_intentions[pid]
                if pi > 0 and ci > 0:
                    assert score > 0
                else:
                    assert score <= 0
