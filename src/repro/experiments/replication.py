"""Seeded replications and mean +- stdev aggregation.

``run_replications`` repeats one ``(config, policy)`` pair across
replication indices -- every index derives an independent random root
(see :func:`repro.des.rng.spawn_replication_root`) -- and aggregates
the numeric summary fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.stats import mean, stdev
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.experiments.runner import RunResult, run_once

#: Summary fields aggregated across replications.
AGGREGATED_FIELDS = (
    "mean_rt",
    "p95_rt",
    "tail_rt",
    "throughput",
    "failure_rate",
    "consumer_sat_final",
    "provider_sat_final",
    "consumer_sat_mean",
    "provider_sat_mean",
    "providers_remaining",
    "consumers_remaining",
    "provider_departures",
    "consumer_departures",
    "capacity_remaining_fraction",
    "utilization_gini",
    "work_gini",
    "coordination_messages",
)


@dataclass
class AggregateResult:
    """Mean and stdev of summary fields over n replications."""

    label: str
    replications: int
    means: Dict[str, float] = field(default_factory=dict)
    stdevs: Dict[str, float] = field(default_factory=dict)
    runs: List[RunResult] = field(default_factory=list)

    def cell(self, key: str, decimals: int = 3) -> str:
        """``mean +- stdev`` rendering of one aggregated field."""
        if key not in self.means:
            raise KeyError(f"field {key!r} was not aggregated")
        return f"{self.means[key]:.{decimals}f}±{self.stdevs[key]:.{decimals}f}"

    def __getitem__(self, key: str) -> float:
        return self.means[key]


def run_replications(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    replications: int = 3,
    keep_runs: bool = True,
) -> AggregateResult:
    """Run ``replications`` independent seeds of one experiment."""
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    runs = [
        run_once(config, policy_spec, replication=i) for i in range(replications)
    ]
    samples: Dict[str, List[float]] = {key: [] for key in AGGREGATED_FIELDS}
    for run in runs:
        flat = run.summary.as_dict()
        for key in AGGREGATED_FIELDS:
            samples[key].append(float(flat[key]))
    return AggregateResult(
        label=policy_spec.label,
        replications=replications,
        means={key: mean(values) for key, values in samples.items()},
        stdevs={key: stdev(values) for key, values in samples.items()},
        runs=runs if keep_runs else [],
    )


def compare_policies(
    config: ExperimentConfig,
    policy_specs: List[PolicySpec],
    replications: int = 3,
) -> List[AggregateResult]:
    """Aggregate every policy over the same replication seeds."""
    return [
        run_replications(config, spec, replications=replications)
        for spec in policy_specs
    ]
