"""The experiment harness: scenario definitions and runners.

* :mod:`repro.experiments.config` -- declarative run configuration
  (:class:`ExperimentConfig`, :class:`PolicySpec`);
* :mod:`repro.experiments.runner` -- wires kernel + population +
  mediator + arrivals + churn + metrics and executes one run
  (:func:`wire_run` / :class:`LiveRun` for incremental stepping);
* :mod:`repro.experiments.replication` -- replicate a run over seeds
  and aggregate mean +- stdev;
* :mod:`repro.experiments.scenarios` -- Scenario 1-7 of the demo
  (Section IV), each returning a :class:`ScenarioResult` with the
  comparison tables, the sampled series and machine-checked claims;
* :mod:`repro.experiments.report` -- rendering of scenario results.

Names resolve lazily (PEP 562): the scenario layer builds on
:mod:`repro.api`, which in turn imports the config/runner submodules
here, so the package initializer must not force the whole chain.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "ExperimentConfig": "repro.experiments.config",
    "PolicySpec": "repro.experiments.config",
    "AutonomyConfig": "repro.experiments.config",
    "RunResult": "repro.experiments.runner",
    "LiveRun": "repro.experiments.runner",
    "run_once": "repro.experiments.runner",
    "run_policies": "repro.experiments.runner",
    "wire_run": "repro.experiments.runner",
    "AggregateResult": "repro.experiments.replication",
    "run_replications": "repro.experiments.replication",
    "render_comparison": "repro.experiments.report",
    "render_claims": "repro.experiments.report",
    "render_run_series": "repro.experiments.report",
    "Claim": "repro.experiments.scenarios",
    "ScenarioResult": "repro.experiments.scenarios",
    "scenario1_satisfaction_model": "repro.experiments.scenarios",
    "scenario2_departures": "repro.experiments.scenarios",
    "scenario3_captive": "repro.experiments.scenarios",
    "scenario4_autonomous": "repro.experiments.scenarios",
    "scenario5_expectation_adaptation": "repro.experiments.scenarios",
    "scenario6_application_adaptability": "repro.experiments.scenarios",
    "scenario7_focal_participant": "repro.experiments.scenarios",
    "ALL_SCENARIOS": "repro.experiments.scenarios",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.experiments.config import (
        AutonomyConfig,
        ExperimentConfig,
        PolicySpec,
    )
    from repro.experiments.replication import AggregateResult, run_replications
    from repro.experiments.report import (
        render_claims,
        render_comparison,
        render_run_series,
    )
    from repro.experiments.runner import (
        LiveRun,
        RunResult,
        run_once,
        run_policies,
        wire_run,
    )
    from repro.experiments.scenarios import (
        ALL_SCENARIOS,
        Claim,
        ScenarioResult,
        scenario1_satisfaction_model,
        scenario2_departures,
        scenario3_captive,
        scenario4_autonomous,
        scenario5_expectation_adaptation,
        scenario6_application_adaptability,
        scenario7_focal_participant,
    )


_SUBMODULES = frozenset({"config", "replication", "report", "runner", "scenarios"})


def __getattr__(name: str):
    import importlib

    if name in _SUBMODULES:
        module = importlib.import_module(f"repro.experiments.{name}")
        globals()[name] = module
        return module
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.experiments' has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ fires once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
