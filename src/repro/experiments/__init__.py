"""The experiment harness: scenario definitions and runners.

* :mod:`repro.experiments.config` -- declarative run configuration
  (:class:`ExperimentConfig`, :class:`PolicySpec`);
* :mod:`repro.experiments.runner` -- wires kernel + population +
  mediator + arrivals + churn + metrics and executes one run;
* :mod:`repro.experiments.replication` -- replicate a run over seeds
  and aggregate mean +- stdev;
* :mod:`repro.experiments.scenarios` -- Scenario 1-7 of the demo
  (Section IV), each returning a :class:`ScenarioResult` with the
  comparison tables, the sampled series and machine-checked claims;
* :mod:`repro.experiments.report` -- rendering of scenario results.
"""

from repro.experiments.config import AutonomyConfig, ExperimentConfig, PolicySpec
from repro.experiments.runner import RunResult, run_once
from repro.experiments.replication import AggregateResult, run_replications
from repro.experiments.report import render_comparison, render_claims, render_run_series
from repro.experiments.scenarios import (
    Claim,
    ScenarioResult,
    scenario1_satisfaction_model,
    scenario2_departures,
    scenario3_captive,
    scenario4_autonomous,
    scenario5_expectation_adaptation,
    scenario6_application_adaptability,
    scenario7_focal_participant,
    ALL_SCENARIOS,
)

__all__ = [
    "ExperimentConfig",
    "PolicySpec",
    "AutonomyConfig",
    "RunResult",
    "run_once",
    "AggregateResult",
    "run_replications",
    "render_comparison",
    "render_claims",
    "render_run_series",
    "Claim",
    "ScenarioResult",
    "scenario1_satisfaction_model",
    "scenario2_departures",
    "scenario3_captive",
    "scenario4_autonomous",
    "scenario5_expectation_adaptation",
    "scenario6_application_adaptability",
    "scenario7_focal_participant",
    "ALL_SCENARIOS",
]
