"""Wire one full simulation run and execute it.

``wire_run(config, policy_spec)`` performs the complete assembly that
the demo prototype's setup GUIs performed interactively and returns a
:class:`LiveRun` that can be stepped incrementally (``step_until``) or
driven straight to the horizon; ``run_once`` is the one-shot form.
The assembly:

1. kernel: simulator + latency-modelled network + seeded random root;
2. population: the BOINC-like consumers and providers;
3. mediation: the allocation policy under study, a mediator, and the
   metrics hub observing it;
4. workload: one Poisson arrival process per project;
5. autonomy: the churn monitor when the environment is autonomous;
6. measurement: periodic sampling plus per-group satisfaction series
   (per project, per provider archetype, focal probes);

then runs to the horizon and assembles a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.allocation.factory import make_policy
from repro.core.engine import make_mediator, make_network
from repro.core.mediator import Mediator
from repro.des.network import Network, UniformLatency
from repro.des.rng import RandomRoot, spawn_replication_root
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.metrics.collectors import MetricsHub
from repro.metrics.summary import RunSummary, build_summary
from repro.system.autonomy import (
    CaptivePolicy,
    ChurnMonitor,
    SatisfactionDeparturePolicy,
)
from repro.system.failures import CrashInjector
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.boinc import BoincPopulation, build_boinc_population
from repro.workloads.preferences import ARCHETYPES


class WorkloadInstaller:
    """Protocol of pluggable workloads accepted by :func:`wire_run`.

    ``install`` is called exactly where the default Poisson block would
    run (after mediation wiring, before autonomy), and must arrange for
    queries to be issued through ``Consumer.issue`` -- by pre-scheduled
    replay chains (:class:`repro.workloads.traces.TraceWorkload`) or by
    an open ingress that schedules injections later (``repro.serve``).
    """

    def install(self, sim, population, config, root) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class RunResult:
    """Everything one run produced (summary + raw access for analysis)."""

    label: str
    config: ExperimentConfig
    policy_spec: PolicySpec
    summary: RunSummary
    hub: MetricsHub
    population: BoincPopulation
    mediator: Mediator

    @property
    def registry(self):
        return self.population.registry

    def digest(self) -> str:
        """Canonical allocation digest of this run (hex SHA-256).

        Delegates to :func:`repro.metrics.summary.summary_digest`: two
        runs agree iff every aggregate *and* per-consumer outcome in the
        summary is bit-identical -- the equivalence bar the engine
        parity tests use, now shared with trace replay and ``sbqa
        serve``.
        """
        from repro.metrics.summary import summary_digest

        return summary_digest(self.summary)

    def participant_satisfaction(self, participant_id: str) -> float:
        """Final satisfaction of one participant (consumer or provider)."""
        registry = self.registry
        try:
            return registry.consumer(participant_id).satisfaction
        except KeyError:
            return registry.provider(participant_id).satisfaction


@dataclass
class LiveRun:
    """A fully wired simulation that has not (necessarily) run yet.

    Produced by :func:`wire_run`; supports incremental execution with
    live inspection of the mediator / metrics-hub / registry state
    between steps, which is what the demo's "drawing results on-line"
    window did::

        live = wire_run(config, PolicySpec(name="sbqa"))
        live.step_until(600.0)
        print(live.hub.queries_completed, live.mediator.mediations)
        result = live.finalize()          # runs the remaining horizon

    ``finalize()`` is idempotent and returns the same :class:`RunResult`
    on repeated calls.
    """

    config: ExperimentConfig
    policy_spec: PolicySpec
    sim: Simulator
    network: Network
    hub: MetricsHub
    mediator: Mediator
    population: BoincPopulation
    _result: Optional[RunResult] = None

    @property
    def label(self) -> str:
        return self.policy_spec.label

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    @property
    def registry(self):
        return self.population.registry

    @property
    def finished(self) -> bool:
        """True once the horizon has been reached."""
        return self.sim.now >= self.config.duration

    def step_until(self, t: float) -> "LiveRun":
        """Advance the simulation to time ``t`` (clamped to the horizon).

        A target at or before the current simulation time is a no-op:
        the serve loop drives this from a wall-clock ticker whose
        mapped targets can repeat or even regress between ticks, and a
        zero-width step must neither raise nor disturb the event queue.
        """
        if self._result is not None:
            raise RuntimeError("run already finalized")
        target = min(float(t), self.config.duration)
        if target <= self.sim.now:
            return self
        self.sim.run_until(target)
        return self

    def finalize(self) -> RunResult:
        """Run any remaining horizon and assemble the :class:`RunResult`."""
        if self._result is not None:
            return self._result
        if self.sim.now < self.config.duration:
            self.sim.run_until(self.config.duration)
        summary = build_summary(
            policy_name=self.policy_spec.label,
            duration=self.config.duration,
            hub=self.hub,
            registry=self.registry,
            mediator=self.mediator,
            network=self.network,
        )
        self._result = RunResult(
            label=self.policy_spec.label,
            config=self.config,
            policy_spec=self.policy_spec,
            summary=summary,
            hub=self.hub,
            population=self.population,
            mediator=self.mediator,
        )
        return self._result


def wire_run(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    replication: int = 0,
    trace: TraceRecorder = NULL_RECORDER,
    workload: Optional["WorkloadInstaller"] = None,
    shard_slice=None,
) -> LiveRun:
    """Assemble one simulation run without executing it.

    Deterministic in all arguments; ``run_once`` is exactly
    ``wire_run(...).finalize()``.

    ``workload`` replaces the default closed-loop Poisson arrival
    processes with a custom installer (trace replay, the serve
    subsystem's open ingress); everything else -- population draw,
    mediation, autonomy, measurement -- is wired identically, so a
    workload that reproduces the default's arrival instants reproduces
    the whole run bit-for-bit.

    ``shard_slice`` (a :class:`repro.federation.parallel.ShardSlice`)
    turns this wiring into one *worker's* view of a process-parallel
    federated run: the full world is built identically (same population
    draw, same policy streams -- the determinism anchor), but arrivals,
    churn sweeps and sampling are activated only for the slice's owned
    shards.  Requires a federated config; incompatible with a custom
    ``workload``.
    """
    if shard_slice is not None and workload is not None:
        raise ValueError("shard_slice cannot be combined with a custom workload")
    root = spawn_replication_root(config.seed, replication)

    # 1. kernel -----------------------------------------------------------
    sim = Simulator()
    latency = UniformLatency(
        config.latency_low, config.latency_high, root.stream("network/latency")
    )
    network = make_network(config.engine, sim, latency)

    # 2. population -------------------------------------------------------
    population = build_boinc_population(sim, network, root, config.population)
    registry = population.registry

    # 3. mediation --------------------------------------------------------
    hub = MetricsHub() if shard_slice is None else shard_slice.create_hub(sim)
    if config.federation is not None:
        # Sharded multi-mediator federation: each shard builds its own
        # policy from its shard root (shard 0 gets `root` itself, the
        # K=1 parity requirement -- identical make_policy stream names,
        # identical draws).
        from repro.federation.mediator import build_federation

        mediator = build_federation(
            config.engine,
            sim,
            network,
            registry,
            config.federation,
            policy_factory=lambda shard_root: make_policy(
                policy_spec.name,
                shard_root,
                sbqa=policy_spec.sbqa,
                params=policy_spec.params,
            ),
            root=root,
            observer=hub,
            trace=trace,
            adequation_over_candidates=config.adequation_over_candidates,
            keep_records=config.keep_records,
        )
    else:
        policy = make_policy(
            policy_spec.name, root, sbqa=policy_spec.sbqa, params=policy_spec.params
        )
        mediator = make_mediator(
            config.engine,
            sim,
            network,
            registry,
            policy,
            observer=hub,
            trace=trace,
            adequation_over_candidates=config.adequation_over_candidates,
            keep_records=config.keep_records,
        )
    if shard_slice is not None:
        shard_slice.attach(config, population, mediator, hub)
    for consumer in population.consumers:
        consumer.attach_mediator(mediator)
        consumer.on_completion(hub.record_completion)
        if config.result_timeout is not None:
            consumer.result_timeout = config.result_timeout
            consumer.on_timeout(hub.record_timeout)

    # 4. workload ---------------------------------------------------------
    if workload is not None:
        workload.install(sim=sim, population=population, config=config, root=root)
    else:
        total_capacity = registry.total_capacity(online_only=False)
        rate_scale_of: Dict[str, float] = {
            project.name: project.rate_scale for project in config.population.projects
        }
        focal_consumer = config.population.focal_consumer
        if focal_consumer is not None:
            rate_scale_of[focal_consumer.participant_id] = focal_consumer.rate_scale
        for consumer in population.consumers:
            cid = consumer.participant_id
            # Slice workers start arrivals only for owned consumers;
            # skipping is stream-safe because every demand/arrival
            # stream is named per consumer (independent generators).
            if shard_slice is not None and not shard_slice.owns_consumer(cid):
                continue
            demand = config.population.make_demand_model(
                root.stream(f"workload/demand/{cid}")
            )
            arrivals = PoissonArrivals(
                sim,
                consumer,
                demand,
                rate=config.population.arrival_rate(
                    total_capacity, rate_scale_of.get(cid, 1.0)
                ),
                stream=root.stream(f"workload/arrivals/{cid}"),
                horizon=config.duration,
            )
            arrivals.start()

    # 5. autonomy ---------------------------------------------------------
    autonomy = config.autonomy
    if autonomy.is_captive:
        consumer_policy = provider_policy = CaptivePolicy()
    else:
        consumer_policy = SatisfactionDeparturePolicy(
            autonomy.consumer_threshold,
            min_observations=autonomy.min_observations,
            warmup=autonomy.warmup,
        )
        provider_policy = SatisfactionDeparturePolicy(
            autonomy.provider_threshold,
            min_observations=autonomy.min_observations,
            warmup=autonomy.warmup,
        )
    if shard_slice is None:
        churn_consumers, churn_providers = population.consumers, population.providers
    else:
        # The departure policy is deterministic per participant, so a
        # sweep over the owned sublists (relative order preserved)
        # reproduces exactly the serial sweep's owned subsequence.
        churn_consumers, churn_providers = shard_slice.churn_members(population)
    monitor = ChurnMonitor(
        sim,
        churn_consumers,
        churn_providers,
        consumer_policy,
        provider_policy,
        check_interval=autonomy.check_interval,
        rejoin_cooldown=autonomy.rejoin_cooldown,
    )
    monitor.on_departure(hub.record_departure)
    monitor.on_rejoin(hub.record_rejoin)
    monitor.start()

    # 5b. failure injection (crash extension) -----------------------------
    if config.failures is not None:
        injector = CrashInjector(
            sim, population.providers, config.failures, root.stream("failures")
        )
        injector.on_crash(hub.record_crash)
        injector.start()

    # 6. measurement ------------------------------------------------------
    if config.track_provider_snapshots:
        hub.enable_provider_snapshots()
    if shard_slice is not None:
        # Raw owned-participant rows on the same grid; the parent
        # replays the global sweeps (and the group series) exactly.
        shard_slice.install_sampler(sim, registry, interval=config.sample_interval)
    else:
        for consumer in population.consumers:
            hub.register_group(
                f"consumer:{consumer.participant_id}",
                "consumer",
                [consumer.participant_id],
            )
        for archetype in ARCHETYPES:
            members = [
                p.participant_id for p in population.providers_of_archetype(archetype)
            ]
            if members:
                hub.register_group(f"archetype:{archetype}", "provider", members)
        if config.population.focal_provider is not None:
            hub.register_group(
                "focal:provider",
                "provider",
                [config.population.focal_provider.participant_id],
            )
        hub.start_sampling(sim, registry, interval=config.sample_interval)

    return LiveRun(
        config=config,
        policy_spec=policy_spec,
        sim=sim,
        network=network,
        hub=hub,
        mediator=mediator,
        population=population,
    )


def run_once(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    replication: int = 0,
    trace: TraceRecorder = NULL_RECORDER,
) -> RunResult:
    """Execute one simulation run; deterministic in all arguments."""
    return wire_run(
        config, policy_spec, replication=replication, trace=trace
    ).finalize()


def run_policies(
    config: ExperimentConfig,
    policy_specs: List[PolicySpec],
    replication: int = 0,
) -> List[RunResult]:
    """Run the same experiment once per policy (same seed, same
    population draw -- the only varying factor is the technique)."""
    return [run_once(config, spec, replication=replication) for spec in policy_specs]
