"""Wire one full simulation run and execute it.

``run_once(config, policy_spec)`` performs the complete assembly that
the demo prototype's setup GUIs performed interactively:

1. kernel: simulator + latency-modelled network + seeded random root;
2. population: the BOINC-like consumers and providers;
3. mediation: the allocation policy under study, a mediator, and the
   metrics hub observing it;
4. workload: one Poisson arrival process per project;
5. autonomy: the churn monitor when the environment is autonomous;
6. measurement: periodic sampling plus per-group satisfaction series
   (per project, per provider archetype, focal probes);

then runs to the horizon and assembles a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.allocation.factory import make_policy
from repro.core.mediator import Mediator
from repro.des.network import Network, UniformLatency
from repro.des.rng import RandomRoot, spawn_replication_root
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.metrics.collectors import MetricsHub
from repro.metrics.summary import RunSummary, build_summary
from repro.system.autonomy import (
    CaptivePolicy,
    ChurnMonitor,
    SatisfactionDeparturePolicy,
)
from repro.system.failures import CrashInjector
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.boinc import BoincPopulation, build_boinc_population
from repro.workloads.preferences import ARCHETYPES


@dataclass
class RunResult:
    """Everything one run produced (summary + raw access for analysis)."""

    label: str
    config: ExperimentConfig
    policy_spec: PolicySpec
    summary: RunSummary
    hub: MetricsHub
    population: BoincPopulation
    mediator: Mediator

    @property
    def registry(self):
        return self.population.registry

    def participant_satisfaction(self, participant_id: str) -> float:
        """Final satisfaction of one participant (consumer or provider)."""
        registry = self.registry
        try:
            return registry.consumer(participant_id).satisfaction
        except KeyError:
            return registry.provider(participant_id).satisfaction


def run_once(
    config: ExperimentConfig,
    policy_spec: PolicySpec,
    replication: int = 0,
    trace: TraceRecorder = NULL_RECORDER,
) -> RunResult:
    """Execute one simulation run; deterministic in all arguments."""
    root = spawn_replication_root(config.seed, replication)

    # 1. kernel -----------------------------------------------------------
    sim = Simulator()
    latency = UniformLatency(
        config.latency_low, config.latency_high, root.stream("network/latency")
    )
    network = Network(sim, latency)

    # 2. population -------------------------------------------------------
    population = build_boinc_population(sim, network, root, config.population)
    registry = population.registry

    # 3. mediation --------------------------------------------------------
    hub = MetricsHub()
    policy = make_policy(
        policy_spec.name, root, sbqa=policy_spec.sbqa, params=policy_spec.params
    )
    mediator = Mediator(
        sim,
        network,
        registry,
        policy,
        observer=hub,
        trace=trace,
        adequation_over_candidates=config.adequation_over_candidates,
        keep_records=config.keep_records,
    )
    for consumer in population.consumers:
        consumer.attach_mediator(mediator)
        consumer.on_completion(hub.record_completion)
        if config.result_timeout is not None:
            consumer.result_timeout = config.result_timeout
            consumer.on_timeout(hub.record_timeout)

    # 4. workload ---------------------------------------------------------
    total_capacity = registry.total_capacity(online_only=False)
    rate_scale_of: Dict[str, float] = {
        project.name: project.rate_scale for project in config.population.projects
    }
    focal_consumer = config.population.focal_consumer
    if focal_consumer is not None:
        rate_scale_of[focal_consumer.participant_id] = focal_consumer.rate_scale
    for consumer in population.consumers:
        cid = consumer.participant_id
        demand = config.population.make_demand_model(
            root.stream(f"workload/demand/{cid}")
        )
        arrivals = PoissonArrivals(
            sim,
            consumer,
            demand,
            rate=config.population.arrival_rate(total_capacity, rate_scale_of.get(cid, 1.0)),
            stream=root.stream(f"workload/arrivals/{cid}"),
            horizon=config.duration,
        )
        arrivals.start()

    # 5. autonomy ---------------------------------------------------------
    autonomy = config.autonomy
    if autonomy.is_captive:
        consumer_policy = provider_policy = CaptivePolicy()
    else:
        consumer_policy = SatisfactionDeparturePolicy(
            autonomy.consumer_threshold,
            min_observations=autonomy.min_observations,
            warmup=autonomy.warmup,
        )
        provider_policy = SatisfactionDeparturePolicy(
            autonomy.provider_threshold,
            min_observations=autonomy.min_observations,
            warmup=autonomy.warmup,
        )
    monitor = ChurnMonitor(
        sim,
        population.consumers,
        population.providers,
        consumer_policy,
        provider_policy,
        check_interval=autonomy.check_interval,
        rejoin_cooldown=autonomy.rejoin_cooldown,
    )
    monitor.on_departure(hub.record_departure)
    monitor.on_rejoin(hub.record_rejoin)
    monitor.start()

    # 5b. failure injection (crash extension) -----------------------------
    if config.failures is not None:
        injector = CrashInjector(
            sim, population.providers, config.failures, root.stream("failures")
        )
        injector.on_crash(hub.record_crash)
        injector.start()

    # 6. measurement ------------------------------------------------------
    for consumer in population.consumers:
        hub.register_group(
            f"consumer:{consumer.participant_id}", "consumer", [consumer.participant_id]
        )
    for archetype in ARCHETYPES:
        members = [
            p.participant_id for p in population.providers_of_archetype(archetype)
        ]
        if members:
            hub.register_group(f"archetype:{archetype}", "provider", members)
    if config.population.focal_provider is not None:
        hub.register_group(
            "focal:provider", "provider", [config.population.focal_provider.participant_id]
        )
    if config.track_provider_snapshots:
        hub.enable_provider_snapshots()
    hub.start_sampling(sim, registry, interval=config.sample_interval)

    # run -------------------------------------------------------------
    sim.run_until(config.duration)

    summary = build_summary(
        policy_name=policy_spec.label,
        duration=config.duration,
        hub=hub,
        registry=registry,
        mediator=mediator,
        network=network,
    )
    return RunResult(
        label=policy_spec.label,
        config=config,
        policy_spec=policy_spec,
        summary=summary,
        hub=hub,
        population=population,
        mediator=mediator,
    )


def run_policies(
    config: ExperimentConfig,
    policy_specs: List[PolicySpec],
    replication: int = 0,
) -> List[RunResult]:
    """Run the same experiment once per policy (same seed, same
    population draw -- the only varying factor is the technique)."""
    return [run_once(config, spec, replication=replication) for spec in policy_specs]
