"""The seven demo scenarios of Section IV, as runnable experiments.

Each ``scenarioN_*`` function builds the configuration the demo
describes, runs every technique it compares, evaluates the paper's
qualitative claims as machine-checked :class:`Claim` objects, and
returns a :class:`ScenarioResult` whose :meth:`~ScenarioResult.report`
prints the tables and curves the demo GUIs displayed.

Scale parameters (``duration``, ``n_providers``, ``seed``) default to
the DESIGN.md reference scale; benches pass smaller values.  Claims are
*shape* checks: who wins, by roughly what factor -- absolute numbers
depend on the simulated substrate and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.analysis.prediction import predict_departures
from repro.api.presets import (
    sbqa_policy,
    scenario6_kn_values,
    scenario_autonomy,
    scenario_spec,
)
from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.experiments.config import DEFAULT_SEED
from repro.experiments.report import (
    DEFAULT_COLUMNS,
    render_claims,
    render_comparison,
    render_run_series,
)
from repro.experiments.runner import RunResult
from repro.system.autonomy import PAPER_PROVIDER_THRESHOLD
from repro.workloads.boinc import BoincScenarioParams


@dataclass(frozen=True)
class Claim:
    """One machine-checked qualitative claim from the paper."""

    description: str
    passed: bool
    details: str = ""


@dataclass
class ScenarioResult:
    """Everything one scenario produced."""

    scenario_id: str
    title: str
    description: str
    runs: List[RunResult]
    claims: List[Claim]
    columns: Sequence[str] = DEFAULT_COLUMNS
    extra_sections: List[str] = field(default_factory=list)

    @property
    def all_claims_pass(self) -> bool:
        return all(claim.passed for claim in self.claims)

    def run(self, label: str) -> RunResult:
        """The run with the given label (KeyError if absent)."""
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(f"no run labelled {label!r} in {self.scenario_id}")

    def report(self) -> str:
        """Multi-section textual report (tables + claims + curves)."""
        parts = [
            f"=== {self.scenario_id}: {self.title} ===",
            self.description.strip(),
            "",
            render_comparison(self.runs, columns=self.columns, title="Comparison"),
            "",
            render_run_series(self.runs, "provider_satisfaction"),
            "",
            render_run_series(self.runs, "consumer_satisfaction"),
            "",
            render_claims(self.claims),
        ]
        parts.extend("" + section for section in self.extra_sections)
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------
#
# Every scenario builds its preset :class:`ExperimentSpec` through
# :func:`repro.api.presets.scenario_spec` and executes it through a
# serial :class:`Session` -- the same objects `sbqa run --spec` and the
# builder API drive -- then layers the paper's machine-checked claims
# on top of the kept :class:`RunResult` objects.


def _scenario_runs(scenario_id: str, **kwargs) -> List[RunResult]:
    """Run a scenario's preset spec; one RunResult per policy."""
    return Session(scenario_spec(scenario_id, **kwargs)).run().runs


def _fraction_dissatisfied(run: RunResult, threshold: float = PAPER_PROVIDER_THRESHOLD) -> float:
    """Share of providers ending the run below ``threshold`` satisfaction."""
    providers = run.registry.providers
    if not providers:
        return 0.0
    low = sum(1 for p in providers if p.satisfaction < threshold)
    return low / len(providers)


def _archetype_departure_fraction(run: RunResult, archetype: str) -> float:
    """Share of an archetype's providers that left during the run."""
    members = run.population.providers_of_archetype(archetype)
    if not members:
        return 0.0
    return sum(1 for p in members if not p.online) / len(members)


def _claim(description: str, passed: bool, details: str) -> Claim:
    return Claim(description=description, passed=bool(passed), details=details)


# ----------------------------------------------------------------------
# Scenario 1 -- the satisfaction model analyses any technique (captive)
# ----------------------------------------------------------------------


def scenario1_satisfaction_model(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """Capacity-based vs economic allocation under the satisfaction lens.

    Captive environment (participants cannot quit -- BOINC as a grid
    platform over dedicated machines).  The claim demonstrated: the
    satisfaction model produces meaningful, comparable profiles for
    techniques whose allocation principles differ completely, and both
    interest-blind techniques leave an interest-driven minority of
    providers poorly satisfied.
    """
    runs = _scenario_runs(
        "scenario1", seed=seed, duration=duration, n_providers=n_providers
    )
    capacity, economic = runs

    sat_gap = abs(
        capacity.summary.provider_satisfaction_final
        - economic.summary.provider_satisfaction_final
    )
    frac_cap = _fraction_dissatisfied(capacity)
    frac_eco = _fraction_dissatisfied(economic)
    claims = [
        _claim(
            "model discriminates techniques with different principles",
            sat_gap > 0.02,
            f"|provider sat gap| = {sat_gap:.3f}",
        ),
        _claim(
            "interest-blind allocation leaves a dissatisfied provider minority",
            frac_cap > 0.10 and frac_eco > 0.10,
            f"fraction below {PAPER_PROVIDER_THRESHOLD}: capacity={frac_cap:.2f}, "
            f"economic={frac_eco:.2f}",
        ),
        _claim(
            "satisfaction values are well-defined for every participant",
            all(0.0 <= p.satisfaction <= 1.0 for r in runs for p in r.registry.providers)
            and all(0.0 <= c.satisfaction <= 1.0 for r in runs for c in r.registry.consumers),
            "all delta_s in [0, 1]",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario1",
        title="Satisfaction model over baseline techniques (captive)",
        description=__doc_section(scenario1_satisfaction_model),
        runs=runs,
        claims=claims,
    )


# ----------------------------------------------------------------------
# Scenario 2 -- predicting departures (autonomous baselines)
# ----------------------------------------------------------------------


def scenario2_departures(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """Baselines under churn: dissatisfaction predicts departures.

    Same population as Scenario 1, but BOINC is now volunteer computing:
    a provider leaves below satisfaction 0.35, a consumer below 0.5.
    The demonstration: the satisfaction trajectories identify who will
    leave -- the interest-starved archetypes -- and the baselines shed
    capacity.
    """
    runs = _scenario_runs(
        "scenario2", seed=seed, duration=duration, n_providers=n_providers
    )
    capacity, economic = runs

    picky_cap = _archetype_departure_fraction(capacity, "picky")
    enth_cap = _archetype_departure_fraction(capacity, "enthusiast")
    predictions = {
        run.label: predict_departures(run.hub, run.registry) for run in runs
    }
    claims = [
        _claim(
            "baselines lose providers by dissatisfaction",
            capacity.summary.provider_departures > 0
            and economic.summary.provider_departures > 0,
            f"departures: capacity={capacity.summary.provider_departures}, "
            f"economic={economic.summary.provider_departures}",
        ),
        _claim(
            "departures are predicted by interest profile (picky >> enthusiast)",
            picky_cap > enth_cap,
            f"capacity run: picky departed {picky_cap:.2f}, enthusiast {enth_cap:.2f}",
        ),
        _claim(
            "lost participants mean lost capacity",
            capacity.summary.capacity_remaining_fraction < 0.95,
            f"capacity remaining: {capacity.summary.capacity_remaining_fraction:.2f}",
        ),
        _claim(
            "every departed provider crossed the threshold",
            all(
                d.satisfaction < PAPER_PROVIDER_THRESHOLD
                for r in runs
                for d in r.hub.departures
                if d.kind == "provider"
            ),
            "departure satisfactions all below 0.35",
        ),
        _claim(
            "early dissatisfaction predicts later departure beyond chance "
            "(BOINC-equivalent dispatcher)",
            predictions["capacity"].true_positives >= 1
            and predictions["capacity"].precision > predictions["capacity"].base_rate,
            f"capacity: precision={predictions['capacity'].precision:.2f} vs "
            f"base rate={predictions['capacity'].base_rate:.2f} "
            f"(economic churns too fast for a single observation point; "
            f"see the prediction-quality section)",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario2",
        title="Departure prediction under autonomy (baselines)",
        description=__doc_section(scenario2_departures),
        runs=runs,
        claims=claims,
        extra_sections=[
            "Departure-prediction quality:\n"
            + "\n".join(
                f"  {label}: {report.format()}"
                for label, report in predictions.items()
            )
        ],
    )


# ----------------------------------------------------------------------
# Scenario 3 -- SbQA in captive environments
# ----------------------------------------------------------------------


def scenario3_captive(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """SbQA vs baselines where nobody can leave.

    The paper: "SbQA's performance is not far from those of baseline
    techniques ... suitable for captive environments even if it was not
    designed for".  Expected shape: response times within a small
    factor of the capacity baseline, satisfaction strictly higher.
    """
    runs = _scenario_runs(
        "scenario3", seed=seed, duration=duration, n_providers=n_providers
    )
    sbqa, capacity, economic = runs

    claims = [
        _claim(
            "SbQA satisfies providers better than both baselines",
            sbqa.summary.provider_satisfaction_final
            > capacity.summary.provider_satisfaction_final
            and sbqa.summary.provider_satisfaction_final
            > economic.summary.provider_satisfaction_final,
            f"provider sat: sbqa={sbqa.summary.provider_satisfaction_final:.3f}, "
            f"capacity={capacity.summary.provider_satisfaction_final:.3f}, "
            f"economic={economic.summary.provider_satisfaction_final:.3f}",
        ),
        _claim(
            "SbQA response time is not far from the best baseline (<= 2.5x)",
            sbqa.summary.mean_response_time
            <= 2.5 * max(1e-9, capacity.summary.mean_response_time),
            f"mean rt: sbqa={sbqa.summary.mean_response_time:.1f}s, "
            f"capacity={capacity.summary.mean_response_time:.1f}s",
        ),
        _claim(
            "no technique fails queries in the captive regime",
            all(r.summary.failure_rate < 0.01 for r in runs),
            f"failure rates: {[round(r.summary.failure_rate, 4) for r in runs]}",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario3",
        title="SbQA vs baselines, captive environment",
        description=__doc_section(scenario3_captive),
        runs=runs,
        claims=claims,
    )


# ----------------------------------------------------------------------
# Scenario 4 -- SbQA in autonomous environments
# ----------------------------------------------------------------------


def scenario4_autonomous(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """SbQA vs baselines under churn: preserving volunteers preserves
    performance.

    The paper's headline: "SbQA can significantly improve the
    performance of BOINC-based projects by preserving most volunteers
    online and hence more computational resources."
    """
    runs = _scenario_runs(
        "scenario4", seed=seed, duration=duration, n_providers=n_providers
    )
    sbqa, capacity, economic = runs

    claims = [
        _claim(
            "SbQA preserves more providers than both baselines",
            sbqa.summary.providers_remaining > capacity.summary.providers_remaining
            and sbqa.summary.providers_remaining > economic.summary.providers_remaining,
            f"providers online at end: sbqa={sbqa.summary.providers_remaining}, "
            f"capacity={capacity.summary.providers_remaining}, "
            f"economic={economic.summary.providers_remaining}",
        ),
        _claim(
            "SbQA preserves most volunteers (>= 60% online at end)",
            sbqa.summary.providers_remaining_fraction >= 0.60,
            f"sbqa fraction online: {sbqa.summary.providers_remaining_fraction:.2f}",
        ),
        _claim(
            "SbQA retains more aggregate computational capacity",
            sbqa.summary.capacity_remaining_fraction
            > capacity.summary.capacity_remaining_fraction
            and sbqa.summary.capacity_remaining_fraction
            > economic.summary.capacity_remaining_fraction,
            f"capacity remaining: sbqa={sbqa.summary.capacity_remaining_fraction:.2f}, "
            f"capacity={capacity.summary.capacity_remaining_fraction:.2f}, "
            f"economic={economic.summary.capacity_remaining_fraction:.2f}",
        ),
        _claim(
            "throughput is not materially worse than any baseline (>= 90%)",
            sbqa.summary.queries_completed
            >= 0.9
            * max(
                capacity.summary.queries_completed, economic.summary.queries_completed
            ),
            f"completed: sbqa={sbqa.summary.queries_completed}, "
            f"capacity={capacity.summary.queries_completed}, "
            f"economic={economic.summary.queries_completed}",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario4",
        title="SbQA vs baselines, autonomous environment",
        description=__doc_section(scenario4_autonomous),
        runs=runs,
        claims=claims,
        columns=tuple(DEFAULT_COLUMNS) + ("capacity_remaining_fraction",),
    )


# ----------------------------------------------------------------------
# Scenario 5 -- adaptation to participants' expectations
# ----------------------------------------------------------------------


def scenario5_expectation_adaptation(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """Participants switch to performance-only intentions; SbQA follows.

    "We modify the manner in which participants compute their
    intentions so that projects be interested only in response times
    and volunteers be interested in their load.  SbQA significantly
    improves response times and balances better queries among
    volunteers" -- i.e. the *same* allocation process becomes a load
    balancer when that is what participants want.
    """
    # Two populations, so two specs: the interest-driven arm runs SbQA
    # alone; the performance-driven arm is the scenario5 preset (SbQA
    # vs the dedicated load balancer).
    interests_spec = ExperimentSpec(
        name="scenario5-interests",
        seed=seed,
        duration=duration,
        population=BoincScenarioParams(n_providers=n_providers),
        autonomy=scenario_autonomy(False, duration),
        policies=(sbqa_policy("sbqa[interests]"),),
    )
    performance = Session(
        scenario_spec(
            "scenario5", seed=seed, duration=duration, n_providers=n_providers
        )
    ).run()

    run_interests = Session(interests_spec).run().runs[0]
    run_performance = performance.run("sbqa[performance]")
    run_capacity = performance.run("capacity")
    runs = [run_interests, run_performance, run_capacity]

    claims = [
        _claim(
            "performance intentions cut SbQA response times",
            run_performance.summary.mean_response_time
            < run_interests.summary.mean_response_time,
            f"mean rt: interests={run_interests.summary.mean_response_time:.1f}s, "
            f"performance={run_performance.summary.mean_response_time:.1f}s",
        ),
        _claim(
            "performance intentions balance load better (lower work gini)",
            run_performance.summary.work_gini < run_interests.summary.work_gini,
            f"work gini: interests={run_interests.summary.work_gini:.3f}, "
            f"performance={run_performance.summary.work_gini:.3f}",
        ),
        _claim(
            "adapted SbQA approaches the dedicated load balancer (<= 1.5x rt)",
            run_performance.summary.mean_response_time
            <= 1.5 * max(1e-9, run_capacity.summary.mean_response_time),
            f"mean rt: sbqa[performance]={run_performance.summary.mean_response_time:.1f}s, "
            f"capacity={run_capacity.summary.mean_response_time:.1f}s",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario5",
        title="Self-adaptation to participants' expectations",
        description=__doc_section(scenario5_expectation_adaptation),
        runs=runs,
        claims=claims,
        columns=tuple(DEFAULT_COLUMNS) + ("utilization_gini", "work_gini"),
    )


# ----------------------------------------------------------------------
# Scenario 6 -- adaptation to the application (kn and omega)
# ----------------------------------------------------------------------


def scenario6_application_adaptability(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    k: int = 20,
) -> ScenarioResult:
    """Tuning SbQA to the application by varying kn and omega.

    Small ``kn`` biases KnBest toward load balancing (low response
    times); ``kn = k`` biases toward interest matching.  ``omega = 0``
    scores by consumer intentions only, ``omega = 1`` by provider
    intentions only; Equation 2 sits in between adaptively.  Captive
    environment so the tuning effects are not confounded by churn.
    """
    runs = _scenario_runs(
        "scenario6", seed=seed, duration=duration, n_providers=n_providers, k=k
    )
    kn_values = scenario6_kn_values(k)

    by_label = {run.label: run for run in runs}
    rt_small_kn = by_label[f"sbqa[kn={kn_values[0]}]"].summary.mean_response_time
    rt_large_kn = by_label[f"sbqa[kn={kn_values[-1]}]"].summary.mean_response_time
    sat_small_kn = by_label[f"sbqa[kn={kn_values[0]}]"].summary.provider_satisfaction_final
    sat_large_kn = by_label[f"sbqa[kn={kn_values[-1]}]"].summary.provider_satisfaction_final
    cons_w0 = by_label["sbqa[w=0]"].summary.consumer_satisfaction_final
    cons_w1 = by_label["sbqa[w=1]"].summary.consumer_satisfaction_final
    prov_w0 = by_label["sbqa[w=0]"].summary.provider_satisfaction_final
    prov_w1 = by_label["sbqa[w=1]"].summary.provider_satisfaction_final
    adaptive = by_label["sbqa[w=adaptive]"].summary

    claims = [
        _claim(
            "small kn favours response time (kn=1 faster than kn=k)",
            rt_small_kn <= rt_large_kn,
            f"mean rt: kn={kn_values[0]} -> {rt_small_kn:.1f}s, "
            f"kn={kn_values[-1]} -> {rt_large_kn:.1f}s",
        ),
        _claim(
            "large kn favours provider interests (higher provider sat)",
            sat_large_kn >= sat_small_kn,
            f"provider sat: kn={kn_values[0]} -> {sat_small_kn:.3f}, "
            f"kn={kn_values[-1]} -> {sat_large_kn:.3f}",
        ),
        _claim(
            "omega=0 serves consumers better than omega=1",
            cons_w0 >= cons_w1,
            f"consumer sat: w=0 -> {cons_w0:.3f}, w=1 -> {cons_w1:.3f}",
        ),
        _claim(
            "omega=1 serves providers better than omega=0",
            prov_w1 >= prov_w0,
            f"provider sat: w=0 -> {prov_w0:.3f}, w=1 -> {prov_w1:.3f}",
        ),
        _claim(
            "adaptive omega balances both sides (between the extremes)",
            min(prov_w0, prov_w1) - 0.05
            <= adaptive.provider_satisfaction_final
            <= max(prov_w0, prov_w1) + 0.05,
            f"adaptive provider sat {adaptive.provider_satisfaction_final:.3f} vs "
            f"extremes [{min(prov_w0, prov_w1):.3f}, {max(prov_w0, prov_w1):.3f}]",
        ),
    ]
    return ScenarioResult(
        scenario_id="scenario6",
        title="Application adaptability: kn and omega tuning",
        description=__doc_section(scenario6_application_adaptability),
        runs=runs,
        claims=claims,
        columns=(
            "consumer_sat_final",
            "provider_sat_final",
            "mean_rt",
            "p95_rt",
            "utilization_gini",
            "work_gini",
        ),
    )


# ----------------------------------------------------------------------
# Scenario 7 -- playing a BOINC participant
# ----------------------------------------------------------------------


def scenario7_focal_participant(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
) -> ScenarioResult:
    """A focal consumer and provider with sharp interests probe every
    mediation.

    The demo let attendees set their own preferences and watch "which
    [mediations] allow her to reach her objectives", claiming that "the
    SQLB mediation used by SbQA is the only one that allows a
    participant to reach its objectives in all cases."  We replace the
    human with two deterministic probes: a volunteer who only loves the
    unpopular project, and a project that trusts a small provider
    subset.
    """
    runs = _scenario_runs(
        "scenario7", seed=seed, duration=duration, n_providers=n_providers
    )

    def focal_provider_sat(run: RunResult) -> float:
        return run.registry.provider("focal-provider").satisfaction

    def focal_consumer_sat(run: RunResult) -> float:
        return run.registry.consumer("focal-consumer").satisfaction

    sbqa = runs[0]
    others = runs[1:]
    # "Reach its objectives", operationalised: the provider probe wants
    # to work for its loved project and be clearly satisfied doing so
    # (well above the neutral 0.5); the consumer probe wants the best
    # service any mediation can give it (ties within `tolerance`).
    provider_objective = 0.7
    tolerance = 0.02
    best_consumer = max(focal_consumer_sat(r) for r in runs)

    def serves_both(run: RunResult) -> bool:
        return (
            focal_provider_sat(run) >= provider_objective
            and focal_consumer_sat(run) >= best_consumer - tolerance
        )

    claims = [
        _claim(
            "the focal provider reaches its objectives under SbQA (sat >= 0.7)",
            focal_provider_sat(sbqa) >= provider_objective,
            "focal provider sat: "
            + ", ".join(f"{r.label}={focal_provider_sat(r):.3f}" for r in runs),
        ),
        _claim(
            "the focal consumer reaches its objectives under SbQA (ties allowed)",
            focal_consumer_sat(sbqa) >= best_consumer - tolerance,
            "focal consumer sat: "
            + ", ".join(f"{r.label}={focal_consumer_sat(r):.3f}" for r in runs),
        ),
        _claim(
            "SbQA is the only mediation serving both probes at once",
            serves_both(sbqa) and not any(serves_both(r) for r in others),
            f"sbqa serves both: {serves_both(sbqa)}; baselines serving both: "
            f"{[r.label for r in others if serves_both(r)] or 'none'}",
        ),
    ]
    focal_table_rows = [
        f"{r.label}: focal provider sat={focal_provider_sat(r):.3f}, "
        f"focal consumer sat={focal_consumer_sat(r):.3f}"
        for r in runs
    ]
    return ScenarioResult(
        scenario_id="scenario7",
        title="Playing a BOINC participant (focal probes)",
        description=__doc_section(scenario7_focal_participant),
        runs=runs,
        claims=claims,
        extra_sections=["Focal satisfaction:\n" + "\n".join(focal_table_rows)],
    )


# ----------------------------------------------------------------------


def __doc_section(fn: Callable) -> str:
    """First paragraph block of a scenario docstring, for reports."""
    doc = fn.__doc__ or ""
    return "\n".join(line.strip() for line in doc.strip().splitlines())


#: Scenario id -> callable, for the CLI and the benches.
ALL_SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "scenario1": scenario1_satisfaction_model,
    "scenario2": scenario2_departures,
    "scenario3": scenario3_captive,
    "scenario4": scenario4_autonomous,
    "scenario5": scenario5_expectation_adaptation,
    "scenario6": scenario6_application_adaptability,
    "scenario7": scenario7_focal_participant,
}
