"""Rendering of scenario results: comparison tables, claims, series.

These produce the textual equivalents of the demo's GUIs: the
comparison table is what the "drawing results on-line" window (Figure
2b) summarised, the sparkline block is the curve view itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.analysis.ascii_plot import multi_sparkline
from repro.analysis.tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import RunResult
    from repro.experiments.scenarios import Claim

#: Default comparison columns: the metrics the demo narrates
#: (participants' satisfaction, response times) plus the churn outcome.
DEFAULT_COLUMNS = (
    "consumer_sat_final",
    "provider_sat_final",
    "mean_rt",
    "p95_rt",
    "throughput",
    "failure_rate",
    "providers_remaining",
    "provider_departures",
    "consumer_departures",
)

#: Short header names for the default columns.
_HEADERS = {
    "consumer_sat_final": "cons sat",
    "provider_sat_final": "prov sat",
    "consumer_sat_mean": "cons sat(avg)",
    "provider_sat_mean": "prov sat(avg)",
    "mean_rt": "mean rt (s)",
    "p95_rt": "p95 rt (s)",
    "tail_rt": "tail rt (s)",
    "throughput": "thpt (q/s)",
    "failure_rate": "fail rate",
    "providers_remaining": "prov online",
    "consumers_remaining": "cons online",
    "provider_departures": "prov left",
    "consumer_departures": "cons left",
    "capacity_remaining_fraction": "capacity left",
    "utilization_gini": "util gini",
    "work_gini": "work gini",
    "coordination_messages": "coord msgs",
}


def render_comparison(
    runs: Sequence["RunResult"],
    columns: Sequence[str] = DEFAULT_COLUMNS,
    title: Optional[str] = None,
) -> str:
    """One row per run, one column per selected summary metric."""
    headers = ["policy"] + [_HEADERS.get(col, col) for col in columns]
    rows = []
    for run in runs:
        flat = run.summary.as_dict()
        rows.append([run.label] + [flat[col] for col in columns])
    return render_table(headers, rows, title=title)


def render_claims(claims: Sequence["Claim"]) -> str:
    """PASS/FAIL table of the scenario's machine-checked claims."""
    headers = ["claim", "verdict", "observed"]
    rows = [
        [claim.description, "PASS" if claim.passed else "FAIL", claim.details]
        for claim in claims
    ]
    return render_table(headers, rows, title="Paper claims (shape checks)")


def render_run_series(
    runs: Sequence["RunResult"],
    series_name: str,
    width: int = 60,
    title: Optional[str] = None,
) -> str:
    """Sparkline per run of one sampled series (e.g. provider satisfaction)."""
    block: Dict[str, List[float]] = {}
    for run in runs:
        points = run.hub.series_map().get(series_name, [])
        block[run.label] = [value for _, value in points]
    body = multi_sparkline(block, width=width)
    if title:
        return f"{title}\n{body}"
    return f"{series_name} over time\n{body}"


def render_group_series(
    run: "RunResult",
    group_prefix: str = "",
    width: int = 60,
    title: Optional[str] = None,
) -> str:
    """Sparklines of a single run's group-satisfaction series."""
    block: Dict[str, List[float]] = {}
    for name, series in run.hub.group_satisfaction.items():
        if group_prefix and not name.startswith(group_prefix):
            continue
        block[name] = series.values
    body = multi_sparkline(block, width=width)
    header = title or f"{run.label}: group satisfaction"
    return f"{header}\n{body}"
