"""Declarative experiment configuration.

A run is fully described by ``(ExperimentConfig, PolicySpec,
replication index)``; the runner turns that triple into a wired
simulation.  Keeping configs plain data (decision D4) lets scenario
definitions, benches and the CLI share them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional

from repro.core.sbqa import SbQAConfig
from repro.federation.config import FederationConfig
from repro.system.autonomy import PAPER_CONSUMER_THRESHOLD, PAPER_PROVIDER_THRESHOLD
from repro.system.failures import FailureConfig
from repro.workloads.boinc import BoincScenarioParams

#: Library-wide default seed (see :func:`repro.des.rng.default_root`).
DEFAULT_SEED = 20090301


@dataclass(frozen=True)
class PolicySpec:
    """Names one allocation technique plus its parameters.

    ``label`` is the display name in tables; it defaults to ``name``
    and disambiguates sweep entries (e.g. ``sbqa[kn=1]``).
    """

    name: str
    label: str = ""
    sbqa: Optional[SbQAConfig] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            object.__setattr__(self, "label", self.name)


@dataclass(frozen=True)
class AutonomyConfig:
    """Churn settings: captive or threshold-driven departures.

    ``rejoin_cooldown`` (seconds) enables the rejoin extension: departed
    participants return with a fresh satisfaction window after the
    cooldown.  ``None`` (the paper's model) means departures are final.
    """

    mode: str = "captive"  # "captive" | "autonomous"
    provider_threshold: float = PAPER_PROVIDER_THRESHOLD
    consumer_threshold: float = PAPER_CONSUMER_THRESHOLD
    min_observations: int = 15
    warmup: float = 300.0
    check_interval: float = 15.0
    rejoin_cooldown: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in ("captive", "autonomous"):
            raise ValueError(f"mode must be 'captive' or 'autonomous', got {self.mode!r}")
        if self.rejoin_cooldown is not None and self.rejoin_cooldown <= 0:
            raise ValueError(
                f"rejoin_cooldown must be positive when set, got {self.rejoin_cooldown}"
            )

    @property
    def is_captive(self) -> bool:
        return self.mode == "captive"


@dataclass
class ExperimentConfig:
    """One experiment: population, workload, environment, measurement.

    ``engine`` selects the allocation runtime: ``"fast"`` (the default)
    runs the hot-path engine of :mod:`repro.core.engine`, which is
    bit-identical in results to ``"event"``, the event-faithful
    reference core -- the equivalence escape hatch used by the parity
    tests and available whenever per-message/per-event fidelity is
    wanted (e.g. when instrumenting the scheduler itself).
    """

    name: str = "experiment"
    seed: int = DEFAULT_SEED
    duration: float = 2400.0
    sample_interval: float = 10.0
    engine: str = "fast"

    population: BoincScenarioParams = field(default_factory=BoincScenarioParams)
    autonomy: AutonomyConfig = field(default_factory=AutonomyConfig)

    latency_low: float = 0.02
    latency_high: float = 0.08

    #: Sharded multi-mediator federation (see :mod:`repro.federation`);
    #: None runs the classic single mediator.  A scenario knob, not
    #: execution metadata: K>1 legitimately changes results (each shard
    #: sees a slice of the population), while ``shards=1`` is
    #: bit-identical to None.
    federation: Optional[FederationConfig] = None

    #: Crash injection (abrupt provider failures); None disables it.
    failures: Optional["FailureConfig"] = None
    #: Consumer result deadline in seconds; queries incomplete past it
    #: are written off.  Required for crash runs (lost results would
    #: otherwise hang forever); None disables timeouts.
    result_timeout: Optional[float] = None

    adequation_over_candidates: bool = False
    keep_records: bool = False
    #: Record every provider's satisfaction at each metric sweep
    #: (needed by the departure-prediction analysis of Scenario 2).
    track_provider_snapshots: bool = False

    def __post_init__(self) -> None:
        from repro.core.engine import resolve_engine

        self.engine = resolve_engine(self.engine)
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {self.sample_interval}"
            )
        if self.latency_low < 0 or self.latency_high < self.latency_low:
            raise ValueError(
                f"need 0 <= latency_low <= latency_high, got "
                f"[{self.latency_low}, {self.latency_high}]"
            )
        if self.result_timeout is not None and self.result_timeout <= 0:
            raise ValueError(
                f"result_timeout must be positive when set, got {self.result_timeout}"
            )
        if self.failures is not None and self.result_timeout is None:
            raise ValueError(
                "crash injection requires a result_timeout: lost results "
                "would otherwise leave queries pending forever"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """A copy with top-level fields replaced (scenario variants).

        Unknown keys raise immediately with the list of valid field
        names, instead of surfacing as a cryptic ``TypeError`` from
        :func:`dataclasses.replace` (typos like ``durration=`` or
        nested fields like ``n_providers=`` are the common mistakes).
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ValueError(
                f"unknown ExperimentConfig field(s): {', '.join(unknown)}. "
                f"Valid fields: {', '.join(sorted(valid))}. "
                "Population knobs (e.g. n_providers) live on "
                "config.population (BoincScenarioParams)."
            )
        return replace(self, **kwargs)
