"""Command-line interface: run scenarios, specs, and export their data.

Usage::

    sbqa list
    sbqa run scenario3 --duration 900 --providers 80 --seed 7
    sbqa run scenario4 --csv out.csv
    sbqa run scenario3 --replications 8 --parallel   # replicated session
    sbqa run --spec experiment.json                  # declarative spec file
    sbqa spec scenario4 -o experiment.json           # emit a preset spec
    sbqa trace --queries 3                      # Figure-1 pipeline trace
    sbqa sweep kn --values 1,2,5,10,20          # tuning tables
    sbqa sweep omega --values 0,0.5,1,adaptive

The CLI is a thin veneer over :mod:`repro.api` (spec / builder /
session) and :mod:`repro.experiments.scenarios`; it exists so the
reproduction can be driven without writing Python, mirroring how the
original demo was driven from its GUIs.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.export import series_to_csv
from repro.experiments.scenarios import ALL_SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sbqa",
        description="SbQA (ICDE 2009) reproduction: satisfaction-based query allocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    run = sub.add_parser(
        "run", help="run one scenario (or 'all'), or a JSON spec file"
    )
    run.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(ALL_SCENARIOS) + ["all"],
        default=None,
        help="scenario id (omit when using --spec)",
    )
    run.add_argument(
        "--spec", type=str, default=None,
        help="run a declarative ExperimentSpec JSON file instead of a scenario",
    )
    run.add_argument("--seed", type=int, default=None, help="root random seed")
    run.add_argument(
        "--duration", type=float, default=None, help="simulated seconds (default 2400)"
    )
    run.add_argument(
        "--providers", type=int, default=None, help="volunteer population size (default 120)"
    )
    run.add_argument(
        "--replications", type=int, default=None,
        help="replications per policy (switches to the comparison table output)",
    )
    run.add_argument(
        "--parallel", action="store_true",
        help="execute replications across worker processes",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker process count for --parallel (default: CPU count)",
    )
    run.add_argument(
        "--csv", type=str, default=None, help="export run data to CSV"
    )
    run.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="export the aggregated result digest to JSON (spec/session runs)",
    )

    spec_cmd = sub.add_parser(
        "spec", help="emit a scenario preset as an ExperimentSpec JSON file"
    )
    spec_cmd.add_argument(
        "scenario", choices=sorted(ALL_SCENARIOS), help="scenario id"
    )
    spec_cmd.add_argument(
        "-o", "--output", type=str, default=None,
        help="destination file (default: stdout)",
    )
    spec_cmd.add_argument("--seed", type=int, default=None)
    spec_cmd.add_argument("--duration", type=float, default=None)
    spec_cmd.add_argument("--providers", type=int, default=None)
    spec_cmd.add_argument("--replications", type=int, default=None)

    trace = sub.add_parser("trace", help="trace the SbQA mediation pipeline (Figure 1)")
    trace.add_argument("--queries", type=int, default=3, help="queries to trace")
    trace.add_argument("--seed", type=int, default=None, help="root random seed")

    sweep = sub.add_parser(
        "sweep", help="sweep one SbQA parameter and print the trade-off table"
    )
    sweep.add_argument(
        "parameter", choices=("kn", "omega", "epsilon", "memory"),
        help="which parameter to sweep",
    )
    sweep.add_argument(
        "--values", type=str, required=True,
        help="comma-separated values (e.g. '1,2,5,10' or '0,0.5,1,adaptive')",
    )
    sweep.add_argument("--seed", type=int, default=None)
    sweep.add_argument("--duration", type=float, default=1200.0)
    sweep.add_argument("--providers", type=int, default=80)
    sweep.add_argument("--k", type=int, default=20, help="KnBest pool size")
    sweep.add_argument("--csv", type=str, default=None, help="export rows to CSV")
    return parser


def _scenario_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.duration is not None:
        kwargs["duration"] = args.duration
    if args.providers is not None:
        kwargs["n_providers"] = args.providers
    return kwargs


def _print_session_result(
    result, args: argparse.Namespace, suffix: str = ""
) -> None:
    """Print the comparison table and export; ``suffix`` keeps per-
    scenario exports of a ``run all`` session from overwriting each
    other (``out.csv`` -> ``out.scenario2.csv``)."""

    def _suffixed(path: str) -> str:
        if not suffix:
            return path
        p = Path(path)
        return str(p.with_name(f"{p.stem}.{suffix}{p.suffix}"))

    print(result.comparison_table())
    if args.csv:
        path = _suffixed(args.csv)
        result.to_csv(path)
        print(f"replication data exported to {path}")
    if args.json_out:
        path = _suffixed(args.json_out)
        result.to_json(path)
        print(f"result digest exported to {path}")


def _run_spec_file(args: argparse.Namespace) -> int:
    """``sbqa run --spec experiment.json``: the declarative entry point."""
    from repro.api.builder import Experiment

    try:
        builder = Experiment.load(args.spec)
    except OSError as err:
        print(f"error: cannot read spec file: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: invalid spec {args.spec}: {err}", file=sys.stderr)
        return 2
    # CLI overrides rebuild the spec, so __post_init__ re-validates.
    if args.seed is not None:
        builder.seed(args.seed)
    if args.duration is not None:
        builder.duration(args.duration)
    if args.providers is not None:
        builder.providers(args.providers)
    if args.replications is not None:
        builder.replications(args.replications)
    try:
        session = builder.session()
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    # Only summaries are printed/exported: drop each full run (live
    # simulator + population) as soon as its summary is extracted.
    result = session.run(
        parallel=args.parallel, max_workers=args.workers, keep_runs=False
    )
    _print_session_result(result, args)
    return 0


def _run_session(args: argparse.Namespace) -> int:
    """``sbqa run scenarioN --replications R [--parallel]``: a replicated
    comparison over the scenario's preset spec."""
    from repro.api.presets import scenario_spec
    from repro.api.session import Session

    kwargs = _scenario_kwargs(args)
    if args.replications is not None:
        kwargs["replications"] = args.replications
    names = sorted(ALL_SCENARIOS) if args.scenario == "all" else [args.scenario]
    for name in names:
        try:
            spec = scenario_spec(name, **kwargs)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        result = Session(spec).run(
            parallel=args.parallel, max_workers=args.workers, keep_runs=False
        )
        _print_session_result(result, args, suffix=name if len(names) > 1 else "")
        print()
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    if args.spec is not None:
        if args.scenario is not None:
            print(
                "error: give either a scenario id or --spec FILE, not both",
                file=sys.stderr,
            )
            return 2
        return _run_spec_file(args)
    if args.scenario is None:
        print("error: give a scenario id or --spec FILE", file=sys.stderr)
        return 2
    if args.replications is not None or args.parallel:
        return _run_session(args)
    if args.json_out:
        print(
            "error: --json needs a session run (--spec, --replications "
            "or --parallel); the classic scenario path exports with --csv",
            file=sys.stderr,
        )
        return 2
    kwargs = _scenario_kwargs(args)

    names = sorted(ALL_SCENARIOS) if args.scenario == "all" else [args.scenario]
    combined = {}
    all_pass = True
    for name in names:
        result = ALL_SCENARIOS[name](**kwargs)
        print(result.report())
        print()
        all_pass = all_pass and result.all_claims_pass
        for run in result.runs:
            for series_name, points in run.hub.series_map().items():
                combined[f"{name}/{run.label}/{series_name}"] = points
    if args.csv:
        series_to_csv(combined, path=args.csv)
        print(f"series exported to {args.csv}")
    return 0 if all_pass else 1


def _emit_spec(args: argparse.Namespace) -> int:
    """``sbqa spec scenarioN -o file.json``: author spec files from presets."""
    from repro.api.presets import scenario_spec

    kwargs = _scenario_kwargs(args)
    if args.replications is not None:
        kwargs["replications"] = args.replications
    spec = scenario_spec(args.scenario, **kwargs)
    text = spec.to_json()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"spec written to {args.output}")
    else:
        print(text, end="")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    # Local imports keep CLI startup light for `sbqa list`.
    from repro.des.tracing import TraceRecorder
    from repro.experiments.config import DEFAULT_SEED, ExperimentConfig, PolicySpec
    from repro.experiments.runner import run_once
    from repro.workloads.boinc import BoincScenarioParams

    seed = DEFAULT_SEED if args.seed is None else args.seed
    recorder = TraceRecorder(enabled=True)
    config = ExperimentConfig(
        name="trace",
        seed=seed,
        duration=60.0,
        population=BoincScenarioParams(n_providers=20),
    )
    run_once(config, PolicySpec(name="sbqa"), trace=recorder)
    shown = 0
    for event in recorder.events:
        print(event.format())
        if event.category == "allocate":
            shown += 1
            if shown >= args.queries:
                break
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.export import rows_to_csv
    from repro.analysis.tables import render_table
    from repro.core.sbqa import SbQAConfig
    from repro.experiments.config import DEFAULT_SEED, ExperimentConfig, PolicySpec
    from repro.experiments.runner import run_once
    from repro.workloads.boinc import BoincScenarioParams

    seed = DEFAULT_SEED if args.seed is None else args.seed
    raw_values = [v.strip() for v in args.values.split(",") if v.strip()]
    if not raw_values:
        print("no sweep values given", file=sys.stderr)
        return 2

    headers = [
        args.parameter, "cons sat", "prov sat", "mean rt (s)",
        "p95 rt (s)", "work gini", "coord msgs",
    ]
    rows = []
    for raw in raw_values:
        population = BoincScenarioParams(n_providers=args.providers)
        sbqa_kwargs = {"k": args.k, "kn": max(1, args.k // 2)}
        if args.parameter == "kn":
            sbqa_kwargs["kn"] = int(raw)
        elif args.parameter == "omega":
            sbqa_kwargs["omega"] = raw if raw == "adaptive" else float(raw)
        elif args.parameter == "epsilon":
            sbqa_kwargs["epsilon"] = float(raw)
        elif args.parameter == "memory":
            population.memory = int(raw)
        config = ExperimentConfig(
            name=f"sweep-{args.parameter}-{raw}",
            seed=seed,
            duration=args.duration,
            population=population,
        )
        spec = PolicySpec(
            name="sbqa",
            label=f"sbqa[{args.parameter}={raw}]",
            sbqa=SbQAConfig(**sbqa_kwargs),
        )
        summary = run_once(config, spec).summary
        rows.append(
            [
                raw,
                summary.consumer_satisfaction_final,
                summary.provider_satisfaction_final,
                summary.mean_response_time,
                summary.p95_response_time,
                summary.work_gini,
                summary.coordination_messages,
            ]
        )
    print(
        render_table(headers, rows, title=f"SbQA {args.parameter} sweep (k={args.k})")
    )
    if args.csv:
        rows_to_csv(headers, rows, path=args.csv)
        print(f"\nrows exported to {args.csv}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``sbqa`` console script."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):  # pragma: no cover - capture streams
            pass
        return 0


def _dispatch(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(ALL_SCENARIOS):
            fn = ALL_SCENARIOS[name]
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {first_line}")
        return 0
    if args.command == "run":
        return _run_scenario(args)
    if args.command == "spec":
        return _emit_spec(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "sweep":
        return _run_sweep(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
