"""Command-line interface: run scenarios, specs, and export their data.

Usage::

    sbqa list
    sbqa run scenario3 --duration 900 --providers 80 --seed 7
    sbqa run scenario4 --csv out.csv
    sbqa run scenario3 --replications 8 --parallel   # replicated session
    sbqa run --spec experiment.json                  # declarative spec file
    sbqa spec scenario4 -o experiment.json           # emit a preset spec
    sbqa spec scenario3 --sweep "sbqa.omega=0,0.5,1,adaptive" -o grid.json
    sbqa trace --queries 3                      # Figure-1 pipeline trace
    sbqa sweep kn --values 1,2,5,10,20          # quick one-axis grids
    sbqa sweep omega --values 0,0.5,1,adaptive --replications 3
    sbqa sweep --spec grid.json --workers 4 --stream  # declarative grids
    sbqa tune --spec tune.json --stream         # budgeted adaptive tuning
    sbqa tune --spec tune.json --budget 80 --json digest.json
    sbqa workload flash-crowd --duration 60 -o crowd.json   # synthesize a trace
    sbqa workload record --spec experiment.json -o rec.json # arrivals of a run
    sbqa serve --trace crowd.json --speed 20 --exit-when-done
    sbqa serve --replay rec.json --digest-out digest.json   # parity replay

The CLI is a thin veneer over :mod:`repro.api` (spec / builder /
session / sweep) and :mod:`repro.experiments.scenarios`; it exists so
the reproduction can be driven without writing Python, mirroring how
the original demo was driven from its GUIs.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.export import series_to_csv
from repro.experiments.scenarios import ALL_SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sbqa",
        description="SbQA (ICDE 2009) reproduction: satisfaction-based query allocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios")

    run = sub.add_parser(
        "run", help="run one scenario (or 'all'), or a JSON spec file"
    )
    run.add_argument(
        "scenario",
        nargs="?",
        choices=sorted(ALL_SCENARIOS) + ["all"],
        default=None,
        help="scenario id (omit when using --spec)",
    )
    run.add_argument(
        "--spec", type=str, default=None,
        help="run a declarative ExperimentSpec JSON file instead of a scenario",
    )
    run.add_argument("--seed", type=int, default=None, help="root random seed")
    run.add_argument(
        "--duration", type=float, default=None, help="simulated seconds (default 2400)"
    )
    run.add_argument(
        "--providers", type=int, default=None, help="volunteer population size (default 120)"
    )
    run.add_argument(
        "--replications", type=int, default=None,
        help="replications per policy (switches to the comparison table output)",
    )
    run.add_argument(
        "--parallel", action="store_true",
        help="execute replications across worker processes",
    )
    run.add_argument(
        "--workers", type=int, default=None,
        help="with --parallel: replication pool size (default: CPU "
        "count); without --parallel: run each run's federation shard "
        "groups across this many worker processes (conservative-sync "
        "parallel execution, digest-identical to single-process runs; "
        "session runs)",
    )
    run.add_argument(
        "--csv", type=str, default=None, help="export run data to CSV"
    )
    run.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="export the aggregated result digest to JSON (spec/session runs)",
    )
    run.add_argument(
        "--engine", choices=("fast", "event"), default=None,
        help="allocation runtime: the hot-path engine (default) or the "
        "event-faithful reference; results are bit-identical "
        "(session runs: --spec, --replications or --parallel)",
    )
    run.add_argument(
        "--shards", type=int, default=None,
        help="shard the mediator into a K-way consistent-hash federation "
        "(K=1 is bit-identical to the single mediator; session runs)",
    )

    spec_cmd = sub.add_parser(
        "spec",
        help="emit a scenario preset as an ExperimentSpec (or, with "
        "--sweep, a SweepSpec) JSON file",
    )
    spec_cmd.add_argument(
        "scenario", choices=sorted(ALL_SCENARIOS), help="scenario id"
    )
    spec_cmd.add_argument(
        "-o", "--output", type=str, default=None,
        help="destination file (default: stdout)",
    )
    spec_cmd.add_argument("--seed", type=int, default=None)
    spec_cmd.add_argument("--duration", type=float, default=None)
    spec_cmd.add_argument("--providers", type=int, default=None)
    spec_cmd.add_argument("--replications", type=int, default=None)
    spec_cmd.add_argument(
        "--sweep", action="append", default=None, metavar="PATH=V1,V2,...",
        help="add a sweep axis (repeatable) and emit a SweepSpec instead; "
        "e.g. --sweep 'sbqa.omega=0,0.5,adaptive' --sweep "
        "'population.n_providers=40,120'",
    )
    spec_cmd.add_argument(
        "--zip", dest="zip_axes", action="store_true",
        help="advance all --sweep axes in lockstep instead of taking "
        "their cartesian product",
    )
    spec_cmd.add_argument(
        "--sweep-name", type=str, default=None,
        help="name of the emitted sweep (default: '<scenario>-sweep')",
    )

    trace = sub.add_parser("trace", help="trace the SbQA mediation pipeline (Figure 1)")
    trace.add_argument("--queries", type=int, default=3, help="queries to trace")
    trace.add_argument("--seed", type=int, default=None, help="root random seed")

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter grid (a SweepSpec file, or one quick axis) "
        "and print the trade-off table with significance annotations",
    )
    sweep.add_argument(
        "parameter", nargs="?", choices=("kn", "omega", "epsilon", "memory"),
        default=None,
        help="quick single-axis form: which SbQA parameter to sweep "
        "(omit when using --spec)",
    )
    sweep.add_argument(
        "--values", type=str, default=None,
        help="comma-separated values for the quick form "
        "(e.g. '1,2,5,10' or '0,0.5,1,adaptive')",
    )
    sweep.add_argument(
        "--spec", type=str, default=None,
        help="run a declarative SweepSpec JSON file (see `sbqa spec --sweep`)",
    )
    sweep.add_argument("--seed", type=int, default=None, help="root random seed")
    sweep.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds (quick-form default 1200; overrides the "
        "spec file's base)",
    )
    sweep.add_argument(
        "--providers", type=int, default=None,
        help="volunteer population size (quick-form default 80; overrides "
        "the spec file's base)",
    )
    sweep.add_argument(
        "--k", type=int, default=None,
        help="KnBest pool size (quick form only; default 20)",
    )
    sweep.add_argument(
        "--replications", type=int, default=None,
        help="replications per grid cell (>= 2 enables Welch t-test "
        "annotations; overrides the spec file's base)",
    )
    sweep.add_argument(
        "--parallel", action="store_true",
        help="execute the whole grid over a shared worker-process pool "
        "(no per-point barrier; results identical to serial)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker process count (implies --parallel; default: CPU count)",
    )
    sweep.add_argument(
        "--stream", action="store_true",
        help="print each grid point's aggregate as soon as it completes",
    )
    sweep.add_argument(
        "--csv", type=str, default=None,
        help="export tidy per-replication rows to CSV",
    )
    sweep.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="export the sweep digest (aggregates + Welch comparisons) to JSON",
    )
    sweep.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level for the table's best-cell stars and the "
        "digest (default 0.05; pairwise tables are Holm-corrected)",
    )
    sweep.add_argument(
        "--engine", choices=("fast", "event"), default=None,
        help="allocation runtime for every grid run (digests are "
        "engine-independent)",
    )
    sweep.add_argument(
        "--shards", type=int, default=None,
        help="shard every grid run's mediator into a K-way "
        "consistent-hash federation",
    )

    tune = sub.add_parser(
        "tune",
        help="race a parameter grid under a run budget (successive "
        "halving, Welch/Holm elimination) and report the winner plus "
        "the elimination trace",
    )
    tune.add_argument(
        "--spec", type=str, required=True,
        help="a declarative TuneSpec JSON file (see docs/tuning.md)",
    )
    tune.add_argument(
        "--budget", type=int, default=None,
        help="override the spec's total run budget (0 means unlimited)",
    )
    tune.add_argument(
        "--alpha", type=float, default=None,
        help="override the spec's family-wise elimination level",
    )
    tune.add_argument(
        "--objective", type=str, default=None,
        help="override the raced metric (an aggregated summary field)",
    )
    tune.add_argument(
        "--parallel", action="store_true",
        help="race each rung over a shared worker-process pool "
        "(results and elimination trace identical to serial)",
    )
    tune.add_argument(
        "--workers", type=int, default=None,
        help="worker process count (implies --parallel; default: CPU count)",
    )
    tune.add_argument(
        "--stream", action="store_true",
        help="print each rung's promotions and eliminations as decided",
    )
    tune.add_argument(
        "--csv", type=str, default=None,
        help="export tidy rows of the executed runs to CSV",
    )
    tune.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="export the tune digest (winner, trace, budget accounting) "
        "to JSON",
    )
    tune.add_argument(
        "--engine", choices=("fast", "event"), default=None,
        help="allocation runtime for every raced run (digests are "
        "engine-independent)",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark the hot-path allocation engine: mediation "
        "throughput (fast vs event vs seed-baseline) plus a fast/event "
        "digest-parity check; see docs/performance.md",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="small, CI-sized configuration (fewer mediations, shorter "
        "parity runs)",
    )
    bench.add_argument(
        "--mediations", type=int, default=None,
        help="mediations per timing sample (default 4000; smoke 1200)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="timing samples per engine, best-of (default 3)",
    )
    bench.add_argument(
        "--json", dest="json_out", type=str, default=None,
        help="write the bench record (BENCH_core.json layout) to a file",
    )
    bench.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail (exit 1) when the fast engine's mediation throughput "
        "is below this multiple of the seed baseline (default 2.0)",
    )
    bench.add_argument(
        "--min-mediate-per-s", type=float, default=None,
        help="fail (exit 1) when the fast engine's absolute mediation "
        "throughput is below this many mediations/second",
    )
    bench.add_argument(
        "--policy", action="append", default=None, metavar="NAME",
        help="policy to include in the fast-vs-event matrix (repeatable; "
        "default: the built-in matrix set)",
    )
    bench.add_argument(
        "--scale-providers", action="append", type=int, default=None,
        metavar="N",
        help="population size for the scaling axis and the registry "
        "lookup bench (repeatable; default 120/500/2000/10000, smoke "
        "120/600)",
    )
    bench.add_argument(
        "--max-n", type=int, default=None,
        help="cap the population axes at this N (drops larger default "
        "points; joins the grid itself when above every default point)",
    )
    bench.add_argument(
        "--shards", type=int, default=None,
        help="pin every federation point to this shard count instead of "
        "the proportional default schedule",
    )
    bench.add_argument(
        "--min-scaling-ratio", type=float, default=None,
        help="fail (exit 1) when the flat-engine flatness ratio (fast-"
        "engine throughput at max-N over min-N) is below this",
    )
    bench.add_argument(
        "--min-federation-ratio", type=float, default=None,
        help="fail (exit 1) when the federation flatness ratio "
        "(throughput at the largest federated point over the smallest) "
        "is below this",
    )
    bench.add_argument(
        "--min-parallel-speedup", type=float, default=None,
        help="fail (exit 1) when the parallel-federation speedup "
        "(serial wall-clock over the slowest shard-group slice at the "
        "best worker count) is below this",
    )
    bench.add_argument(
        "--serve", action="store_true",
        help="benchmark the serving subsystem instead: sustained open-"
        "loop queries/s and ingress-delay quantiles over the three "
        "synthetic trace shapes (BENCH_serve.json layout)",
    )

    workload = sub.add_parser(
        "workload",
        help="author open-loop workload traces: synthesize a diurnal / "
        "flash-crowd / heavy-tail shape, or record the arrivals of a "
        "closed run for bit-exact replay",
    )
    workload.add_argument(
        "shape", choices=("diurnal", "flash-crowd", "heavy-tail", "record"),
        help="synthetic shape to generate, or 'record' to capture a run",
    )
    workload.add_argument(
        "-o", "--output", type=str, default=None,
        help="destination trace file (default: stdout)",
    )
    workload.add_argument(
        "--spec", type=str, default=None,
        help="ExperimentSpec JSON file ('record' mode: the run to record; "
        "synthetic modes: source of the consumer population)",
    )
    workload.add_argument(
        "--policy", type=str, default=None,
        help="policy label to record under (default: the spec's first "
        "policy, or 'sbqa' without a spec)",
    )
    workload.add_argument("--seed", type=int, default=None, help="trace seed")
    workload.add_argument(
        "--duration", type=float, default=120.0,
        help="trace length in simulated seconds (default 120)",
    )
    workload.add_argument(
        "--base-rate", type=float, default=2.0,
        help="mean aggregate arrival rate of synthetic shapes "
        "(queries/second, default 2)",
    )
    workload.add_argument(
        "--consumers", type=str, default=None,
        help="comma-separated consumer ids of a synthetic trace "
        "(default: seti,proteins,einstein -- the paper population)",
    )
    workload.add_argument(
        "--param", action="append", default=None, metavar="NAME=VALUE",
        help="shape parameter override (repeatable), e.g. "
        "--param spike_factor=12 --param spike_start=20",
    )
    workload.add_argument(
        "--digest-out", type=str, default=None,
        help="'record' mode: also write the recording run's allocation "
        "digest JSON (the replay-parity target)",
    )

    serve = sub.add_parser(
        "serve",
        help="long-lived serving mode: accept queries over HTTP / stdin "
        "JSONL / a streamed trace, map wall-clock onto simulation time, "
        "expose live /metrics and an ASCII dashboard, shed load "
        "explicitly; see docs/serving.md",
    )
    serve.add_argument(
        "--spec", type=str, default=None,
        help="ExperimentSpec JSON file defining the served system "
        "(default: the paper population with an sbqa mediator)",
    )
    serve.add_argument(
        "--policy", type=str, default=None,
        help="policy label to serve with (default: the spec's first "
        "policy, or 'sbqa' without a spec)",
    )
    serve.add_argument("--seed", type=int, default=None, help="root random seed")
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serving horizon in simulated seconds (default: the spec's, "
        "or 3600 without a spec)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="HTTP port (default 0 = ephemeral, printed as SERVE_READY); "
        "-1 disables HTTP",
    )
    serve.add_argument(
        "--host", type=str, default="127.0.0.1", help="HTTP bind address"
    )
    serve.add_argument(
        "--speed", type=float, default=1.0,
        help="simulation seconds per wall-clock second (default 1)",
    )
    serve.add_argument(
        "--tick", type=float, default=0.05,
        help="wall seconds between clock advances (default 0.05)",
    )
    serve.add_argument(
        "--trace", type=str, default=None,
        help="trace file streamed open-loop as the clock reaches each "
        "arrival (synthetic or recorded)",
    )
    serve.add_argument(
        "--stdin", dest="read_stdin", action="store_true",
        help="accept JSONL submissions on stdin "
        '(one {"consumer_id": ...} object per line)',
    )
    serve.add_argument(
        "--exit-when-done", action="store_true",
        help="shut down once the horizon is reached and all feeds drained "
        "(trace-driven smoke runs)",
    )
    serve.add_argument(
        "--queue-capacity", type=int, default=None,
        help="bound on admitted-but-unserved queries (default: unbounded)",
    )
    serve.add_argument(
        "--shed-policy", choices=("drop-newest", "drop-oldest"),
        default="drop-newest",
        help="full-queue behaviour: reject the incoming query or evict "
        "the longest-waiting one (default drop-newest)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None,
        help="per-consumer sustained admission rate (queries/second of "
        "simulation time; default: unlimited)",
    )
    serve.add_argument(
        "--burst", type=float, default=10.0,
        help="token-bucket depth of --rate-limit (default 10)",
    )
    serve.add_argument(
        "--replay", type=str, default=None,
        help="replay a trace file to completion through the serve path "
        "(full ingestion, admit-everything) and print the allocation "
        "digest -- bit-identical to the batch engine's; no server runs",
    )
    serve.add_argument(
        "--digest-out", type=str, default=None,
        help="--replay mode: write the digest JSON to a file",
    )
    return parser


def _scenario_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.duration is not None:
        kwargs["duration"] = args.duration
    if args.providers is not None:
        kwargs["n_providers"] = args.providers
    return kwargs


def _print_session_result(
    result, args: argparse.Namespace, suffix: str = ""
) -> None:
    """Print the comparison table and export; ``suffix`` keeps per-
    scenario exports of a ``run all`` session from overwriting each
    other (``out.csv`` -> ``out.scenario2.csv``)."""

    def _suffixed(path: str) -> str:
        if not suffix:
            return path
        p = Path(path)
        return str(p.with_name(f"{p.stem}.{suffix}{p.suffix}"))

    print(result.comparison_table())
    if args.csv:
        path = _suffixed(args.csv)
        result.to_csv(path)
        print(f"replication data exported to {path}")
    if args.json_out:
        path = _suffixed(args.json_out)
        result.to_json(path)
        print(f"result digest exported to {path}")


def _run_spec_file(args: argparse.Namespace) -> int:
    """``sbqa run --spec experiment.json``: the declarative entry point."""
    from repro.api.builder import Experiment

    try:
        builder = Experiment.load(args.spec)
    except OSError as err:
        print(f"error: cannot read spec file: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: invalid spec {args.spec}: {err}", file=sys.stderr)
        return 2
    # CLI overrides rebuild the spec, so __post_init__ re-validates.
    if args.seed is not None:
        builder.seed(args.seed)
    if args.duration is not None:
        builder.duration(args.duration)
    if args.providers is not None:
        builder.providers(args.providers)
    if args.replications is not None:
        builder.replications(args.replications)
    if args.engine is not None:
        builder.engine(args.engine)
    if args.shards is not None:
        builder.shards(args.shards)
    try:
        session = builder.session()
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    # Only summaries are printed/exported: drop each full run (live
    # simulator + population) as soon as its summary is extracted.
    result = session.run(
        parallel=args.parallel,
        max_workers=args.workers if args.parallel else None,
        keep_runs=False,
        shard_workers=None if args.parallel else args.workers,
    )
    _print_session_result(result, args)
    return 0


def _run_session(args: argparse.Namespace) -> int:
    """``sbqa run scenarioN --replications R [--parallel]``: a replicated
    comparison over the scenario's preset spec."""
    from repro.api.presets import scenario_spec
    from repro.api.session import Session

    from repro.api.builder import ExperimentBuilder

    kwargs = _scenario_kwargs(args)
    if args.replications is not None:
        kwargs["replications"] = args.replications
    names = sorted(ALL_SCENARIOS) if args.scenario == "all" else [args.scenario]
    for name in names:
        try:
            spec = scenario_spec(name, **kwargs)
            if args.engine is not None or args.shards is not None:
                spec_builder = ExperimentBuilder(spec)
                if args.engine is not None:
                    spec_builder.engine(args.engine)
                if args.shards is not None:
                    spec_builder.shards(args.shards)
                spec = spec_builder.build()
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        result = Session(spec).run(
            parallel=args.parallel,
            max_workers=args.workers if args.parallel else None,
            keep_runs=False,
            shard_workers=None if args.parallel else args.workers,
        )
        _print_session_result(result, args, suffix=name if len(names) > 1 else "")
        print()
    return 0


def _run_scenario(args: argparse.Namespace) -> int:
    if args.spec is not None:
        if args.scenario is not None:
            print(
                "error: give either a scenario id or --spec FILE, not both",
                file=sys.stderr,
            )
            return 2
        return _run_spec_file(args)
    if args.scenario is None:
        print("error: give a scenario id or --spec FILE", file=sys.stderr)
        return 2
    if args.replications is not None or args.parallel or args.workers is not None:
        return _run_session(args)
    if args.json_out:
        print(
            "error: --json needs a session run (--spec, --replications "
            "or --parallel); the classic scenario path exports with --csv",
            file=sys.stderr,
        )
        return 2
    if args.engine is not None or args.shards is not None:
        print(
            "error: --engine/--shards need a session run (--spec, "
            "--replications or --parallel); the classic scenario path "
            "runs the default single-mediator engine",
            file=sys.stderr,
        )
        return 2
    kwargs = _scenario_kwargs(args)

    names = sorted(ALL_SCENARIOS) if args.scenario == "all" else [args.scenario]
    combined = {}
    all_pass = True
    for name in names:
        result = ALL_SCENARIOS[name](**kwargs)
        print(result.report())
        print()
        all_pass = all_pass and result.all_claims_pass
        for run in result.runs:
            for series_name, points in run.hub.series_map().items():
                combined[f"{name}/{run.label}/{series_name}"] = points
    if args.csv:
        series_to_csv(combined, path=args.csv)
        print(f"series exported to {args.csv}")
    return 0 if all_pass else 1


def _parse_axis_value(raw: str):
    """Coerce one CLI axis value: JSON scalar if it parses, else string."""
    import json

    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _parse_axis_arg(arg: str, zip_group: Optional[str]):
    """One ``--sweep 'path=v1,v2,...'`` argument as a SweepAxis."""
    from repro.api.sweep import SweepAxis

    path, sep, values_text = arg.partition("=")
    path = path.strip()
    raw_values = [v.strip() for v in values_text.split(",") if v.strip()]
    if not sep or not path or not raw_values:
        raise ValueError(
            f"bad sweep axis {arg!r}; expected 'path=v1,v2,...' "
            "(e.g. 'sbqa.omega=0,0.5,adaptive')"
        )
    return SweepAxis(
        path=path,
        values=tuple(_parse_axis_value(v) for v in raw_values),
        zip_group=zip_group,
    )


def _emit_spec(args: argparse.Namespace) -> int:
    """``sbqa spec scenarioN -o file.json``: author spec files from presets.

    With ``--sweep`` axes the emitted document is a :class:`SweepSpec`
    whose base is the scenario preset; otherwise an ``ExperimentSpec``.
    """
    from repro.api.presets import scenario_spec

    if not args.sweep and (args.zip_axes or args.sweep_name):
        print(
            "error: --zip and --sweep-name only apply together with "
            "--sweep axes; add at least one --sweep 'path=v1,v2,...'",
            file=sys.stderr,
        )
        return 2
    kwargs = _scenario_kwargs(args)
    if args.replications is not None:
        kwargs["replications"] = args.replications
    spec = scenario_spec(args.scenario, **kwargs)
    if args.sweep:
        from repro.api.sweep import SweepSpec

        zip_group = "zip" if args.zip_axes else None
        try:
            axes = tuple(_parse_axis_arg(arg, zip_group) for arg in args.sweep)
            spec = SweepSpec(
                name=args.sweep_name or f"{args.scenario}-sweep",
                base=spec,
                axes=axes,
            )
        except (ValueError, TypeError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
    text = spec.to_json()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"spec written to {args.output}")
    else:
        print(text, end="")
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    # Local imports keep CLI startup light for `sbqa list`.
    from repro.des.tracing import TraceRecorder
    from repro.experiments.config import DEFAULT_SEED, ExperimentConfig, PolicySpec
    from repro.experiments.runner import run_once
    from repro.workloads.boinc import BoincScenarioParams

    seed = DEFAULT_SEED if args.seed is None else args.seed
    recorder = TraceRecorder(enabled=True)
    config = ExperimentConfig(
        name="trace",
        seed=seed,
        duration=60.0,
        population=BoincScenarioParams(n_providers=20),
    )
    run_once(config, PolicySpec(name="sbqa"), trace=recorder)
    shown = 0
    for event in recorder.events:
        print(event.format())
        if event.category == "allocate":
            shown += 1
            if shown >= args.queries:
                break
    return 0


#: Quick-form parameter -> (axis dot-path, value coercion).
_QUICK_SWEEP_AXES = {
    "kn": ("sbqa.kn", int),
    "omega": ("sbqa.omega", lambda raw: raw if raw == "adaptive" else float(raw)),
    "epsilon": ("sbqa.epsilon", float),
    "memory": ("population.memory", int),
}


def _quick_sweep_spec(args: argparse.Namespace):
    """The quick form (``sbqa sweep kn --values 1,2,5``) as a SweepSpec."""
    from repro.api.builder import Experiment
    from repro.api.sweep import SweepAxis, SweepSpec
    from repro.experiments.config import DEFAULT_SEED

    raw_values = [v.strip() for v in args.values.split(",") if v.strip()]
    if not raw_values:
        raise ValueError("no sweep values given")
    path, coerce = _QUICK_SWEEP_AXES[args.parameter]
    values = tuple(coerce(raw) for raw in raw_values)
    base = (
        Experiment.builder()
        .named(f"sweep-{args.parameter}")
        .seed(DEFAULT_SEED if args.seed is None else args.seed)
        .duration(args.duration)
        .providers(args.providers)
        .policy("sbqa", k=args.k, kn=max(1, args.k // 2))
        # None means "default"; an explicit 0 must reach spec validation
        # and error out, matching the --spec path.
        .replications(1 if args.replications is None else args.replications)
        .build()
    )
    axis = SweepAxis(path=path, values=values, label=args.parameter)
    return SweepSpec(name=f"sweep-{args.parameter}", base=base, axes=(axis,))


def _sweep_spec_from_file(args: argparse.Namespace):
    """Load ``--spec grid.json``, applying base overrides.

    ``--seed``, ``--duration``, ``--providers`` and ``--replications``
    rewrite the loaded grid's *base* experiment, mirroring what
    ``sbqa run --spec`` accepts; points re-expand and re-validate
    around the overridden base (the spec caches its expansion, so it is
    rebuilt rather than mutated in place).
    """
    from repro.api.spec import ExperimentSpec
    from repro.api.sweep import SweepSpec

    spec = SweepSpec.load(args.spec)
    data = spec.base.to_dict()
    changed = False
    if args.seed is not None:
        data["seed"] = args.seed
        changed = True
    if args.duration is not None:
        data["duration"] = args.duration
        changed = True
    if args.providers is not None:
        data["population"]["n_providers"] = args.providers
        changed = True
    if args.replications is not None:
        data["replications"] = args.replications
        changed = True
    if changed:
        spec = SweepSpec(
            name=spec.name, base=ExperimentSpec.from_dict(data), axes=spec.axes
        )
    return spec


def _run_sweep(args: argparse.Namespace) -> int:
    """``sbqa sweep``: execute a parameter grid through the sweep engine."""
    from repro.api.sweep import SweepSession

    if args.spec is not None and args.parameter is not None:
        print(
            "error: give either a quick-form parameter or --spec FILE, not both",
            file=sys.stderr,
        )
        return 2
    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.spec is not None:
            if args.k is not None:
                print(
                    "error: --k applies to the quick form only; sweep the "
                    "pool size of a spec file with an 'sbqa.k' axis",
                    file=sys.stderr,
                )
                return 2
            if args.values is not None:
                print(
                    "error: --values applies to the quick form only; a "
                    "spec file's axes carry their own values",
                    file=sys.stderr,
                )
                return 2
            spec = _sweep_spec_from_file(args)
        elif args.parameter is not None:
            if args.values is None:
                print("error: the quick form needs --values", file=sys.stderr)
                return 2
            # Quick-form defaults; None elsewhere so the --spec path can
            # distinguish "explicitly passed" from "untouched".
            if args.duration is None:
                args.duration = 1200.0
            if args.providers is None:
                args.providers = 80
            if args.k is None:
                args.k = 20
            spec = _quick_sweep_spec(args)
        else:
            print("error: give a parameter or --spec FILE", file=sys.stderr)
            return 2
    except OSError as err:
        print(f"error: cannot read sweep spec: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.engine is not None or args.shards is not None:
        from repro.api.spec import ExperimentSpec
        from repro.api.sweep import SweepSpec

        base = spec.base.to_dict()
        if args.engine is not None:
            base["engine"] = args.engine
        if args.shards is not None:
            base["federation"] = dict(
                base.get("federation") or {}, shards=args.shards
            )
        spec = SweepSpec(
            name=spec.name,
            base=ExperimentSpec.from_dict(base),
            axes=spec.axes,
            keep_runs=spec.keep_runs,
        )

    session = SweepSession(spec)
    parallel = args.parallel or args.workers is not None
    stream = session.stream(parallel=parallel, max_workers=args.workers)
    if args.stream:
        # Partial tables while the grid runs: one block per completed
        # point (completion order in parallel mode; identical final
        # aggregate regardless).
        for event in stream:
            if event.point_result is None:
                continue
            print(
                f"[{event.completed}/{event.total} runs] "
                f"point {event.point_result.label}:"
            )
            for policy in event.point_result.policies:
                print(
                    f"  {policy.label}: cons sat {policy.cell('consumer_sat_final')}, "
                    f"prov sat {policy.cell('provider_sat_final')}, "
                    f"mean rt {policy.cell('mean_rt')}s"
                )
        print()
    result = stream.result()
    title = (
        f"SbQA {args.parameter} sweep (k={args.k})"
        if args.parameter is not None
        else None
    )
    print(result.table(title=title, alpha=args.alpha))
    if args.csv:
        result.to_csv(args.csv)
        print(f"\ntidy rows exported to {args.csv}")
    if args.json_out:
        result.to_json(args.json_out, alpha=args.alpha)
        print(f"sweep digest exported to {args.json_out}")
    return 0


def _tune_spec_from_file(args: argparse.Namespace):
    """Load ``--spec tune.json``, applying the CLI overrides.

    ``--budget`` / ``--alpha`` / ``--objective`` rebuild the spec, so
    ``__post_init__`` re-validates the overridden combination (a budget
    too small for the first rung fails here, not mid-race).  A
    ``--budget`` of 0 lifts the cap entirely.
    """
    from repro.api.tune import TuneSpec

    spec = TuneSpec.load(args.spec)
    changed = False
    data = spec.to_dict()
    if args.budget is not None:
        data["budget"] = None if args.budget <= 0 else args.budget
        changed = True
    if args.alpha is not None:
        data["alpha"] = args.alpha
        changed = True
    if args.objective is not None:
        data["objective"] = args.objective
        # A direction pinned in the file belonged to the file's metric;
        # the overriding metric gets its own natural direction.
        data["direction"] = None
        changed = True
    if changed:
        spec = TuneSpec.from_dict(data)
    return spec


def _run_tune(args: argparse.Namespace) -> int:
    """``sbqa tune``: race a grid through the adaptive tuner."""
    from repro.api.tune import TuneRungEvent, TuneSession, TuneStopEvent

    if args.workers is not None and args.workers < 1:
        print(
            f"error: --workers must be >= 1, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    try:
        spec = _tune_spec_from_file(args)
        if args.engine is not None:
            from repro.api.tune import TuneSpec

            data = spec.to_dict()
            data["sweep"]["base"]["engine"] = args.engine
            spec = TuneSpec.from_dict(data)
    except OSError as err:
        print(f"error: cannot read tune spec: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    session = TuneSession(spec)
    parallel = args.parallel or args.workers is not None
    stream = session.stream(parallel=parallel, max_workers=args.workers)
    if args.stream:
        for event in stream:
            if isinstance(event, TuneRungEvent):
                record = event.record
                budget = (
                    "unlimited"
                    if record.budget_remaining is None
                    else f"{record.budget_remaining} left"
                )
                print(
                    f"[rung {record.rung + 1}/{len(spec.rungs)}] "
                    f"{len(record.contenders)} contender(s) at "
                    f"{record.replications} rep(s); incumbent "
                    f"{record.incumbent}; {record.runs_total} run(s) so far, "
                    f"budget {budget}"
                )
                for elimination in record.eliminated:
                    print(
                        f"  - eliminated {elimination.label}: "
                        f"{spec.objective} {elimination.mean:.4f} vs "
                        f"{elimination.incumbent_mean:.4f} "
                        f"(p_holm={elimination.p_adjusted:.4f})"
                    )
            elif isinstance(event, TuneStopEvent):
                print(f"budget exhausted: {event.reason}")
        print()
    result = stream.result()
    print(result.table())
    winner = result.winner
    print(
        f"\nwinner: {winner.label} "
        f"({spec.objective} {result.objective_cell(winner)}, "
        f"{result.runs_saved} of {result.exhaustive_runs} runs saved)"
    )
    if args.csv:
        result.to_csv(args.csv)
        print(f"tidy rows exported to {args.csv}")
    if args.json_out:
        result.to_json(args.json_out)
        print(f"tune digest exported to {args.json_out}")
    return 0


def _serve_config(args: argparse.Namespace):
    """The ``(ExperimentConfig, PolicySpec)`` pair serve/workload act on.

    From ``--spec`` when given (``--policy`` selects among its policies
    by label), else the paper population under an SbQA mediator.
    """
    from repro.experiments.config import ExperimentConfig, PolicySpec

    if args.spec is not None:
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec.load(args.spec)
        config = spec.to_config()
        if args.policy is None:
            policy = spec.policies[0]
        else:
            matches = [p for p in spec.policies if p.label == args.policy]
            if not matches:
                raise ValueError(
                    f"spec has no policy labelled {args.policy!r}; available: "
                    f"{', '.join(p.label for p in spec.policies)}"
                )
            policy = matches[0]
    else:
        config = ExperimentConfig(name="serve")
        policy = PolicySpec(name="sbqa" if args.policy is None else args.policy)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    duration = getattr(args, "duration", None)
    if duration is not None:
        overrides["duration"] = duration
    elif args.spec is None and getattr(args, "command", "") == "serve":
        overrides["duration"] = 3600.0
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config, policy


def _run_workload(args: argparse.Namespace) -> int:
    """``sbqa workload``: synthesize or record open-loop traces."""
    import json

    from repro.workloads.traces import TraceSpec, record_trace

    try:
        if args.shape == "record":
            if args.base_rate != 2.0 or args.consumers or args.param:
                print(
                    "error: --base-rate/--consumers/--param apply to "
                    "synthetic shapes only; 'record' captures a run's own "
                    "arrivals",
                    file=sys.stderr,
                )
                return 2
            config, policy = _serve_config(args)
            trace, result = record_trace(config, policy)
            digest = result.digest()
            if args.digest_out:
                Path(args.digest_out).write_text(
                    json.dumps(
                        {"digest": digest, "experiment": config.name,
                         "policy": policy.label, "seed": config.seed},
                        indent=2, sort_keys=True,
                    ) + "\n",
                    encoding="utf-8",
                )
            print(f"recorded {len(trace)} arrivals; digest {digest}", file=sys.stderr)
        else:
            if args.digest_out:
                print(
                    "error: --digest-out applies to 'record' mode only",
                    file=sys.stderr,
                )
                return 2
            from repro.experiments.config import DEFAULT_SEED

            consumers = tuple(
                c.strip() for c in (args.consumers or "seti,proteins,einstein").split(",")
                if c.strip()
            )
            params = {}
            for raw in args.param or ():
                name, sep, value = raw.partition("=")
                if not sep:
                    raise ValueError(
                        f"bad --param {raw!r}; expected NAME=VALUE"
                    )
                params[name.strip()] = float(value)
            trace = TraceSpec(
                name=f"{args.shape}-{args.duration:g}s",
                shape=args.shape,
                duration=args.duration,
                seed=DEFAULT_SEED if args.seed is None else args.seed,
                base_rate=args.base_rate,
                params=params,
                consumers=consumers,
            )
            n = len(trace.materialize())
            print(f"{args.shape}: {n} arrivals over {args.duration:g}s", file=sys.stderr)
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.output:
        trace.save(args.output)
        print(f"trace written to {args.output}")
    else:
        print(trace.to_json(), end="")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """``sbqa serve``: the long-lived serving mode (docs/serving.md)."""
    import json

    from repro.serve.admission import AdmissionConfig
    from repro.serve.engine import ServeEngine
    from repro.workloads.traces import TraceSpec

    try:
        config, policy = _serve_config(args)
        if args.replay is not None:
            if args.trace or args.read_stdin:
                print(
                    "error: --replay is a batch parity check; it takes no "
                    "--trace/--stdin feeds",
                    file=sys.stderr,
                )
                return 2
            trace = TraceSpec.load(args.replay)
            engine = ServeEngine(config, policy)
            result = engine.replay(trace)
            payload = {
                "digest": result.digest(),
                "trace": trace.name,
                "arrivals": len(trace.materialize(engine.consumer_ids())),
                "policy": policy.label,
                "seed": config.seed,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            if args.digest_out:
                Path(args.digest_out).write_text(
                    json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                print(f"digest written to {args.digest_out}", file=sys.stderr)
            return 0
        if args.digest_out:
            print(
                "error: --digest-out applies to --replay mode only; live "
                "sessions flush SERVE_FINAL (with digest) on shutdown",
                file=sys.stderr,
            )
            return 2
        admission = AdmissionConfig(
            queue_capacity=args.queue_capacity,
            shed_policy=args.shed_policy,
            rate_limit=args.rate_limit,
            burst=args.burst,
        )
        engine = ServeEngine(config, policy, admission=admission)
        trace = TraceSpec.load(args.trace) if args.trace else None
        from repro.serve.server import ServeServer

        server = ServeServer(
            engine,
            host=args.host,
            port=None if args.port < 0 else args.port,
            speed=args.speed,
            tick_interval=args.tick,
            trace=trace,
            read_stdin=args.read_stdin,
            exit_when_done=args.exit_when_done,
        )
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    server.run()
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """``sbqa bench``: the core hot-path bench (see docs/performance.md)."""
    if args.serve:
        from repro.perf.servebench import format_serve_report, run_serve_bench, write_serve_record

        record = run_serve_bench(smoke=args.smoke, repeats=args.repeats)
        print(format_serve_report(record))
        if args.json_out:
            write_serve_record(record, args.json_out)
            print(f"\nbench record written to {args.json_out}")
        return 0

    from repro.perf.hotpath import format_report, run_bench, write_record

    record = run_bench(
        smoke=args.smoke,
        mediations=args.mediations,
        repeats=args.repeats,
        policies=args.policy,
        scale_providers=args.scale_providers,
        max_n=args.max_n,
        shards=args.shards,
    )
    print(format_report(record))
    if args.json_out:
        write_record(record, args.json_out)
        print(f"\nbench record written to {args.json_out}")
    parity = record["parity"]
    if not parity["identical"]:
        print(
            "error: fast and event engines produced different digests",
            file=sys.stderr,
        )
        return 1
    if not parity.get("scalar_identical", True):
        print(
            "error: fused kernel and scalar oracle produced different "
            "digests",
            file=sys.stderr,
        )
        return 1
    if args.min_mediate_per_s is not None:
        mediate_per_s = record["throughput"]["fast"]["mediate_per_s"]
        if mediate_per_s < args.min_mediate_per_s:
            print(
                f"error: fast-engine throughput {mediate_per_s:,.0f}/s is "
                f"below the required {args.min_mediate_per_s:,.0f}/s",
                file=sys.stderr,
            )
            return 1
    speedup = record["speedup"]["fast_vs_seed"]
    if speedup < args.min_speedup:
        print(
            f"error: fast-engine speedup {speedup:.2f}x is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.min_scaling_ratio is not None:
        scaling_ratio = record["speedup"]["scaling_ratio"]
        if scaling_ratio < args.min_scaling_ratio:
            print(
                f"error: scaling flatness {scaling_ratio:.2f}x (fast-engine "
                f"throughput at max-N over min-N) is below the required "
                f"{args.min_scaling_ratio:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.min_federation_ratio is not None:
        flat_ratio = record["federation"]["flat_ratio"]
        if flat_ratio < args.min_federation_ratio:
            print(
                f"error: federation flatness {flat_ratio:.2f}x is below "
                f"the required {args.min_federation_ratio:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.min_parallel_speedup is not None:
        parallel_speedup = record["speedup"]["parallel_vs_serial"]
        if parallel_speedup < args.min_parallel_speedup:
            print(
                f"error: parallel-federation speedup "
                f"{parallel_speedup:.2f}x is below the required "
                f"{args.min_parallel_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``sbqa`` console script."""
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise a second time.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):  # pragma: no cover - capture streams
            pass
        return 0


def _dispatch(argv: Optional[List[str]]) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(ALL_SCENARIOS):
            fn = ALL_SCENARIOS[name]
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}: {first_line}")
        return 0
    if args.command == "run":
        return _run_scenario(args)
    if args.command == "spec":
        return _emit_spec(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "tune":
        return _run_tune(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "workload":
        return _run_workload(args)
    if args.command == "serve":
        return _run_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
