"""Aggregated experiment outcomes: :class:`ExperimentResult` and friends.

One :class:`Session.run` produces one :class:`ExperimentResult`: a
:class:`PolicyResult` per compared policy, each holding the per-
replication :class:`RunSummary` values (and, in serial mode, the full
:class:`RunResult` objects for deep inspection).  The aggregate unifies
what ``RunResult`` / ``AggregateResult`` / ``ScenarioResult`` exposed
separately: comparison tables, mean +- stdev cells, CSV and JSON
export.

One :class:`SweepSession.run` produces one :class:`SweepResult`: a
:class:`SweepPointResult` (point metadata + the point's
``ExperimentResult``) per grid point, plus the cross-point analysis
layer -- pairwise Welch t-tests between policies within each point,
best-per-metric cells annotated with their significance against the
runner-up, tidy long-format CSV, and a JSON digest that is independent
of *how* the sweep executed (serial, parallel, streamed), so parity can
be checked byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.export import rows_to_csv
from repro.analysis.stats import mean, stdev
from repro.analysis.tables import render_table
from repro.experiments.config import PolicySpec
from repro.experiments.replication import AGGREGATED_FIELDS, AggregateResult
from repro.experiments.report import DEFAULT_COLUMNS, _HEADERS
from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.significance import Comparison
    from repro.api.spec import ExperimentSpec
    from repro.api.sweep import SweepPoint, SweepSpec
    from repro.experiments.runner import RunResult

#: Metrics the sweep digest compares pairwise between policies.
DEFAULT_COMPARISON_METRICS = (
    "consumer_sat_final",
    "provider_sat_final",
    "mean_rt",
)

#: Columns of the default sweep trade-off table: the quality metrics
#: plus the coordination cost -- the two sides of the paper's
#: allocation-quality vs overhead trade-off.
DEFAULT_SWEEP_COLUMNS = (
    "consumer_sat_final",
    "provider_sat_final",
    "mean_rt",
    "p95_rt",
    "work_gini",
    "coordination_messages",
)

#: Aggregated metrics where smaller values are better (response times,
#: failure and imbalance measures, departures); everything else --
#: satisfaction, throughput, survivors -- is maximized.
_MINIMIZED_METRICS = frozenset(
    {
        "mean_rt",
        "p95_rt",
        "tail_rt",
        "failure_rate",
        "utilization_gini",
        "work_gini",
        "provider_departures",
        "consumer_departures",
        "coordination_messages",
    }
)


def metric_minimizes(metric: str) -> bool:
    """Whether lower values of one aggregated metric are better."""
    return metric in _MINIMIZED_METRICS


@dataclass
class PolicyResult:
    """All replications of one policy within an experiment."""

    policy: PolicySpec
    summaries: List[RunSummary]
    #: Full run objects, serial execution with ``keep_runs`` only.
    runs: List["RunResult"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.policy.label

    @property
    def replications(self) -> int:
        return len(self.summaries)

    @property
    def summary(self) -> RunSummary:
        """The first replication's summary (the common single-rep case)."""
        return self.summaries[0]

    def run(self, replication: int = 0) -> "RunResult":
        """The full :class:`RunResult` of one replication.

        Available only after serial execution with ``keep_runs`` (the
        parallel path ships summaries back from worker processes, not
        live simulation objects).
        """
        if not self.runs:
            raise RuntimeError(
                f"no RunResults kept for policy {self.label!r}; "
                "run the session serially with keep_runs=True to inspect runs"
            )
        return self.runs[replication]

    def values(self, key: str) -> List[float]:
        """The per-replication values of one aggregated summary field."""
        if key not in AGGREGATED_FIELDS:
            raise KeyError(
                f"field {key!r} is not aggregated; "
                f"aggregated fields: {', '.join(AGGREGATED_FIELDS)}"
            )
        return [float(s.as_dict()[key]) for s in self.summaries]

    @property
    def means(self) -> Dict[str, float]:
        return {key: mean(self.values(key)) for key in AGGREGATED_FIELDS}

    @property
    def stdevs(self) -> Dict[str, float]:
        return {key: stdev(self.values(key)) for key in AGGREGATED_FIELDS}

    def cell(self, key: str, decimals: int = 3) -> str:
        """``mean +- stdev`` rendering of one aggregated field."""
        values = self.values(key)
        if len(values) == 1:
            return f"{values[0]:.{decimals}f}"
        return f"{mean(values):.{decimals}f}±{stdev(values):.{decimals}f}"

    def __getitem__(self, key: str) -> float:
        return mean(self.values(key))

    def aggregate(self) -> AggregateResult:
        """Bridge to the legacy :class:`AggregateResult` shape."""
        return AggregateResult(
            label=self.label,
            replications=self.replications,
            means=self.means,
            stdevs=self.stdevs,
            runs=list(self.runs),
        )


@dataclass
class ExperimentResult:
    """Everything one executed experiment produced."""

    spec: "ExperimentSpec"
    policies: List[PolicyResult]
    parallel: bool = False

    @property
    def labels(self) -> List[str]:
        return [p.label for p in self.policies]

    def policy(self, label: str) -> PolicyResult:
        """The results of the policy with the given label."""
        for policy in self.policies:
            if policy.label == label:
                return policy
        raise KeyError(f"no policy labelled {label!r}; have {self.labels}")

    @property
    def runs(self) -> List["RunResult"]:
        """All kept runs, (policy, replication) ordered; serial only."""
        return [run for policy in self.policies for run in policy.runs]

    def run(self, label: str, replication: int = 0) -> "RunResult":
        """One policy's full run (serial execution with kept runs)."""
        return self.policy(label).run(replication)

    def best(self, key: str, minimize: bool = False) -> PolicyResult:
        """The policy with the best mean value of one aggregated field."""
        chooser = min if minimize else max
        return chooser(self.policies, key=lambda p: p[key])

    # ------------------------------------------------------------------
    # Tables and export
    # ------------------------------------------------------------------

    def comparison_table(
        self,
        columns: Sequence[str] = DEFAULT_COLUMNS,
        decimals: int = 3,
        title: Optional[str] = None,
    ) -> str:
        """One row per policy; ``mean±stdev`` cells when replicated."""
        headers = ["policy"] + [_HEADERS.get(col, col) for col in columns]
        rows = [
            [policy.label] + [policy.cell(col, decimals) for col in columns]
            for policy in self.policies
        ]
        if title is None:
            title = (
                f"{self.spec.name} "
                f"({self.spec.replications} replication(s) per policy)"
            )
        return render_table(headers, rows, title=title)

    def to_rows(self) -> List[Dict[str, object]]:
        """One flat dict per (policy, replication): the long-format data."""
        rows = []
        for policy in self.policies:
            for replication, summary in enumerate(policy.summaries):
                row: Dict[str, object] = {
                    "experiment": self.spec.name,
                    "policy": policy.label,
                    "replication": replication,
                }
                row.update(summary.as_dict())
                rows.append(row)
        return rows

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Long-format CSV of every replication's flat summary."""
        rows = self.to_rows()
        headers = list(rows[0].keys())
        return rows_to_csv(headers, [[r[h] for h in headers] for r in rows], path=path)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly digest: the spec plus per-policy aggregates."""
        return {
            "spec": self.spec.to_dict(),
            "parallel": self.parallel,
            "policies": [
                {
                    "label": policy.label,
                    "replications": policy.replications,
                    "means": policy.means,
                    "stdevs": policy.stdevs,
                    "summaries": [s.as_dict() for s in policy.summaries],
                }
                for policy in self.policies
            ],
        }

    def to_json(
        self, path: Optional[Union[str, Path]] = None, indent: int = 2
    ) -> str:
        """The digest as JSON text, optionally written to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------


@dataclass
class SweepPointResult:
    """One grid point of a sweep: its coordinates plus its experiment."""

    point: "SweepPoint"
    experiment: ExperimentResult

    @property
    def label(self) -> str:
        """The point's coordinate label, e.g. ``"omega=0.5, kn=4"``."""
        return self.point.label

    @property
    def index(self) -> int:
        return self.point.index

    @property
    def overrides(self) -> Dict[str, object]:
        """The dot-path overrides this point applied to the base spec."""
        return dict(self.point.overrides)

    @property
    def policies(self) -> List[PolicyResult]:
        return self.experiment.policies

    def policy(self, label: str) -> PolicyResult:
        return self.experiment.policy(label)

    def comparisons(
        self, metrics: Sequence[str] = DEFAULT_COMPARISON_METRICS
    ) -> List["Comparison"]:
        """Pairwise Welch t-tests between this point's policies.

        The whole point -- every policy pair on every metric -- is one
        family for multiple-comparison purposes, so the returned
        comparisons carry Holm-Bonferroni ``p_adjusted`` values and
        :meth:`Comparison.significant` judges the corrected p.  Empty
        when the point ran fewer than two replications (a t-test needs
        within-cell spread) or compares fewer than two policies.
        """
        # Local import: repro.analysis.significance pulls in scipy,
        # which should not tax `import repro.api` or CLI startup.
        from repro.analysis.significance import (
            Comparison,
            holm_adjust,
            welch_t_test,
        )

        results: List[Comparison] = []
        if len(self.policies) < 2:
            return results
        if any(p.replications < 2 for p in self.policies):
            return results
        for a, b in combinations(self.policies, 2):
            for metric in metrics:
                samples_a = a.values(metric)
                samples_b = b.values(metric)
                t, dof, p = welch_t_test(samples_a, samples_b)
                results.append(
                    Comparison(
                        metric=metric,
                        label_a=a.label,
                        label_b=b.label,
                        mean_a=mean(samples_a),
                        mean_b=mean(samples_b),
                        difference=mean(samples_a) - mean(samples_b),
                        t_statistic=t,
                        degrees_of_freedom=dof,
                        p_value=p,
                    )
                )
        return holm_adjust(results)


@dataclass
class SweepResult:
    """Everything one executed sweep produced, grid-ordered.

    ``parallel`` records how the sweep executed but deliberately stays
    out of :meth:`to_dict`/:meth:`to_json`: the digest of a sweep is a
    function of its spec and its summaries alone, so serial, parallel
    and streamed executions of the same spec serialize byte-identically.
    """

    spec: "SweepSpec"
    points: List[SweepPointResult]
    parallel: bool = False

    @property
    def labels(self) -> List[str]:
        return [p.label for p in self.points]

    def point(self, label: Union[str, int]) -> SweepPointResult:
        """One point, by coordinate label or grid index."""
        if isinstance(label, int):
            return self.points[label]
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(f"no sweep point labelled {label!r}; have {self.labels}")

    def cells(self) -> Iterator[Tuple[SweepPointResult, PolicyResult]]:
        """Every (point, policy) cell of the grid, grid-ordered."""
        for point in self.points:
            for policy in point.policies:
                yield point, policy

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def best(
        self, metric: str, minimize: Optional[bool] = None
    ) -> Tuple[SweepPointResult, PolicyResult]:
        """The (point, policy) cell with the best mean of one metric.

        ``minimize`` defaults to the metric's natural direction (see
        :func:`metric_minimizes`).  Ties resolve to the earliest cell in
        grid order, deterministically.
        """
        if minimize is None:
            minimize = metric_minimizes(metric)
        ranked = self._ranked_cells(metric, minimize)
        return ranked[0]

    def _ranked_cells(
        self, metric: str, minimize: bool
    ) -> List[Tuple[SweepPointResult, PolicyResult]]:
        cells = list(self.cells())
        if not cells:
            raise ValueError("sweep produced no cells to rank")
        # sorted() is stable, so equal means keep grid order -- the
        # ranking (and therefore the JSON digest) is deterministic.
        return sorted(
            cells, key=lambda cell: cell[1][metric], reverse=not minimize
        )

    def best_summary(
        self, metric: str, alpha: float = 0.05
    ) -> Dict[str, object]:
        """The best cell for one metric, tested against the runner-up.

        ``significant`` is None when the sweep cannot support a t-test
        (single cell, or fewer than two replications per cell).
        """
        from repro.analysis.significance import welch_t_test

        minimize = metric_minimizes(metric)
        ranked = self._ranked_cells(metric, minimize)
        best_point, best_policy = ranked[0]
        digest: Dict[str, object] = {
            "metric": metric,
            "minimized": minimize,
            "point": best_point.label,
            "policy": best_policy.label,
            "mean": best_policy[metric],
            "runner_up": None,
            "p_value": None,
            "significant": None,
        }
        if len(ranked) < 2:
            return digest
        runner_point, runner_policy = ranked[1]
        digest["runner_up"] = {
            "point": runner_point.label,
            "policy": runner_policy.label,
            "mean": runner_policy[metric],
        }
        if best_policy.replications >= 2 and runner_policy.replications >= 2:
            _, _, p = welch_t_test(
                best_policy.values(metric), runner_policy.values(metric)
            )
            digest["p_value"] = p
            digest["significant"] = p < alpha
        return digest

    def comparisons(
        self, metrics: Sequence[str] = DEFAULT_COMPARISON_METRICS
    ) -> Dict[str, List["Comparison"]]:
        """Per-point pairwise Welch comparisons, keyed by point label."""
        return {point.label: point.comparisons(metrics) for point in self.points}

    # ------------------------------------------------------------------
    # Tables and export
    # ------------------------------------------------------------------

    def table(
        self,
        columns: Sequence[str] = DEFAULT_SWEEP_COLUMNS,
        decimals: int = 3,
        title: Optional[str] = None,
        alpha: float = 0.05,
    ) -> str:
        """One row per (point, policy) cell, best cell per column marked.

        ``*`` marks the best mean of a column; ``**`` additionally means
        the best cell beats the runner-up with ``p < alpha`` (Welch).
        """
        marks: Dict[Tuple[str, str, str], str] = {}
        for column in columns:
            summary = self.best_summary(column, alpha=alpha)
            mark = "**" if summary["significant"] else "*"
            marks[(str(summary["point"]), str(summary["policy"]), column)] = mark
        headers = ["point", "policy"] + [_HEADERS.get(col, col) for col in columns]
        rows = []
        for point, policy in self.cells():
            cells = []
            for column in columns:
                cell = policy.cell(column, decimals)
                mark = marks.get((point.label, policy.label, column))
                cells.append(f"{cell} {mark}" if mark else cell)
            rows.append([point.label, policy.label] + cells)
        if title is None:
            title = (
                f"{self.spec.name}: {len(self.points)} point(s) x "
                f"{len(rows) // max(1, len(self.points))} policy(ies), "
                f"{self.spec.base.replications} replication(s) per cell"
            )
        legend = f"* best per column; ** best and p < {alpha:g} vs runner-up (Welch)"
        return render_table(headers, rows, title=title) + "\n" + legend

    def to_rows(self) -> List[Dict[str, object]]:
        """Tidy long format: one dict per (point, policy, replication).

        Axis coordinates appear as their own columns (one per axis
        label), which is the layout pandas/R-style tools group by.
        """
        rows: List[Dict[str, object]] = []
        for point in self.points:
            for policy in point.policies:
                for replication, summary in enumerate(policy.summaries):
                    row: Dict[str, object] = {
                        "sweep": self.spec.name,
                        "point": point.label,
                    }
                    row.update(point.point.coords)
                    row["policy"] = policy.label
                    row["replication"] = replication
                    row.update(summary.as_dict())
                    rows.append(row)
        return rows

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """The tidy long format as CSV, optionally written to ``path``."""
        rows = self.to_rows()
        if not rows:
            raise ValueError("sweep produced no rows to export")
        headers = list(rows[0].keys())
        return rows_to_csv(headers, [[r[h] for h in headers] for r in rows], path=path)

    def to_dict(
        self,
        metrics: Sequence[str] = DEFAULT_COMPARISON_METRICS,
        alpha: float = 0.05,
    ) -> Dict[str, object]:
        """JSON-friendly digest: spec, per-point aggregates, significance.

        Contains no execution metadata, so the digest of one spec is
        byte-identical however the sweep ran (the CI parity check).
        """
        points = []
        for point in self.points:
            points.append(
                {
                    "index": point.index,
                    "label": point.label,
                    "overrides": dict(point.point.overrides),
                    "policies": [
                        {
                            "label": policy.label,
                            "replications": policy.replications,
                            "means": policy.means,
                            "stdevs": policy.stdevs,
                            "summaries": [s.as_dict() for s in policy.summaries],
                        }
                        for policy in point.policies
                    ],
                    "comparisons": [c.as_dict() for c in point.comparisons(metrics)],
                }
            )
        return {
            "sweep": self.spec.to_dict(),
            "alpha": alpha,
            "metrics": list(metrics),
            "points": points,
            "best": {
                metric: self.best_summary(metric, alpha=alpha) for metric in metrics
            },
        }

    def to_json(
        self,
        path: Optional[Union[str, Path]] = None,
        indent: int = 2,
        metrics: Sequence[str] = DEFAULT_COMPARISON_METRICS,
        alpha: float = 0.05,
    ) -> str:
        """The digest as JSON text, optionally written to ``path``."""
        text = (
            json.dumps(
                self.to_dict(metrics=metrics, alpha=alpha),
                indent=indent,
                sort_keys=True,
            )
            + "\n"
        )
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text
