"""Aggregated experiment outcomes: :class:`ExperimentResult`.

One :class:`Session.run` produces one :class:`ExperimentResult`: a
:class:`PolicyResult` per compared policy, each holding the per-
replication :class:`RunSummary` values (and, in serial mode, the full
:class:`RunResult` objects for deep inspection).  The aggregate unifies
what ``RunResult`` / ``AggregateResult`` / ``ScenarioResult`` exposed
separately: comparison tables, mean +- stdev cells, CSV and JSON
export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.analysis.export import rows_to_csv
from repro.analysis.stats import mean, stdev
from repro.analysis.tables import render_table
from repro.experiments.config import PolicySpec
from repro.experiments.replication import AGGREGATED_FIELDS, AggregateResult
from repro.experiments.report import DEFAULT_COLUMNS, _HEADERS
from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ExperimentSpec
    from repro.experiments.runner import RunResult


@dataclass
class PolicyResult:
    """All replications of one policy within an experiment."""

    policy: PolicySpec
    summaries: List[RunSummary]
    #: Full run objects, serial execution with ``keep_runs`` only.
    runs: List["RunResult"] = field(default_factory=list)

    @property
    def label(self) -> str:
        return self.policy.label

    @property
    def replications(self) -> int:
        return len(self.summaries)

    @property
    def summary(self) -> RunSummary:
        """The first replication's summary (the common single-rep case)."""
        return self.summaries[0]

    def run(self, replication: int = 0) -> "RunResult":
        """The full :class:`RunResult` of one replication.

        Available only after serial execution with ``keep_runs`` (the
        parallel path ships summaries back from worker processes, not
        live simulation objects).
        """
        if not self.runs:
            raise RuntimeError(
                f"no RunResults kept for policy {self.label!r}; "
                "run the session serially with keep_runs=True to inspect runs"
            )
        return self.runs[replication]

    def values(self, key: str) -> List[float]:
        """The per-replication values of one aggregated summary field."""
        if key not in AGGREGATED_FIELDS:
            raise KeyError(
                f"field {key!r} is not aggregated; "
                f"aggregated fields: {', '.join(AGGREGATED_FIELDS)}"
            )
        return [float(s.as_dict()[key]) for s in self.summaries]

    @property
    def means(self) -> Dict[str, float]:
        return {key: mean(self.values(key)) for key in AGGREGATED_FIELDS}

    @property
    def stdevs(self) -> Dict[str, float]:
        return {key: stdev(self.values(key)) for key in AGGREGATED_FIELDS}

    def cell(self, key: str, decimals: int = 3) -> str:
        """``mean +- stdev`` rendering of one aggregated field."""
        values = self.values(key)
        if len(values) == 1:
            return f"{values[0]:.{decimals}f}"
        return f"{mean(values):.{decimals}f}±{stdev(values):.{decimals}f}"

    def __getitem__(self, key: str) -> float:
        return mean(self.values(key))

    def aggregate(self) -> AggregateResult:
        """Bridge to the legacy :class:`AggregateResult` shape."""
        return AggregateResult(
            label=self.label,
            replications=self.replications,
            means=self.means,
            stdevs=self.stdevs,
            runs=list(self.runs),
        )


@dataclass
class ExperimentResult:
    """Everything one executed experiment produced."""

    spec: "ExperimentSpec"
    policies: List[PolicyResult]
    parallel: bool = False

    @property
    def labels(self) -> List[str]:
        return [p.label for p in self.policies]

    def policy(self, label: str) -> PolicyResult:
        """The results of the policy with the given label."""
        for policy in self.policies:
            if policy.label == label:
                return policy
        raise KeyError(f"no policy labelled {label!r}; have {self.labels}")

    @property
    def runs(self) -> List["RunResult"]:
        """All kept runs, (policy, replication) ordered; serial only."""
        return [run for policy in self.policies for run in policy.runs]

    def run(self, label: str, replication: int = 0) -> "RunResult":
        """One policy's full run (serial execution with kept runs)."""
        return self.policy(label).run(replication)

    def best(self, key: str, minimize: bool = False) -> PolicyResult:
        """The policy with the best mean value of one aggregated field."""
        chooser = min if minimize else max
        return chooser(self.policies, key=lambda p: p[key])

    # ------------------------------------------------------------------
    # Tables and export
    # ------------------------------------------------------------------

    def comparison_table(
        self,
        columns: Sequence[str] = DEFAULT_COLUMNS,
        decimals: int = 3,
        title: Optional[str] = None,
    ) -> str:
        """One row per policy; ``mean±stdev`` cells when replicated."""
        headers = ["policy"] + [_HEADERS.get(col, col) for col in columns]
        rows = [
            [policy.label] + [policy.cell(col, decimals) for col in columns]
            for policy in self.policies
        ]
        if title is None:
            title = (
                f"{self.spec.name} "
                f"({self.spec.replications} replication(s) per policy)"
            )
        return render_table(headers, rows, title=title)

    def to_rows(self) -> List[Dict[str, object]]:
        """One flat dict per (policy, replication): the long-format data."""
        rows = []
        for policy in self.policies:
            for replication, summary in enumerate(policy.summaries):
                row: Dict[str, object] = {
                    "experiment": self.spec.name,
                    "policy": policy.label,
                    "replication": replication,
                }
                row.update(summary.as_dict())
                rows.append(row)
        return rows

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """Long-format CSV of every replication's flat summary."""
        rows = self.to_rows()
        headers = list(rows[0].keys())
        return rows_to_csv(headers, [[r[h] for h in headers] for r in rows], path=path)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly digest: the spec plus per-policy aggregates."""
        return {
            "spec": self.spec.to_dict(),
            "parallel": self.parallel,
            "policies": [
                {
                    "label": policy.label,
                    "replications": policy.replications,
                    "means": policy.means,
                    "stdevs": policy.stdevs,
                    "summaries": [s.as_dict() for s in policy.summaries],
                }
                for policy in self.policies
            ],
        }

    def to_json(
        self, path: Optional[Union[str, Path]] = None, indent: int = 2
    ) -> str:
        """The digest as JSON text, optionally written to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text
