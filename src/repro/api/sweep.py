"""The sweep subsystem: declarative parameter grids over experiments.

SbQA's headline claim is tunability -- one process covering the whole
allocation-quality spectrum as ``omega``, ``epsilon`` and the KnBest
pool are varied -- which makes *sweeps*, not single runs, the native
experiment shape of this reproduction.  This module makes them first
class:

* :class:`SweepAxis` -- one swept knob: a dot-path into the spec
  (``"population.memory"``, ``"duration"``, ``"sbqa.omega"``), its
  values, and an optional ``zip_group`` tying it to other axes;
* :class:`SweepSpec` -- a JSON-round-trippable grid declaration: a base
  :class:`ExperimentSpec` plus axes.  Ungrouped axes combine as a
  cartesian product; axes sharing a ``zip_group`` advance in lockstep
  (zipped), and the zipped bundle crosses with everything else;
* :class:`SweepSession` -- the runtime.  The full
  ``points x policies x replications`` grid flattens into one task
  queue executed serially or over a *shared* process pool: there is no
  per-point barrier, tasks of different points interleave freely, and
  :meth:`SweepSession.stream` hands back completions one at a time so
  partial tables can render while the sweep runs.  However executed,
  the aggregate is bit-identical to the serial path (deterministic
  per-task seeding, order-independent keyed collection);
* :class:`SweepBuilder` -- the fluent layer, reachable as
  ``Experiment.sweep(...)`` or ``Experiment.builder()...sweep()``.

Results aggregate into :class:`~repro.api.results.SweepResult`, which
adds pairwise Welch t-tests and best-per-metric significance
annotations on top of the per-point :class:`ExperimentResult`\\ s.

Quickstart::

    sweep = (
        Experiment.from_scenario("scenario3", duration=600.0)
        .replications(3)
        .sweep()
        .named("omega-grid")
        .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
        .build()
    )
    for event in SweepSession(sweep).stream(parallel=True):
        if event.point_result is not None:
            print(event.point_result.label, "done")
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.results import (
    ExperimentResult,
    PolicyResult,
    SweepPointResult,
    SweepResult,
)
from repro.api.serialization import versioned_payload
from repro.api.session import _execute_keyed_task, resolve_worker_count
from repro.api.spec import ExperimentSpec
from repro.experiments.config import PolicySpec
from repro.experiments.runner import run_once
from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.tune import TuneBuilder
    from repro.experiments.runner import RunResult

#: Format tag of serialized sweep specs; bump on breaking layout changes.
SWEEP_VERSION = 1


def format_axis_value(value: Any) -> str:
    """Render one axis value for point labels (``omega=0.5``)."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (int, str)):
        return str(value)
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepAxis:
    """One swept parameter: a dot-path, its values, grouping.

    ``path`` addresses the spec's dict form (``"duration"``,
    ``"population.n_providers"``, ``"failures.mttf"``); the
    ``"sbqa.<field>"`` prefix fans out to every SbQA policy entry.
    Axes sharing a ``zip_group`` advance together (and must be equally
    long); ungrouped axes combine as a cartesian product.  ``label``
    names the axis in point labels and tidy-CSV columns; it defaults to
    the last path segment.
    """

    path: str
    values: Tuple[Any, ...]
    label: str = ""
    zip_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.path or not isinstance(self.path, str):
            raise ValueError(f"axis path must be a non-empty string, got {self.path!r}")
        if isinstance(self.values, (str, bytes)):
            # tuple("adaptive") would silently char-split into a bogus
            # 8-point grid; a single value must be wrapped in a list.
            raise ValueError(
                f"axis {self.path!r} values must be a sequence of values, "
                f"got the string {self.values!r} (wrap it in a list: "
                f"[{self.values!r}])"
            )
        try:
            object.__setattr__(self, "values", tuple(self.values))
        except TypeError:
            raise ValueError(
                f"axis {self.path!r} values must be a sequence, got "
                f"{type(self.values).__name__} (wrap a single value in a list)"
            ) from None
        if not self.values:
            raise ValueError(f"axis {self.path!r} needs at least one value")
        if not self.label:
            object.__setattr__(self, "label", self.path.rsplit(".", 1)[-1])

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"path": self.path, "values": list(self.values)}
        if self.label != self.path.rsplit(".", 1)[-1]:
            data["label"] = self.label
        if self.zip_group is not None:
            data["zip_group"] = self.zip_group
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepAxis":
        if not isinstance(data, dict):
            raise TypeError(f"axis must be a dict, got {type(data).__name__}")
        unknown = sorted(set(data) - {"path", "values", "label", "zip_group"})
        if unknown:
            raise ValueError(
                f"unknown SweepAxis field(s): {', '.join(unknown)}. "
                "Valid fields: label, path, values, zip_group"
            )
        if "path" not in data or "values" not in data:
            raise ValueError(f"a sweep axis needs 'path' and 'values', got {data!r}")
        return cls(
            path=data["path"],
            values=data["values"],  # validated (and tupled) in __post_init__
            label=data.get("label", ""),
            zip_group=data.get("zip_group"),
        )


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: coordinates plus the derived spec."""

    index: int
    #: Dot-path -> value, in axis declaration order.
    overrides: Dict[str, Any]
    #: Axis label -> value (the tidy-CSV coordinate columns).
    coords: Dict[str, Any]
    label: str
    spec: ExperimentSpec


@dataclass
class SweepSpec:
    """A declarative parameter grid: base experiment + swept axes.

    Construction expands and validates the whole grid eagerly -- every
    point's derived :class:`ExperimentSpec` re-validates from scratch --
    so a sweep that constructs is a sweep that runs.  Like
    :class:`ExperimentSpec`, the value round-trips through JSON
    (:meth:`to_dict`/:meth:`from_dict`, :meth:`save`/:meth:`load`).

    ``keep_runs`` opts into retaining every full
    :class:`~repro.experiments.runner.RunResult` (live hub, mediator,
    population) on the aggregated result for post-run series analysis
    -- serial execution only, since parallel workers ship summaries
    back, not live simulation objects.  See
    ``benchmarks/bench_ablation_memory.py`` for the intended use.
    """

    name: str = "sweep"
    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    axes: Tuple[SweepAxis, ...] = ()
    keep_runs: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.base, ExperimentSpec):
            raise TypeError(
                f"sweep base must be an ExperimentSpec, got {type(self.base).__name__}"
            )
        self.axes = tuple(
            axis if isinstance(axis, SweepAxis) else SweepAxis.from_dict(axis)
            for axis in self.axes
        )
        if not self.axes:
            raise ValueError(
                "a sweep needs at least one axis (use a plain ExperimentSpec "
                "for a single-point experiment)"
            )
        paths = [axis.path for axis in self.axes]
        duplicate_paths = sorted({p for p in paths if paths.count(p) > 1})
        if duplicate_paths:
            raise ValueError(
                f"axis paths must be unique, duplicated: {', '.join(duplicate_paths)}"
            )
        labels = [axis.label for axis in self.axes]
        duplicate_labels = sorted({l for l in labels if labels.count(l) > 1})
        if duplicate_labels:
            raise ValueError(
                f"axis labels must be unique, duplicated: "
                f"{', '.join(duplicate_labels)} (pass label= to disambiguate)"
            )
        for group in self._groups():
            lengths = {len(axis.values) for axis in group}
            if len(lengths) > 1:
                names = ", ".join(axis.path for axis in group)
                raise ValueError(
                    f"zipped axes must have equally many values; group "
                    f"{group[0].zip_group!r} ({names}) has lengths "
                    f"{sorted(len(a.values) for a in group)}"
                )
        # Expanding the grid derives (and therefore validates) every
        # point spec; cached as a plain attribute, not a field.
        self._points: Tuple[SweepPoint, ...] = tuple(self._expand())

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------

    def _groups(self) -> List[List[SweepAxis]]:
        """Axes bundled by zip_group, in first-appearance order."""
        groups: List[List[SweepAxis]] = []
        named: Dict[str, List[SweepAxis]] = {}
        for axis in self.axes:
            if axis.zip_group is None:
                groups.append([axis])
            elif axis.zip_group in named:
                named[axis.zip_group].append(axis)
            else:
                bucket = [axis]
                named[axis.zip_group] = bucket
                groups.append(bucket)
        return groups

    def __len__(self) -> int:
        """Number of grid points."""
        return len(self._points)

    def _expand(self) -> Iterator[SweepPoint]:
        groups = self._groups()
        seen_labels: Dict[str, int] = {}
        combos = itertools.product(*(range(len(g[0].values)) for g in groups))
        for index, combo in enumerate(combos):
            value_of: Dict[str, Any] = {}
            for group, position in zip(groups, combo):
                for axis in group:
                    value_of[axis.path] = axis.values[position]
            # Re-walk self.axes so overrides/coords/labels follow the
            # declaration order, not the group order.
            overrides = {axis.path: value_of[axis.path] for axis in self.axes}
            coords = {axis.label: value_of[axis.path] for axis in self.axes}
            label = ", ".join(
                f"{axis.label}={format_axis_value(value_of[axis.path])}"
                for axis in self.axes
            )
            if label in seen_labels:
                # Distinct coordinates can format identically (float
                # rounding); keep labels unique for point() lookups.
                seen_labels[label] += 1
                label = f"{label} #{seen_labels[label]}"
            else:
                seen_labels[label] = 1
            try:
                spec = self.base.derive(overrides, name=f"{self.name}[{label}]")
            except (ValueError, TypeError) as err:
                raise ValueError(
                    f"sweep point {index} ({label}) is invalid: {err}"
                ) from err
            yield SweepPoint(
                index=index,
                overrides=overrides,
                coords=coords,
                label=label,
                spec=spec,
            )

    def points(self) -> List[SweepPoint]:
        """Every grid point, expansion order (axes vary rightmost-fastest)."""
        return list(self._points)

    def point(self, index: int) -> SweepPoint:
        return self._points[index]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict; inverse of :meth:`from_dict`."""
        return {
            "sweep_version": SWEEP_VERSION,
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "keep_runs": self.keep_runs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        payload = versioned_payload(
            data,
            kind="SweepSpec",
            version_key="sweep_version",
            version=SWEEP_VERSION,
            valid_fields=frozenset({"name", "base", "axes", "keep_runs"}),
        )
        base = payload.get("base", {})
        if isinstance(base, dict):
            base = ExperimentSpec.from_dict(base)
        return cls(
            name=payload.get("name", "sweep"),
            base=base,
            axes=tuple(payload.get("axes", ())),
            keep_runs=bool(payload.get("keep_runs", False)),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SweepSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class SweepTaskEvent:
    """One completed run, as surfaced by :meth:`SweepSession.stream`.

    ``point_result`` is set on exactly the event that completes its
    point (all of the point's policies x replications collected) --
    that is the moment a per-point row can be rendered.
    """

    point: SweepPoint
    policy: PolicySpec
    replication: int
    summary: RunSummary
    completed: int
    total: int
    point_result: Optional[SweepPointResult] = None


class SweepStream:
    """Iterator over sweep task completions; aggregates at the end.

    Iterating yields :class:`SweepTaskEvent`\\ s as runs finish (serial:
    grid order; parallel: completion order -- no per-point barrier).
    :meth:`result` drains whatever has not been consumed and returns the
    :class:`SweepResult`, which is identical whether and how the stream
    was consumed.
    """

    def __init__(
        self,
        session: "SweepSession",
        parallel: bool = False,
        max_workers: Optional[int] = None,
        keep_runs: bool = False,
    ) -> None:
        self._session = session
        self._parallel = parallel
        self._keep_runs = keep_runs
        self._total = len(session)
        self._events = (
            session._parallel_events(max_workers)
            if parallel
            else session._serial_events(keep_runs)
        )
        self._summaries: Dict[Tuple[int, int, int], RunSummary] = {}
        self._kept: Dict[Tuple[int, int, int], "RunResult"] = {}
        self._outstanding: Dict[int, int] = {
            point.index: len(point.spec.policies) * point.spec.replications
            for point in session.points
        }
        self._result: Optional[SweepResult] = None

    def __iter__(self) -> "SweepStream":
        return self

    def __next__(self) -> SweepTaskEvent:
        key, policy_index, replication, summary, run = next(self._events)
        self._summaries[(key, policy_index, replication)] = summary
        if run is not None:
            self._kept[(key, policy_index, replication)] = run
        self._outstanding[key] -= 1
        point = self._session.points[key]
        point_result = None
        if self._outstanding[key] == 0:
            point_result = self._session._point_result(
                point, self._summaries, self._kept, self._parallel
            )
        return SweepTaskEvent(
            point=point,
            policy=point.spec.policies[policy_index],
            replication=replication,
            summary=summary,
            completed=len(self._summaries),
            total=self._total,
            point_result=point_result,
        )

    def result(self) -> SweepResult:
        """Drain any unconsumed tasks and aggregate the sweep."""
        if self._result is None:
            for _ in self:
                pass
            self._result = self._session._build_result(
                self._summaries, self._kept, self._parallel
            )
        return self._result


class SweepSession:
    """Executes one :class:`SweepSpec`.

    The full ``points x policies x replications`` grid is one flat task
    queue; :meth:`run` executes it to completion, :meth:`stream` exposes
    the same execution incrementally.  Parallel mode shares a single
    process pool across the whole grid -- tasks from different points
    interleave, so a slow point never stalls the rest -- and remains
    bit-identical to serial execution: every task is deterministic in
    ``(point spec, policy, replication)`` and collection is keyed, not
    ordered.
    """

    def __init__(self, spec: SweepSpec) -> None:
        if not isinstance(spec, SweepSpec):
            raise TypeError(
                f"SweepSession needs a SweepSpec, got {type(spec).__name__} "
                "(build one with Experiment.sweep() or SweepSpec.load)"
            )
        self.spec = spec
        self.points = spec.points()

    def tasks(self) -> Iterator[Tuple[int, int, int]]:
        """Every (point, policy, replication) triple, grid order."""
        for point in self.points:
            for policy_index in range(len(point.spec.policies)):
                for replication in range(point.spec.replications):
                    yield point.index, policy_index, replication

    def __len__(self) -> int:
        """Total number of simulation runs the sweep will execute."""
        return sum(
            len(point.spec.policies) * point.spec.replications
            for point in self.points
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        keep_runs: Optional[bool] = None,
    ) -> SweepResult:
        """Execute the whole grid and aggregate; see :meth:`stream`."""
        return self.stream(
            parallel=parallel, max_workers=max_workers, keep_runs=keep_runs
        ).result()

    def stream(
        self,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        keep_runs: Optional[bool] = None,
    ) -> SweepStream:
        """Execute the grid, yielding each completed run as it lands.

        Returns a :class:`SweepStream`; iterate it for incremental
        :class:`SweepTaskEvent`\\ s (``event.point_result`` marks point
        completions) and call ``.result()`` for the final
        :class:`SweepResult`.  ``keep_runs`` (default: the spec's
        ``keep_runs`` flag) retains every full :class:`RunResult` on
        the per-point results -- serial execution only.
        """
        if keep_runs is None:
            keep_runs = self.spec.keep_runs
        if parallel and keep_runs:
            raise ValueError(
                "keep_runs is unavailable in parallel mode: full runs "
                "(simulator, hub, population) live in the worker processes"
            )
        return SweepStream(
            self, parallel=parallel, max_workers=max_workers, keep_runs=keep_runs
        )

    def _serial_events(
        self, keep_runs: bool = False
    ) -> Iterator[Tuple[int, int, int, RunSummary, Optional["RunResult"]]]:
        for point in self.points:
            config = point.spec.to_config()
            if config.keep_records and not keep_runs:
                # Grid runs are summarised and dropped; retaining every
                # AllocationRecord inside each run buys nothing unless
                # the RunResults themselves are kept (keep_runs).
                config = replace(config, keep_records=False)
            for policy_index, policy in enumerate(point.spec.policies):
                for replication in range(point.spec.replications):
                    result = run_once(config, policy, replication=replication)
                    yield (
                        point.index,
                        policy_index,
                        replication,
                        result.summary,
                        result if keep_runs else None,
                    )

    def _parallel_events(
        self, max_workers: Optional[int]
    ) -> Iterator[Tuple[int, int, int, RunSummary, Optional["RunResult"]]]:
        payloads = []
        # to_dict() omits the engine (execution metadata, kept out of
        # digests); workers must still run each point's engine.
        spec_dicts = {
            point.index: dict(point.spec.to_dict(), engine=point.spec.engine)
            for point in self.points
        }
        for key, policy_index, replication in self.tasks():
            payloads.append((spec_dicts[key], key, policy_index, replication))
        workers = resolve_worker_count(max_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(_execute_keyed_task, payload)
                for payload in payloads
            ]
            try:
                for future in as_completed(futures):
                    yield (*future.result(), None)
            finally:
                # An abandoned stream should not run the rest of the
                # grid to completion; started tasks still finish.
                for future in futures:
                    future.cancel()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _point_result(
        self,
        point: SweepPoint,
        summaries: Dict[Tuple[int, int, int], RunSummary],
        kept: Dict[Tuple[int, int, int], "RunResult"],
        parallel: bool,
    ) -> SweepPointResult:
        policies = [
            PolicyResult(
                policy=policy,
                summaries=[
                    summaries[(point.index, policy_index, replication)]
                    for replication in range(point.spec.replications)
                ],
                runs=[
                    kept[(point.index, policy_index, replication)]
                    for replication in range(point.spec.replications)
                    if (point.index, policy_index, replication) in kept
                ],
            )
            for policy_index, policy in enumerate(point.spec.policies)
        ]
        experiment = ExperimentResult(
            spec=point.spec, policies=policies, parallel=parallel
        )
        return SweepPointResult(point=point, experiment=experiment)

    def _build_result(
        self,
        summaries: Dict[Tuple[int, int, int], RunSummary],
        kept: Dict[Tuple[int, int, int], "RunResult"],
        parallel: bool,
    ) -> SweepResult:
        points = [
            self._point_result(point, summaries, kept, parallel)
            for point in self.points
        ]
        return SweepResult(spec=self.spec, points=points, parallel=parallel)


# ----------------------------------------------------------------------
# Fluent layer
# ----------------------------------------------------------------------


class SweepBuilder:
    """Accumulates a :class:`SweepSpec` through chained calls.

    Reached via ``Experiment.sweep(base)`` or, more fluently, by ending
    an experiment chain with ``.sweep()``::

        result = (
            Experiment.builder()
            .duration(600)
            .policy("sbqa")
            .policy("capacity")
            .replications(3)
            .sweep()
            .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
            .axis("population.n_providers", [40, 120])
            .run(parallel=True)
        )
    """

    def __init__(self, base: Optional[ExperimentSpec] = None) -> None:
        self._name = "sweep"
        self._base = base if base is not None else ExperimentSpec()
        self._axes: List[SweepAxis] = []
        self._zip_groups = 0
        self._keep_runs = False

    def named(self, name: str) -> "SweepBuilder":
        """Set the sweep name (table titles, tidy-CSV ``sweep`` column)."""
        self._name = str(name)
        return self

    def base(self, spec: ExperimentSpec) -> "SweepBuilder":
        """Replace the base experiment every point derives from."""
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"base must be an ExperimentSpec, got {type(spec).__name__}"
            )
        self._base = spec
        return self

    def axis(
        self,
        path: str,
        values: Sequence[Any],
        label: Optional[str] = None,
        zip_group: Optional[str] = None,
    ) -> "SweepBuilder":
        """Add one swept knob (cartesian unless ``zip_group`` ties it)."""
        self._axes.append(
            SweepAxis(
                path=path,
                values=values,  # validated (and tupled) in __post_init__
                label=label or "",
                zip_group=zip_group,
            )
        )
        return self

    def zipped(self, **path_values: Sequence[Any]) -> "SweepBuilder":
        """Add axes that advance in lockstep (one fresh zip group).

        Dots cannot appear in keyword names, so path segments are given
        with ``__``: ``zipped(sbqa__k=[5, 10], sbqa__kn=[2, 5])``.
        """
        if len(path_values) < 2:
            raise ValueError("zipped() needs at least two axes to tie together")
        self._zip_groups += 1
        group = f"zip{self._zip_groups}"
        for name, values in path_values.items():
            self.axis(name.replace("__", "."), values, zip_group=group)
        return self

    def keep_runs(self, enabled: bool = True) -> "SweepBuilder":
        """Retain full :class:`RunResult`\\ s per cell (serial runs only)."""
        self._keep_runs = bool(enabled)
        return self

    def build(self) -> SweepSpec:
        """Validate and return the accumulated :class:`SweepSpec`."""
        return SweepSpec(
            name=self._name,
            base=self._base,
            axes=tuple(self._axes),
            keep_runs=self._keep_runs,
        )

    def session(self) -> SweepSession:
        """A :class:`SweepSession` over the built spec."""
        return SweepSession(self.build())

    def run(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> SweepResult:
        """Build and execute; see :meth:`SweepSession.run`."""
        return self.session().run(parallel=parallel, max_workers=max_workers)

    def stream(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> SweepStream:
        """Build and execute incrementally; see :meth:`SweepSession.stream`."""
        return self.session().stream(parallel=parallel, max_workers=max_workers)

    def tune(self) -> "TuneBuilder":
        """A :class:`~repro.api.tune.TuneBuilder` over the built grid.

        Turns the accumulated sweep into the search space of a budgeted
        successive-halving tune; chain ``.objective(...)``,
        ``.budget(...)``, ``.rungs(...)`` and ``.run()`` from there.
        """
        from repro.api.tune import TuneBuilder

        return TuneBuilder(self.build())
