"""The adaptive-experimentation subsystem: budgeted tuning over grids.

SbQA's headline claim is *tunability* -- the mediator can be steered
anywhere on the omega/KnBest spectrum -- which makes finding good
parameter points the core experimental activity.  The sweep engine
(:mod:`repro.api.sweep`) answers that exhaustively: every grid point
runs its full replication count even when most points are clearly
dominated after a few runs.  This module races the grid instead:

* :class:`TuneSpec` -- a JSON-round-trippable declaration wrapping a
  :class:`SweepSpec`: the objective (one aggregated metric, measured on
  one policy, maximized or minimized), a total run ``budget``, a
  ``rungs`` schedule (cumulative replication counts, successive-halving
  geometry by default), and the elimination level ``alpha``;
* :class:`TuneSession` -- the runtime.  All surviving grid points race
  rung by rung on one shared process pool: a rung runs each survivor's
  objective policy up to the rung's replication count, then challengers
  that are *significantly worse* than the incumbent -- Welch's t-test,
  Holm-Bonferroni corrected across the rung's family -- are eliminated.
  Survivors of the final rung complete their remaining (non-objective)
  policies, so every surviving point ends bit-for-bit identical to what
  the exhaustive sweep would have produced;
* :class:`TuneStream` -- incremental consumption: a
  :class:`TuneRunEvent` per completed simulation, a
  :class:`TuneRungEvent` per promotion/elimination decision (p-values
  included), a :class:`TuneStopEvent` if the budget runs out;
* :class:`TuneResult` -- the winner, the full elimination trace, the
  runs saved versus the exhaustive sweep, and
  :meth:`TuneResult.sweep_result` bridging the surviving points back
  into a :class:`~repro.api.results.SweepResult`.

Why elimination is *statistically gated* rather than rank-based: plain
successive halving (Li et al., JMLR 2018) drops the worst half at every
rung regardless of noise, which on a stochastic simulation happily
discards the true winner after one unlucky seed.  Racing approaches
(Birattari et al., F-Race) keep a point until the evidence against it
is significant; this tuner follows that discipline -- a challenger is
dropped only when Welch's test, Holm-corrected within the rung, puts it
significantly below the incumbent.  Indistinguishable points are never
separated by noise: with an unlimited budget the survivors reproduce
the exhaustive :class:`SweepResult` exactly (deterministic seed
schedule: replication ``i`` of a point derives from the point's spec
seed and ``i``, the same as in a sweep, whatever rung runs it).

Quickstart::

    tune = (
        Experiment.from_scenario("scenario3", duration=600.0)
        .replications(6)
        .sweep()
        .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
        .tune()
        .objective("consumer_sat_final")
        .budget(60)
        .build()
    )
    result = TuneSession(tune).run(parallel=True)
    print(result.table())
    print(result.winner.label, "saved", result.runs_saved, "runs")
"""

from __future__ import annotations

import json
import math
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.export import rows_to_csv
from repro.analysis.stats import mean
from repro.analysis.tables import render_table
from repro.api.results import (
    ExperimentResult,
    PolicyResult,
    SweepPointResult,
    SweepResult,
    metric_minimizes,
)
from repro.api.serialization import versioned_payload
from repro.api.session import _execute_keyed_task, resolve_worker_count
from repro.api.sweep import SweepPoint, SweepSpec
from repro.experiments.config import PolicySpec
from repro.experiments.replication import AGGREGATED_FIELDS
from repro.experiments.runner import run_once
from repro.metrics.summary import RunSummary

#: Format tag of serialized tune specs; bump on breaking layout changes.
TUNE_VERSION = 1

_DIRECTIONS = ("maximize", "minimize")


def default_rungs(replications: int) -> Tuple[int, ...]:
    """The successive-halving rung schedule for one replication count.

    Cumulative replication counts that roughly double rung over rung
    and end at the full count: ``6 -> (2, 3, 6)``, ``4 -> (2, 4)``,
    ``8 -> (2, 4, 8)``.  The first rung is 2 replications -- the
    minimum that admits a t-test -- except for single-replication
    experiments, which get the degenerate ``(1,)`` (rankable, never
    eliminable).
    """
    if replications <= 2:
        return (replications,)
    rungs = [replications]
    while rungs[0] > 2:
        rungs.insert(0, math.ceil(rungs[0] / 2))
    return tuple(rungs)


@dataclass
class TuneSpec:
    """A declarative adaptive tune: search space + objective + budget.

    ``sweep`` is the search space (every grid point a candidate);
    ``objective`` names the aggregated summary metric raced on,
    measured on the ``policy`` with that label (default: the base
    experiment's first policy); ``direction`` forces maximize/minimize
    (default: the metric's natural direction).  ``rungs`` are
    *cumulative* objective-policy replication counts per rung and must
    end at the base experiment's replication count, so survivors finish
    the complete experiment; ``budget`` caps the total number of
    simulation runs (``None``: unlimited); ``alpha`` is the
    family-wise elimination level.  Like the other spec kinds, the
    value round-trips through JSON.
    """

    name: str = "tune"
    sweep: SweepSpec = field(default_factory=SweepSpec)
    objective: str = "consumer_sat_final"
    direction: Optional[str] = None
    policy: Optional[str] = None
    budget: Optional[int] = None
    rungs: Tuple[int, ...] = ()
    alpha: float = 0.05

    def __post_init__(self) -> None:
        if isinstance(self.sweep, dict):
            self.sweep = SweepSpec.from_dict(self.sweep)
        if not isinstance(self.sweep, SweepSpec):
            raise TypeError(
                f"tune search space must be a SweepSpec, got "
                f"{type(self.sweep).__name__}"
            )
        if self.objective not in AGGREGATED_FIELDS:
            raise ValueError(
                f"objective {self.objective!r} is not an aggregated metric; "
                f"choose one of: {', '.join(AGGREGATED_FIELDS)}"
            )
        if self.direction is not None and self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be 'maximize', 'minimize' or None "
                f"(metric default), got {self.direction!r}"
            )
        for axis in self.sweep.axes:
            if axis.path in ("replications", "policies") or axis.path.startswith(
                ("replications.", "policies.")
            ):
                raise ValueError(
                    f"a tune cannot race a grid that sweeps {axis.path!r}: "
                    "the rung schedule and the objective policy are defined "
                    "against the base experiment's policies and replication "
                    "count, which every point must share"
                )
        # Resolving the objective policy validates the label eagerly.
        base = self.sweep.base
        if self.policy is not None:
            try:
                base.policy(self.policy)
            except KeyError:
                raise ValueError(
                    f"objective policy {self.policy!r} is not in the base "
                    f"experiment; have {[p.label for p in base.policies]}"
                ) from None
        replications = base.replications
        self.rungs = tuple(int(r) for r in self.rungs) or default_rungs(replications)
        if any(r < 1 for r in self.rungs):
            raise ValueError(f"rungs must be >= 1, got {self.rungs}")
        if any(b >= a for a, b in zip(self.rungs[1:], self.rungs)):
            raise ValueError(
                f"rungs must be strictly increasing, got {self.rungs}"
            )
        if self.rungs[-1] != replications:
            raise ValueError(
                f"the final rung must equal the base experiment's "
                f"replications ({replications}) so survivors complete the "
                f"full experiment, got rungs {self.rungs}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must lie in (0, 1), got {self.alpha}")
        if self.budget is not None:
            self.budget = int(self.budget)
            first_rung_cost = len(self.sweep) * self.rungs[0]
            if self.budget < first_rung_cost:
                raise ValueError(
                    f"budget {self.budget} cannot cover the first rung "
                    f"({len(self.sweep)} points x {self.rungs[0]} "
                    f"replication(s) = {first_rung_cost} runs)"
                )

    # ------------------------------------------------------------------
    # Resolved objective
    # ------------------------------------------------------------------

    @property
    def minimizes(self) -> bool:
        """Whether the objective is minimized (resolved direction)."""
        if self.direction is not None:
            return self.direction == "minimize"
        return metric_minimizes(self.objective)

    @property
    def resolved_direction(self) -> str:
        return "minimize" if self.minimizes else "maximize"

    @property
    def objective_policy(self) -> PolicySpec:
        """The base-experiment policy the objective is measured on."""
        return self.sweep.base.policies[self.objective_policy_index]

    @property
    def objective_policy_index(self) -> int:
        if self.policy is None:
            return 0
        for index, policy in enumerate(self.sweep.base.policies):
            if policy.label == self.policy:
                return index
        raise KeyError(  # unreachable after __post_init__ validation
            f"no policy labelled {self.policy!r}"
        )

    @property
    def exhaustive_runs(self) -> int:
        """Run count of the exhaustive sweep this tune shortcuts.

        Plain arithmetic: every point shares the base's policies and
        replication count (``__post_init__`` rejects grids that sweep
        either), so no grid expansion is needed.
        """
        base = self.sweep.base
        return len(self.sweep) * len(base.policies) * base.replications

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict; inverse of :meth:`from_dict`."""
        return {
            "tune_version": TUNE_VERSION,
            "name": self.name,
            "sweep": self.sweep.to_dict(),
            "objective": self.objective,
            "direction": self.direction,
            "policy": self.policy,
            "budget": self.budget,
            "rungs": list(self.rungs),
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneSpec":
        payload = versioned_payload(
            data,
            kind="TuneSpec",
            version_key="tune_version",
            version=TUNE_VERSION,
            valid_fields=frozenset(
                {
                    "name",
                    "sweep",
                    "objective",
                    "direction",
                    "policy",
                    "budget",
                    "rungs",
                    "alpha",
                }
            ),
        )
        sweep = payload.get("sweep", {})
        if isinstance(sweep, dict):
            sweep = SweepSpec.from_dict(sweep)
        return cls(
            name=payload.get("name", "tune"),
            sweep=sweep,
            objective=payload.get("objective", "consumer_sat_final"),
            direction=payload.get("direction"),
            policy=payload.get("policy"),
            budget=payload.get("budget"),
            rungs=tuple(payload.get("rungs", ())),
            alpha=payload.get("alpha", 0.05),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "TuneSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TuneSpec":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Trace records and stream events
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Elimination:
    """One point dropped at one rung, with the evidence that dropped it."""

    rung: int  # rung index (0-based)
    replications: int  # objective samples per side at the decision
    index: int  # grid index of the eliminated point
    label: str
    mean: float  # the point's objective mean at the rung
    incumbent: str  # the incumbent's label
    incumbent_mean: float
    t_statistic: float
    p_value: float  # raw Welch p (two-sided)
    p_adjusted: float  # Holm-corrected within the rung's family

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rung": self.rung,
            "replications": self.replications,
            "index": self.index,
            "label": self.label,
            "mean": self.mean,
            "incumbent": self.incumbent,
            "incumbent_mean": self.incumbent_mean,
            "t_statistic": self.t_statistic,
            "p_value": self.p_value,
            "p_adjusted": self.p_adjusted,
        }


@dataclass(frozen=True)
class RungRecord:
    """One rung of the race: who ran, who won, who was eliminated."""

    rung: int  # rung index (0-based)
    replications: int  # cumulative objective replications at this rung
    contenders: Tuple[str, ...]  # labels racing this rung (grid order)
    incumbent: str  # best objective mean at rung end
    eliminated: Tuple[Elimination, ...]
    survivors: Tuple[str, ...]  # labels promoted to the next rung
    runs_this_rung: int
    runs_total: int  # cumulative runs executed after this rung
    budget_remaining: Optional[int]  # None when unlimited

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rung": self.rung,
            "replications": self.replications,
            "contenders": list(self.contenders),
            "incumbent": self.incumbent,
            "eliminated": [e.as_dict() for e in self.eliminated],
            "survivors": list(self.survivors),
            "runs_this_rung": self.runs_this_rung,
            "runs_total": self.runs_total,
            "budget_remaining": self.budget_remaining,
        }


@dataclass
class TuneRunEvent:
    """One completed simulation run within the tune."""

    point: SweepPoint
    policy: PolicySpec
    replication: int
    summary: RunSummary
    phase: str  # "race" or "complete"
    rung: Optional[int]  # rung index during racing, None when completing
    runs_executed: int  # cumulative, including this run
    budget_remaining: Optional[int]


@dataclass
class TuneRungEvent:
    """One rung decided: promotions and eliminations with p-values."""

    record: RungRecord


@dataclass
class TuneStopEvent:
    """The budget cannot cover the next phase; the tune stops early."""

    reason: str
    runs_executed: int
    budget: int


TuneEvent = Union[TuneRunEvent, TuneRungEvent, TuneStopEvent]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class TunePointOutcome:
    """How one grid point fared in the race.

    ``status`` is ``"winner"``, ``"survivor"`` or ``"eliminated"``;
    ``complete`` marks points whose full ``policies x replications``
    grid executed (exactly the exhaustive sweep's data for that
    point).  ``policies`` holds a :class:`PolicyResult` per policy
    that ran at least once -- an eliminated point typically carries
    only the objective policy with the replications it reached.
    """

    point: SweepPoint
    status: str
    replications_used: int  # objective-policy replications executed
    policies: List[PolicyResult]
    eliminated: Optional[Elimination] = None
    complete: bool = False

    @property
    def label(self) -> str:
        return self.point.label

    @property
    def index(self) -> int:
        return self.point.index

    def policy(self, label: str) -> PolicyResult:
        for policy in self.policies:
            if policy.label == label:
                return policy
        raise KeyError(
            f"no executed policy labelled {label!r} on point "
            f"{self.label!r}; have {[p.label for p in self.policies]}"
        )


@dataclass
class TuneResult:
    """Everything one executed tune produced.

    ``parallel`` records how the tune executed but stays out of
    :meth:`to_dict`/:meth:`to_json` -- like a sweep's, the digest is a
    function of the spec and the summaries alone, so serial, parallel
    and streamed executions serialize byte-identically.
    """

    spec: TuneSpec
    outcomes: List[TunePointOutcome]  # grid order, every point
    trace: List[RungRecord]
    runs_executed: int
    status: str  # "completed" or "budget_exhausted"
    parallel: bool = False

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    @property
    def winner(self) -> TunePointOutcome:
        """The point with the best objective among the survivors."""
        for outcome in self.outcomes:
            if outcome.status == "winner":
                return outcome
        raise RuntimeError("tune produced no winner")  # pragma: no cover

    @property
    def survivors(self) -> List[TunePointOutcome]:
        """Winner plus never-eliminated points, grid order."""
        return [o for o in self.outcomes if o.status != "eliminated"]

    @property
    def eliminations(self) -> List[Elimination]:
        """Every elimination, rung order (the flattened trace)."""
        return [e for record in self.trace for e in record.eliminated]

    def outcome(self, label: Union[str, int]) -> TunePointOutcome:
        """One point's outcome, by coordinate label or grid index."""
        if isinstance(label, int):
            return self.outcomes[label]
        for outcome in self.outcomes:
            if outcome.label == label:
                return outcome
        raise KeyError(
            f"no tuned point labelled {label!r}; "
            f"have {[o.label for o in self.outcomes]}"
        )

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------

    @property
    def exhaustive_runs(self) -> int:
        return self.spec.exhaustive_runs

    @property
    def runs_saved(self) -> int:
        """Simulation runs avoided versus the exhaustive sweep."""
        return self.exhaustive_runs - self.runs_executed

    @property
    def run_fraction(self) -> float:
        """Runs executed as a fraction of the exhaustive sweep's."""
        return self.runs_executed / self.exhaustive_runs

    # ------------------------------------------------------------------
    # Bridges
    # ------------------------------------------------------------------

    def sweep_result(self) -> SweepResult:
        """The surviving, fully executed points as a :class:`SweepResult`.

        Only complete points qualify (every policy at full
        replications); their aggregates are bit-for-bit what the
        exhaustive :class:`~repro.api.sweep.SweepSession` would have
        produced for them, because replication seeds are independent of
        the rung that ran them.
        """
        points = [
            SweepPointResult(
                point=outcome.point,
                experiment=ExperimentResult(
                    spec=outcome.point.spec,
                    policies=outcome.policies,
                    parallel=self.parallel,
                ),
            )
            for outcome in self.outcomes
            if outcome.complete
        ]
        return SweepResult(spec=self.spec.sweep, points=points, parallel=self.parallel)

    # ------------------------------------------------------------------
    # Rendering and export
    # ------------------------------------------------------------------

    def objective_cell(self, outcome: TunePointOutcome, decimals: int = 4) -> str:
        """``mean +- stdev`` of the objective over the reps a point ran."""
        try:
            policy = outcome.policy(self.spec.objective_policy.label)
        except KeyError:
            return "-"
        return policy.cell(self.spec.objective, decimals)

    def table(self, decimals: int = 4, title: Optional[str] = None) -> str:
        """The elimination trace, one row per grid point."""
        headers = [
            "point",
            "status",
            "reps",
            f"{self.spec.objective} ({self.spec.resolved_direction})",
            "p_holm",
            "out at rung",
        ]
        rows = []
        for outcome in self.outcomes:
            e = outcome.eliminated
            rows.append(
                [
                    outcome.label,
                    outcome.status,
                    outcome.replications_used,
                    self.objective_cell(outcome, decimals),
                    f"{e.p_adjusted:.4f}" if e is not None else "",
                    e.rung + 1 if e is not None else "",
                ]
            )
        if title is None:
            title = (
                f"{self.spec.name}: {len(self.outcomes)} point(s), "
                f"{len(self.trace)} rung(s) {tuple(self.spec.rungs)}"
            )
        summary = (
            f"runs: {self.runs_executed} of {self.exhaustive_runs} exhaustive "
            f"({self.runs_saved} saved, {self.run_fraction:.0%} used); "
            f"alpha={self.spec.alpha:g} (Holm within each rung)"
        )
        if self.status != "completed":
            summary += f"; stopped early: {self.status}"
        return render_table(headers, rows, title=title) + "\n" + summary

    def to_rows(self) -> List[Dict[str, object]]:
        """Tidy long format over *executed* runs only.

        Like :meth:`SweepResult.to_rows` with the point's race
        ``status`` as an extra column; eliminated points contribute
        only the replications they actually ran.
        """
        rows: List[Dict[str, object]] = []
        for outcome in self.outcomes:
            for policy in outcome.policies:
                for replication, summary in enumerate(policy.summaries):
                    row: Dict[str, object] = {
                        "tune": self.spec.name,
                        "point": outcome.label,
                    }
                    row.update(outcome.point.coords)
                    row["policy"] = policy.label
                    row["replication"] = replication
                    row["status"] = outcome.status
                    row.update(summary.as_dict())
                    rows.append(row)
        return rows

    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        """The tidy long format as CSV, optionally written to ``path``."""
        rows = self.to_rows()
        if not rows:
            raise ValueError("tune produced no rows to export")
        headers = list(rows[0].keys())
        return rows_to_csv(headers, [[r[h] for h in headers] for r in rows], path=path)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly digest: spec, winner, trace, budget accounting.

        Contains no execution metadata, so the digest of one spec is
        byte-identical however the tune ran (the CI parity check).
        For complete points the per-policy blocks match the exhaustive
        sweep digest's exactly.
        """
        winner = self.winner
        points = []
        for outcome in self.outcomes:
            points.append(
                {
                    "index": outcome.index,
                    "label": outcome.label,
                    "status": outcome.status,
                    "complete": outcome.complete,
                    "replications_used": outcome.replications_used,
                    "eliminated": (
                        None
                        if outcome.eliminated is None
                        else outcome.eliminated.as_dict()
                    ),
                    "policies": [
                        {
                            "label": policy.label,
                            "replications": policy.replications,
                            "means": policy.means,
                            "stdevs": policy.stdevs,
                            "summaries": [s.as_dict() for s in policy.summaries],
                        }
                        for policy in outcome.policies
                    ],
                }
            )
        return {
            "tune": self.spec.to_dict(),
            "objective": {
                "metric": self.spec.objective,
                "direction": self.spec.resolved_direction,
                "policy": self.spec.objective_policy.label,
            },
            "status": self.status,
            "runs_executed": self.runs_executed,
            "exhaustive_runs": self.exhaustive_runs,
            "runs_saved": self.runs_saved,
            "winner": {
                "index": winner.index,
                "label": winner.label,
                "replications": winner.replications_used,
                "mean": mean(
                    winner.policy(self.spec.objective_policy.label).values(
                        self.spec.objective
                    )
                ),
            },
            "trace": [record.as_dict() for record in self.trace],
            "points": points,
        }

    def to_json(
        self, path: Optional[Union[str, Path]] = None, indent: int = 2
    ) -> str:
        """The digest as JSON text, optionally written to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


class _TuneState:
    """Mutable bookkeeping of one tune execution (owned by its stream)."""

    def __init__(self, spec: TuneSpec) -> None:
        self.spec = spec
        self.summaries: Dict[Tuple[int, int, int], RunSummary] = {}
        self.trace: List[RungRecord] = []
        self.runs_executed = 0
        self.status = "completed"
        self.winner_index: Optional[int] = None
        self.reps_raced: Dict[int, int] = {}  # point -> objective reps run

    def budget_remaining(self) -> Optional[int]:
        if self.spec.budget is None:
            return None
        return self.spec.budget - self.runs_executed

    def objective_values(self, index: int, reps: int) -> List[float]:
        policy_index = self.spec.objective_policy_index
        metric = self.spec.objective
        return [
            float(self.summaries[(index, policy_index, r)].as_dict()[metric])
            for r in range(reps)
        ]


class TuneStream:
    """Iterator over tune events; builds the result at the end.

    Iterating yields :class:`TuneRunEvent` per completed simulation
    (serial: schedule order; parallel: completion order within each
    rung), :class:`TuneRungEvent` per decided rung, and at most one
    :class:`TuneStopEvent` if the budget cannot cover a next phase.
    :meth:`result` drains the remainder and returns the
    :class:`TuneResult`, identical however the stream was consumed.
    """

    def __init__(
        self,
        session: "TuneSession",
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> None:
        self._session = session
        self._parallel = parallel
        self._state = _TuneState(session.spec)
        self._events = session._drive(self._state, parallel, max_workers)
        self._result: Optional[TuneResult] = None

    def __iter__(self) -> "TuneStream":
        return self

    def __next__(self) -> TuneEvent:
        return next(self._events)

    def result(self) -> TuneResult:
        """Drain any unconsumed events and assemble the result."""
        if self._result is None:
            for _ in self:
                pass
            self._result = self._session._build_result(self._state, self._parallel)
        return self._result


class TuneSession:
    """Executes one :class:`TuneSpec`.

    The race advances rung by rung: within a rung every survivor's
    pending objective-policy replications form one task batch executed
    serially or over a *shared* process pool (one pool for the whole
    tune; tasks of different points interleave).  Between rungs the
    elimination rule runs; after the final rung the survivors' other
    policies complete.  However executed, results are bit-identical to
    serial execution -- tasks are deterministic in
    ``(point spec, policy, replication)`` and collection is keyed --
    and the elimination trace is reproducible run to run.
    """

    def __init__(self, spec: TuneSpec) -> None:
        if not isinstance(spec, TuneSpec):
            raise TypeError(
                f"TuneSession needs a TuneSpec, got {type(spec).__name__} "
                "(build one with Experiment.tune(...) or TuneSpec.load)"
            )
        self.spec = spec
        self.points = spec.sweep.points()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> TuneResult:
        """Execute the tune to completion; see :meth:`stream`."""
        return self.stream(parallel=parallel, max_workers=max_workers).result()

    def stream(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> TuneStream:
        """Execute the tune, yielding events as the race unfolds."""
        return TuneStream(self, parallel=parallel, max_workers=max_workers)

    # ------------------------------------------------------------------
    # The race
    # ------------------------------------------------------------------

    def _drive(
        self,
        state: _TuneState,
        parallel: bool,
        max_workers: Optional[int],
    ) -> Iterator[TuneEvent]:
        spec = self.spec
        executor: Optional[ProcessPoolExecutor] = None
        if parallel:
            # One pool for the whole tune: worker warm-up is paid once,
            # and tasks of every phase share it.
            workers = resolve_worker_count(
                max_workers, len(self.points) * spec.rungs[0]
            )
            executor = ProcessPoolExecutor(max_workers=workers)
        try:
            survivors = [point.index for point in self.points]
            previous_reps = 0
            objective_policy = spec.objective_policy_index
            raced_all_rungs = True
            for rung_index, reps in enumerate(spec.rungs):
                tasks = [
                    (index, objective_policy, replication)
                    for index in survivors
                    for replication in range(previous_reps, reps)
                ]
                if not self._affordable(state, len(tasks)):
                    state.status = "budget_exhausted"
                    raced_all_rungs = False
                    yield TuneStopEvent(
                        reason=(
                            f"rung {rung_index + 1} needs {len(tasks)} runs "
                            f"but only {state.budget_remaining()} remain in "
                            f"the budget"
                        ),
                        runs_executed=state.runs_executed,
                        budget=spec.budget,
                    )
                    break
                for event in self._execute(
                    state, tasks, executor, phase="race", rung=rung_index
                ):
                    yield event
                for index in survivors:
                    state.reps_raced[index] = reps
                record, survivors = self._decide(
                    state, rung_index, reps, survivors, runs_this_rung=len(tasks)
                )
                state.trace.append(record)
                yield TuneRungEvent(record=record)
                previous_reps = reps
            state.winner_index = self._best(state, survivors)
            if raced_all_rungs:
                for event in self._complete(state, survivors, executor):
                    yield event
        finally:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    def _affordable(self, state: _TuneState, cost: int) -> bool:
        remaining = state.budget_remaining()
        return remaining is None or cost <= remaining

    def _complete(
        self,
        state: _TuneState,
        survivors: List[int],
        executor: Optional[ProcessPoolExecutor],
    ) -> Iterator[TuneEvent]:
        """Run the survivors' non-objective policies to full depth.

        Point-by-point in grid order so a tight budget still finishes
        whole points (a half-completed point would be unusable for the
        exhaustive-parity guarantee).
        """
        spec = self.spec
        objective_policy = spec.objective_policy_index
        replications = spec.sweep.base.replications
        for index in survivors:
            point = self.points[index]
            tasks = [
                (index, policy_index, replication)
                for policy_index in range(len(point.spec.policies))
                if policy_index != objective_policy
                for replication in range(replications)
            ]
            if not tasks:
                continue
            if not self._affordable(state, len(tasks)):
                state.status = "budget_exhausted"
                yield TuneStopEvent(
                    reason=(
                        f"completing point {point.label!r} needs "
                        f"{len(tasks)} runs but only "
                        f"{state.budget_remaining()} remain in the budget"
                    ),
                    runs_executed=state.runs_executed,
                    budget=spec.budget,
                )
                return
            for event in self._execute(
                state, tasks, executor, phase="complete", rung=None
            ):
                yield event

    def _execute(
        self,
        state: _TuneState,
        tasks: List[Tuple[int, int, int]],
        executor: Optional[ProcessPoolExecutor],
        phase: str,
        rung: Optional[int],
    ) -> Iterator[TuneRunEvent]:
        """One task batch, serially or on the shared pool (keyed)."""
        if executor is None:
            completions = self._serial_batch(tasks)
        else:
            completions = self._parallel_batch(tasks, executor)
        for index, policy_index, replication, summary in completions:
            state.summaries[(index, policy_index, replication)] = summary
            state.runs_executed += 1
            yield TuneRunEvent(
                point=self.points[index],
                policy=self.points[index].spec.policies[policy_index],
                replication=replication,
                summary=summary,
                phase=phase,
                rung=rung,
                runs_executed=state.runs_executed,
                budget_remaining=state.budget_remaining(),
            )

    def _serial_batch(
        self, tasks: List[Tuple[int, int, int]]
    ) -> Iterator[Tuple[int, int, int, RunSummary]]:
        for index, policy_index, replication in tasks:
            point = self.points[index]
            config = point.spec.to_config()
            if config.keep_records:
                # The race keeps summaries only; per-run
                # AllocationRecord retention would be pure overhead.
                config = replace(config, keep_records=False)
            result = run_once(
                config,
                point.spec.policies[policy_index],
                replication=replication,
            )
            yield index, policy_index, replication, result.summary

    def _parallel_batch(
        self,
        tasks: List[Tuple[int, int, int]],
        executor: ProcessPoolExecutor,
    ) -> Iterator[Tuple[int, int, int, RunSummary]]:
        futures = [
            executor.submit(
                _execute_keyed_task,
                (
                    # engine rides along explicitly: to_dict() omits it
                    # (execution metadata, kept out of digests).
                    dict(
                        self.points[index].spec.to_dict(),
                        engine=self.points[index].spec.engine,
                    ),
                    index,
                    policy_index,
                    replication,
                ),
            )
            for index, policy_index, replication in tasks
        ]
        try:
            for future in as_completed(futures):
                yield future.result()
        finally:
            # An abandoned stream must not keep racing the grid.
            for future in futures:
                future.cancel()

    # ------------------------------------------------------------------
    # The elimination rule
    # ------------------------------------------------------------------

    def _best(self, state: _TuneState, survivors: Sequence[int]) -> int:
        """The incumbent: best objective mean, ties to the lowest index."""
        reps_of = state.reps_raced
        means = {
            index: mean(state.objective_values(index, reps_of[index]))
            for index in survivors
        }
        sign = 1.0 if self.spec.minimizes else -1.0
        return min(survivors, key=lambda index: (sign * means[index], index))

    def _decide(
        self,
        state: _TuneState,
        rung_index: int,
        reps: int,
        survivors: List[int],
        runs_this_rung: int,
    ) -> Tuple[RungRecord, List[int]]:
        """Apply the elimination rule after one rung.

        A challenger is dropped only when its objective mean is worse
        than the incumbent's *and* Welch's t-test -- Holm-corrected
        across the rung's challengers -- finds the gap significant at
        the spec's ``alpha``.  With one replication, or one survivor,
        nothing can be tested and everything is promoted.
        """
        from repro.analysis.significance import holm_correction, welch_t_test

        spec = self.spec
        values = {
            index: state.objective_values(index, reps) for index in survivors
        }
        means = {index: mean(values[index]) for index in survivors}
        incumbent = self._best(state, survivors)
        eliminations: List[Elimination] = []
        challengers = [index for index in survivors if index != incumbent]
        if reps >= 2 and challengers:
            tests = [
                welch_t_test(values[index], values[incumbent])
                for index in challengers
            ]
            adjusted = holm_correction([p for _, _, p in tests])
            for index, (t, _, p), p_adj in zip(challengers, tests, adjusted):
                if spec.minimizes:
                    worse = means[index] > means[incumbent]
                else:
                    worse = means[index] < means[incumbent]
                if worse and p_adj < spec.alpha:
                    eliminations.append(
                        Elimination(
                            rung=rung_index,
                            replications=reps,
                            index=index,
                            label=self.points[index].label,
                            mean=means[index],
                            incumbent=self.points[incumbent].label,
                            incumbent_mean=means[incumbent],
                            t_statistic=t,
                            p_value=p,
                            p_adjusted=p_adj,
                        )
                    )
        dropped = {e.index for e in eliminations}
        promoted = [index for index in survivors if index not in dropped]
        record = RungRecord(
            rung=rung_index,
            replications=reps,
            contenders=tuple(self.points[i].label for i in survivors),
            incumbent=self.points[incumbent].label,
            eliminated=tuple(eliminations),
            survivors=tuple(self.points[i].label for i in promoted),
            runs_this_rung=runs_this_rung,
            runs_total=state.runs_executed,
            budget_remaining=state.budget_remaining(),
        )
        return record, promoted

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _build_result(self, state: _TuneState, parallel: bool) -> TuneResult:
        spec = self.spec
        replications = spec.sweep.base.replications
        eliminated_by_index: Dict[int, Elimination] = {}
        for record in state.trace:
            for elimination in record.eliminated:
                eliminated_by_index[elimination.index] = elimination
        outcomes: List[TunePointOutcome] = []
        for point in self.points:
            policies: List[PolicyResult] = []
            collected = 0
            for policy_index, policy in enumerate(point.spec.policies):
                summaries = []
                for replication in range(replications):
                    key = (point.index, policy_index, replication)
                    if key in state.summaries:
                        summaries.append(state.summaries[key])
                    else:
                        break
                if summaries:
                    policies.append(
                        PolicyResult(policy=policy, summaries=summaries)
                    )
                    collected += len(summaries)
            complete = collected == len(point.spec.policies) * replications
            if point.index in eliminated_by_index:
                status = "eliminated"
            elif point.index == state.winner_index:
                status = "winner"
            else:
                status = "survivor"
            outcomes.append(
                TunePointOutcome(
                    point=point,
                    status=status,
                    replications_used=state.reps_raced.get(point.index, 0),
                    policies=policies,
                    eliminated=eliminated_by_index.get(point.index),
                    complete=complete,
                )
            )
        return TuneResult(
            spec=spec,
            outcomes=outcomes,
            trace=list(state.trace),
            runs_executed=state.runs_executed,
            status=state.status,
            parallel=parallel,
        )


# ----------------------------------------------------------------------
# Fluent layer
# ----------------------------------------------------------------------


class TuneBuilder:
    """Accumulates a :class:`TuneSpec` through chained calls.

    Reached via ``Experiment.tune(sweep)`` or, most fluently, by ending
    a sweep chain with ``.tune()``::

        result = (
            Experiment.builder()
            .duration(600)
            .policy("sbqa")
            .replications(6)
            .sweep()
            .axis("sbqa.omega", [0.0, 0.5, 1.0, "adaptive"])
            .tune()
            .objective("consumer_sat_final")
            .budget(60)
            .run(parallel=True)
        )
    """

    def __init__(self, sweep: Optional[SweepSpec] = None) -> None:
        self._name = "tune"
        self._sweep = sweep
        self._objective = "consumer_sat_final"
        self._direction: Optional[str] = None
        self._policy: Optional[str] = None
        self._budget: Optional[int] = None
        self._rungs: Tuple[int, ...] = ()
        self._alpha = 0.05

    def named(self, name: str) -> "TuneBuilder":
        """Set the tune name (table titles, digest headings)."""
        self._name = str(name)
        return self

    def search(self, sweep: SweepSpec) -> "TuneBuilder":
        """Replace the search space (the wrapped :class:`SweepSpec`)."""
        if not isinstance(sweep, SweepSpec):
            raise TypeError(
                f"search space must be a SweepSpec, got {type(sweep).__name__}"
            )
        self._sweep = sweep
        return self

    def objective(
        self,
        metric: str,
        direction: Optional[str] = None,
        policy: Optional[str] = None,
    ) -> "TuneBuilder":
        """Set the raced metric, its direction, and the measured policy.

        ``direction`` defaults to the metric's natural one (response
        times minimize, satisfaction maximizes); ``policy`` defaults to
        the base experiment's first policy.
        """
        self._objective = str(metric)
        self._direction = direction
        self._policy = policy
        return self

    def budget(self, runs: Optional[int]) -> "TuneBuilder":
        """Cap the total simulation runs (``None``: unlimited)."""
        self._budget = None if runs is None else int(runs)
        return self

    def rungs(self, *replications: int) -> "TuneBuilder":
        """Set the cumulative replication count of each rung."""
        self._rungs = tuple(int(r) for r in replications)
        return self

    def alpha(self, alpha: float) -> "TuneBuilder":
        """Set the family-wise elimination level."""
        self._alpha = float(alpha)
        return self

    def build(self) -> TuneSpec:
        """Validate and return the accumulated :class:`TuneSpec`."""
        if self._sweep is None:
            raise ValueError(
                "a tune needs a search space; seed the builder with a "
                "SweepSpec (Experiment.tune(sweep) or sweep_builder.tune())"
            )
        return TuneSpec(
            name=self._name,
            sweep=self._sweep,
            objective=self._objective,
            direction=self._direction,
            policy=self._policy,
            budget=self._budget,
            rungs=self._rungs,
            alpha=self._alpha,
        )

    def session(self) -> TuneSession:
        """A :class:`TuneSession` over the built spec."""
        return TuneSession(self.build())

    def run(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> TuneResult:
        """Build and execute; see :meth:`TuneSession.run`."""
        return self.session().run(parallel=parallel, max_workers=max_workers)

    def stream(
        self, parallel: bool = False, max_workers: Optional[int] = None
    ) -> TuneStream:
        """Build and execute incrementally; see :meth:`TuneSession.stream`."""
        return self.session().stream(parallel=parallel, max_workers=max_workers)
