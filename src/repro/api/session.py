"""The :class:`Session` runtime: executing an :class:`ExperimentSpec`.

A session turns a declarative spec into results:

* :meth:`Session.run` executes all ``policies x replications`` runs,
  serially or across worker processes
  (:class:`~concurrent.futures.ProcessPoolExecutor`).  Replication
  seeding is deterministic -- replication ``i`` derives its random root
  from ``(spec.seed, i)`` regardless of which process executes it or in
  which order futures complete -- so parallel aggregates are
  bit-identical to serial ones.
* :meth:`Session.stream` is the same execution surfaced incrementally:
  an iterator of :class:`SessionTaskEvent`\\ s, one per completed
  replication, whose final :meth:`SessionStream.result` aggregate is
  byte-identical to :meth:`Session.run` -- the session-level analogue
  of :meth:`repro.api.sweep.SweepSession.stream`.
* :meth:`Session.start` wires a single run and returns the
  :class:`~repro.experiments.runner.LiveRun` for incremental
  ``step_until(t)`` execution with live inspection of the mediator and
  metrics hub.

Workers receive the *serialized* spec (``spec.to_dict()``), which keeps
the task payload picklable and exercises exactly the round-trip the
spec layer guarantees.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.results import ExperimentResult, PolicyResult
from repro.api.spec import ExperimentSpec
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.experiments.config import PolicySpec
from repro.experiments.runner import LiveRun, RunResult, run_once, wire_run
from repro.metrics.summary import RunSummary


def _execute_task(payload: Tuple[dict, int, int]) -> Tuple[int, int, RunSummary]:
    """Worker entry: one (policy, replication) run from a spec dict.

    Module-level so it pickles; returns the summary only (live
    simulation objects stay in the worker).
    """
    spec_dict, policy_index, replication = payload
    spec = ExperimentSpec.from_dict(spec_dict)
    config = spec.to_config()
    if config.keep_records:
        # Workers ship summaries back, never live runs, so retaining
        # every AllocationRecord would only inflate worker peak memory.
        config = replace(config, keep_records=False)
    result = run_once(config, spec.policies[policy_index], replication=replication)
    return policy_index, replication, result.summary


def _execute_keyed_task(
    payload: Tuple[dict, int, int, int]
) -> Tuple[int, int, int, RunSummary]:
    """Worker entry for sweeps: one run of one grid point.

    Same contract as :func:`_execute_task` with a leading ``key`` (the
    sweep point index) threaded through, so a single shared pool can
    interleave tasks of every point with no per-point barrier.
    """
    spec_dict, key, policy_index, replication = payload
    return (key, *_execute_task((spec_dict, policy_index, replication)))


def resolve_worker_count(max_workers: Optional[int], task_count: int) -> int:
    """Effective pool size: CPU count by default, capped at the tasks."""
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(max_workers, task_count))


@dataclass
class SessionTaskEvent:
    """One completed replication, as surfaced by :meth:`Session.stream`.

    ``policy_result`` is set on exactly the event that completes its
    policy (all of the policy's replications collected) -- the moment
    the policy's ``mean +- stdev`` row can be rendered.
    """

    policy: PolicySpec
    replication: int
    summary: RunSummary
    completed: int
    total: int
    policy_result: Optional[PolicyResult] = None


class SessionStream:
    """Iterator over session task completions; aggregates at the end.

    Iterating yields :class:`SessionTaskEvent`\\ s as replications
    finish (serial: task order; parallel: completion order).
    :meth:`result` drains whatever has not been consumed and returns
    the :class:`ExperimentResult`, which is identical whether and how
    the stream was consumed -- and byte-identical to
    :meth:`Session.run` with the same ``parallel`` flag.
    """

    def __init__(
        self,
        session: "Session",
        parallel: bool = False,
        max_workers: Optional[int] = None,
        shard_workers: Optional[int] = None,
    ) -> None:
        self._session = session
        self._parallel = parallel
        self._total = len(session)
        self._events = (
            session._parallel_events(max_workers)
            if parallel
            else session._serial_events(shard_workers=shard_workers)
        )
        self._summaries: Dict[Tuple[int, int], RunSummary] = {}
        self._outstanding: Dict[int, int] = {
            policy_index: session.spec.replications
            for policy_index in range(len(session.spec.policies))
        }
        self._result: Optional[ExperimentResult] = None

    def __iter__(self) -> "SessionStream":
        return self

    def __next__(self) -> SessionTaskEvent:
        policy_index, replication, summary = next(self._events)
        self._summaries[(policy_index, replication)] = summary
        self._outstanding[policy_index] -= 1
        policy = self._session.spec.policies[policy_index]
        policy_result = None
        if self._outstanding[policy_index] == 0:
            policy_result = PolicyResult(
                policy=policy,
                summaries=[
                    self._summaries[(policy_index, replication)]
                    for replication in range(self._session.spec.replications)
                ],
            )
        return SessionTaskEvent(
            policy=policy,
            replication=replication,
            summary=summary,
            completed=len(self._summaries),
            total=self._total,
            policy_result=policy_result,
        )

    def result(self) -> ExperimentResult:
        """Drain any unconsumed tasks and aggregate the experiment."""
        if self._result is None:
            for _ in self:
                pass
            self._result = self._session._build_result(
                self._summaries, {}, self._parallel
            )
        return self._result


class Session:
    """Executes one :class:`ExperimentSpec`.

    A session is cheap to construct and stateless between calls; the
    expensive part is :meth:`run`.
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"Session needs an ExperimentSpec, got {type(spec).__name__} "
                "(build one with Experiment.builder() or ExperimentSpec.load)"
            )
        self.spec = spec

    # ------------------------------------------------------------------
    # Task enumeration
    # ------------------------------------------------------------------

    def tasks(self) -> Iterator[Tuple[int, int]]:
        """Every (policy_index, replication) pair, deterministic order."""
        for policy_index in range(len(self.spec.policies)):
            for replication in range(self.spec.replications):
                yield policy_index, replication

    def __len__(self) -> int:
        """Total number of runs the session will execute."""
        return len(self.spec.policies) * self.spec.replications

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        keep_runs: Optional[bool] = None,
        shard_workers: Optional[int] = None,
    ) -> ExperimentResult:
        """Execute all policies x replications; aggregate the outcome.

        Parameters
        ----------
        parallel:
            Fan replications out over a process pool.  Results are
            bit-identical to serial execution (deterministic seeding,
            deterministic collection order); only wall-clock changes.
        max_workers:
            Process count, parallel mode only (default: CPU count,
            capped at the task count).
        keep_runs:
            Retain full :class:`RunResult` objects on the result for
            deep inspection.  Defaults to True when serial, and is
            unavailable (forced False) in parallel mode, where runs
            execute in worker processes.
        shard_workers:
            Execute each run's federation shards across worker
            processes (conservative-sync parallel execution; see
            :func:`repro.federation.parallel.run_parallel`).  Digests
            are bit-identical to single-process execution; runs fall
            back to serial when the config is ineligible.  Mutually
            exclusive with ``parallel`` (which parallelizes across
            replications instead of within one run).
        """
        if shard_workers is not None and parallel:
            raise ValueError(
                "parallel and shard_workers are mutually exclusive: "
                "parallel fans replications over a pool, shard_workers "
                "parallelizes shards within each run"
            )
        if keep_runs is None:
            keep_runs = not parallel and shard_workers is None
        if parallel and keep_runs:
            raise ValueError(
                "keep_runs is unavailable in parallel mode: full runs "
                "(simulator, hub, population) live in the worker processes"
            )
        if shard_workers is not None and keep_runs:
            raise ValueError(
                "keep_runs is unavailable with shard_workers: merged "
                "runs carry summary-grade state, not live simulators"
            )
        if keep_runs:
            summaries, kept = self._run_serial(keep_runs=True)
            return self._build_result(summaries, kept, parallel=False)
        return self.stream(
            parallel=parallel, max_workers=max_workers, shard_workers=shard_workers
        ).result()

    def stream(
        self,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        shard_workers: Optional[int] = None,
    ) -> SessionStream:
        """Execute the session, yielding each completed replication.

        Returns a :class:`SessionStream`; iterate it for incremental
        :class:`SessionTaskEvent`\\ s (``event.policy_result`` marks
        policy completions) and call ``.result()`` for the final
        :class:`ExperimentResult` -- byte-identical to :meth:`run`
        however much of the stream was consumed.
        """
        return SessionStream(
            self,
            parallel=parallel,
            max_workers=max_workers,
            shard_workers=shard_workers,
        )

    def _build_result(
        self,
        summaries: Dict[Tuple[int, int], RunSummary],
        kept: Dict[Tuple[int, int], "RunResult"],
        parallel: bool,
    ) -> ExperimentResult:
        policies: List[PolicyResult] = []
        for policy_index, policy in enumerate(self.spec.policies):
            policy_summaries = [
                summaries[(policy_index, replication)]
                for replication in range(self.spec.replications)
            ]
            policy_runs = [
                kept[(policy_index, replication)]
                for replication in range(self.spec.replications)
                if (policy_index, replication) in kept
            ]
            policies.append(
                PolicyResult(
                    policy=policy, summaries=policy_summaries, runs=policy_runs
                )
            )
        return ExperimentResult(spec=self.spec, policies=policies, parallel=parallel)

    def _run_serial(
        self, keep_runs: bool
    ) -> Tuple[Dict[Tuple[int, int], RunSummary], Dict[Tuple[int, int], RunResult]]:
        config = self.spec.to_config()
        summaries: Dict[Tuple[int, int], RunSummary] = {}
        kept: Dict[Tuple[int, int], RunResult] = {}
        for policy_index, replication in self.tasks():
            result = run_once(
                config, self.spec.policies[policy_index], replication=replication
            )
            summaries[(policy_index, replication)] = result.summary
            if keep_runs:
                kept[(policy_index, replication)] = result
        return summaries, kept

    def _serial_events(
        self, shard_workers: Optional[int] = None
    ) -> Iterator[Tuple[int, int, RunSummary]]:
        config = self.spec.to_config()
        for policy_index, replication in self.tasks():
            if shard_workers is not None:
                from repro.federation.parallel import run_parallel

                report = run_parallel(
                    config,
                    self.spec.policies[policy_index],
                    workers=shard_workers,
                    replication=replication,
                )
                yield policy_index, replication, report.result.summary
                continue
            result = run_once(
                config, self.spec.policies[policy_index], replication=replication
            )
            yield policy_index, replication, result.summary

    def _parallel_events(
        self, max_workers: Optional[int]
    ) -> Iterator[Tuple[int, int, RunSummary]]:
        spec_dict = self.spec.to_dict()
        # to_dict() omits the engine (execution metadata, kept out of
        # digests); workers must still run the session's engine.
        spec_dict["engine"] = self.spec.engine
        payloads = [
            (spec_dict, policy_index, replication)
            for policy_index, replication in self.tasks()
        ]
        workers = resolve_worker_count(max_workers, len(payloads))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(_execute_task, payload) for payload in payloads
            ]
            try:
                for future in as_completed(futures):
                    yield future.result()
            finally:
                # An abandoned stream should not run the rest of the
                # session to completion; started tasks still finish.
                for future in futures:
                    future.cancel()

    # ------------------------------------------------------------------
    # Incremental execution
    # ------------------------------------------------------------------

    def start(
        self,
        policy: Union[None, int, str] = None,
        replication: int = 0,
        trace: TraceRecorder = NULL_RECORDER,
    ) -> LiveRun:
        """Wire one run for incremental ``step_until(t)`` execution.

        ``policy`` selects by label, by index, or defaults to the
        spec's first policy.  The returned :class:`LiveRun` exposes the
        live ``mediator``, ``hub`` and ``registry`` between steps.
        """
        spec = self._resolve_policy(policy)
        return wire_run(
            self.spec.to_config(), spec, replication=replication, trace=trace
        )

    def _resolve_policy(self, policy: Union[None, int, str]) -> PolicySpec:
        if policy is None:
            return self.spec.policies[0]
        if isinstance(policy, int):
            return self.spec.policies[policy]
        return self.spec.policy(policy)
