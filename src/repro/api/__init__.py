"""The layered public API of the reproduction.

Three layers, from declarative to executable:

1. :class:`ExperimentSpec` -- a validated, serializable description of
   an experiment (JSON round-trip: specs live in files, get diffed and
   shared);
2. :class:`ExperimentBuilder` / :class:`Experiment` -- a fluent builder
   over every configuration knob, plus demo scenario presets;
3. :class:`Session` -- the runtime: all policies x replications,
   serial or parallel (bit-identical results), or incremental
   ``step_until`` execution with live inspection.

Quickstart::

    from repro.api import Experiment, Session

    result = (
        Experiment.builder()
        .named("churn-study")
        .duration(1200)
        .providers(80)
        .autonomous(rejoin_cooldown=120)
        .policy("sbqa", kn=5)
        .policy("capacity")
        .replications(4)
        .run(parallel=True)
    )
    print(result.comparison_table())

Attributes resolve lazily (PEP 562) so importing a single submodule
(e.g. :mod:`repro.api.presets` from the scenario layer) does not drag
in the whole package.
"""

from typing import TYPE_CHECKING

#: name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "ExperimentSpec": "repro.api.spec",
    "SPEC_VERSION": "repro.api.spec",
    "Experiment": "repro.api.builder",
    "ExperimentBuilder": "repro.api.builder",
    "Session": "repro.api.session",
    "SessionStream": "repro.api.session",
    "ExperimentResult": "repro.api.results",
    "PolicyResult": "repro.api.results",
    "SweepResult": "repro.api.results",
    "SweepPointResult": "repro.api.results",
    "SweepSpec": "repro.api.sweep",
    "SweepAxis": "repro.api.sweep",
    "SweepSession": "repro.api.sweep",
    "SweepBuilder": "repro.api.sweep",
    "SweepStream": "repro.api.sweep",
    "SWEEP_VERSION": "repro.api.sweep",
    "TuneSpec": "repro.api.tune",
    "TuneSession": "repro.api.tune",
    "TuneBuilder": "repro.api.tune",
    "TuneStream": "repro.api.tune",
    "TuneResult": "repro.api.tune",
    "TUNE_VERSION": "repro.api.tune",
    "scenario_spec": "repro.api.presets",
    "available_scenarios": "repro.api.presets",
    "SCENARIO_PRESETS": "repro.api.presets",
    "sbqa_policy": "repro.api.presets",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api.builder import Experiment, ExperimentBuilder
    from repro.api.presets import (
        SCENARIO_PRESETS,
        available_scenarios,
        sbqa_policy,
        scenario_spec,
    )
    from repro.api.results import (
        ExperimentResult,
        PolicyResult,
        SweepPointResult,
        SweepResult,
    )
    from repro.api.session import Session, SessionStream
    from repro.api.spec import SPEC_VERSION, ExperimentSpec
    from repro.api.sweep import (
        SWEEP_VERSION,
        SweepAxis,
        SweepBuilder,
        SweepSession,
        SweepSpec,
        SweepStream,
    )
    from repro.api.tune import (
        TUNE_VERSION,
        TuneBuilder,
        TuneResult,
        TuneSession,
        TuneSpec,
        TuneStream,
    )


_SUBMODULES = frozenset(
    {
        "builder",
        "presets",
        "results",
        "serialization",
        "session",
        "spec",
        "sweep",
        "tune",
    }
)


def __getattr__(name: str):
    import importlib

    if name in _SUBMODULES:
        module = importlib.import_module(f"repro.api.{name}")
        globals()[name] = module
        return module
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}") from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: __getattr__ fires once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
