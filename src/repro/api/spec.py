"""The declarative experiment description: :class:`ExperimentSpec`.

An ``ExperimentSpec`` is the complete, validated, *serializable* value
describing one experiment: the population and workload, the autonomy
regime, optional failure injection, one or more allocation policies to
compare, and how many replications to run.  It is the input of
:class:`repro.api.session.Session` and the output of
:class:`repro.api.builder.ExperimentBuilder`.

Being plain data with ``to_dict()/from_dict()`` and JSON round-tripping
means specs can live in files, be diffed and shared, and be shipped to
worker processes for parallel replication execution::

    spec = ExperimentSpec.load("experiment.json")
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.api.serialization import (
    autonomy_from_dict,
    autonomy_to_dict,
    canonical_population,
    failures_to_dict,
    federation_to_dict,
    optional_failures_from_dict,
    optional_federation_from_dict,
    policy_spec_from_dict,
    policy_spec_to_dict,
    population_from_dict,
    population_to_dict,
    versioned_payload,
)
from repro.experiments.config import (
    AutonomyConfig,
    DEFAULT_SEED,
    ExperimentConfig,
    PolicySpec,
)
from repro.federation.config import FederationConfig
from repro.system.failures import FailureConfig
from repro.workloads.boinc import BoincScenarioParams

#: Format tag written into serialized specs; bump on breaking layout
#: changes so old files fail loudly instead of silently misparsing.
SPEC_VERSION = 1


@dataclass
class ExperimentSpec:
    """A fully declarative experiment: config + policies + replications.

    The first block of fields mirrors
    :class:`~repro.experiments.config.ExperimentConfig` one-to-one (see
    :meth:`to_config`); ``policies`` and ``replications`` describe the
    comparison on top: every policy runs ``replications`` times, each
    replication deriving an independent random root from ``seed``.
    """

    name: str = "experiment"
    seed: int = DEFAULT_SEED
    duration: float = 2400.0
    sample_interval: float = 10.0
    #: Allocation runtime: "fast" (hot-path engine, the default) or
    #: "event" (event-faithful reference).  Results are bit-identical
    #: either way, so the engine is *execution* metadata: like
    #: ``SweepResult.parallel`` it stays out of :meth:`to_dict` (result
    #: digests must not depend on how a spec was executed), though
    #: :meth:`from_dict` accepts it for hand-written spec files.
    engine: str = "fast"
    population: BoincScenarioParams = field(default_factory=BoincScenarioParams)
    autonomy: AutonomyConfig = field(default_factory=AutonomyConfig)
    latency_low: float = 0.02
    latency_high: float = 0.08
    #: Sharded multi-mediator federation; None = classic single
    #: mediator.  Unlike ``engine`` this is a *scenario* knob (K>1
    #: changes results), so it serializes and is sweepable as
    #: ``federation.shards``.
    federation: Optional[FederationConfig] = None
    failures: Optional[FailureConfig] = None
    result_timeout: Optional[float] = None
    adequation_over_candidates: bool = False
    keep_records: bool = False
    track_provider_snapshots: bool = False
    # default_factory: PolicySpec is frozen but its params dict is not,
    # so a shared class-level default instance would let one spec's
    # mutation poison every other default-constructed spec.
    policies: Tuple[PolicySpec, ...] = field(
        default_factory=lambda: (PolicySpec(name="sbqa"),)
    )
    replications: int = 1

    def __post_init__(self) -> None:
        self.population = canonical_population(self.population)
        self.policies = tuple(self.policies)
        if not self.policies:
            raise ValueError("an experiment needs at least one policy")
        labels = [p.label for p in self.policies]
        duplicates = sorted({l for l in labels if labels.count(l) > 1})
        if duplicates:
            raise ValueError(
                f"policy labels must be unique, duplicated: {', '.join(duplicates)} "
                "(pass label= to disambiguate sweep entries)"
            )
        if self.replications < 1:
            raise ValueError(
                f"need at least one replication, got {self.replications}"
            )
        # Delegate the cross-field invariants (latency band, failure /
        # timeout coupling, positive durations) to ExperimentConfig so
        # a spec that constructs is a spec that runs.
        self.to_config()

    # ------------------------------------------------------------------
    # Bridges to the imperative layer
    # ------------------------------------------------------------------

    def to_config(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` this spec describes."""
        return ExperimentConfig(
            name=self.name,
            seed=self.seed,
            duration=self.duration,
            sample_interval=self.sample_interval,
            engine=self.engine,
            population=self.population,
            autonomy=self.autonomy,
            latency_low=self.latency_low,
            latency_high=self.latency_high,
            federation=self.federation,
            failures=self.failures,
            result_timeout=self.result_timeout,
            adequation_over_candidates=self.adequation_over_candidates,
            keep_records=self.keep_records,
            track_provider_snapshots=self.track_provider_snapshots,
        )

    @classmethod
    def from_config(
        cls,
        config: ExperimentConfig,
        policies,
        replications: int = 1,
    ) -> "ExperimentSpec":
        """Lift an imperative ``(config, policies)`` pair into a spec."""
        if isinstance(policies, PolicySpec):
            policies = (policies,)
        kwargs = {
            f.name: getattr(config, f.name) for f in fields(ExperimentConfig)
        }
        return cls(policies=tuple(policies), replications=replications, **kwargs)

    def derive(
        self,
        overrides: "Dict[str, Any]",
        name: Optional[str] = None,
    ) -> "ExperimentSpec":
        """A copy with dot-path ``overrides`` applied (sweep points).

        Overrides address the spec's dict form (``"duration"``,
        ``"population.n_providers"``, ``"failures.mttf"``); the
        ``"sbqa.<field>"`` form fans out to every SbQA policy entry --
        see :func:`repro.api.serialization.apply_spec_override`.  The
        derived spec re-validates from scratch, so an override that
        breaks a cross-field invariant fails here, not mid-run.
        """
        from repro.api.serialization import apply_spec_override

        data = self.to_dict()
        # to_dict() deliberately omits the engine (execution metadata);
        # a derived spec must still run on the same engine as its base.
        data["engine"] = self.engine
        for path, value in overrides.items():
            apply_spec_override(data, path, value)
        if name is not None:
            data["name"] = name
        return ExperimentSpec.from_dict(data)

    def policy(self, label: str) -> PolicySpec:
        """The policy with the given label (KeyError if absent)."""
        for spec in self.policies:
            if spec.label == label:
                return spec
        raise KeyError(
            f"no policy labelled {label!r}; have {[p.label for p in self.policies]}"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dict; inverse of :meth:`from_dict`."""
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "duration": self.duration,
            "sample_interval": self.sample_interval,
            "population": population_to_dict(self.population),
            "autonomy": autonomy_to_dict(self.autonomy),
            "latency_low": self.latency_low,
            "latency_high": self.latency_high,
            "federation": (
                None
                if self.federation is None
                else federation_to_dict(self.federation)
            ),
            "failures": (
                None if self.failures is None else failures_to_dict(self.failures)
            ),
            "result_timeout": self.result_timeout,
            "adequation_over_candidates": self.adequation_over_candidates,
            "keep_records": self.keep_records,
            "track_provider_snapshots": self.track_provider_snapshots,
            "policies": [policy_spec_to_dict(p) for p in self.policies],
            "replications": self.replications,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from :meth:`to_dict` output (keys validated)."""
        payload = versioned_payload(
            data,
            kind="ExperimentSpec",
            version_key="spec_version",
            version=SPEC_VERSION,
            valid_fields=frozenset(f.name for f in fields(cls)),
        )
        if isinstance(payload.get("population"), dict):
            payload["population"] = population_from_dict(payload["population"])
        if isinstance(payload.get("autonomy"), dict):
            payload["autonomy"] = autonomy_from_dict(payload["autonomy"])
        payload["failures"] = optional_failures_from_dict(payload.get("failures"))
        payload["federation"] = optional_federation_from_dict(
            payload.get("federation")
        )
        if "policies" in payload:
            payload["policies"] = tuple(
                policy_spec_from_dict(p) if isinstance(p, dict) else p
                for p in payload["policies"]
            )
        return cls(**payload)

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec to a JSON file; returns the path."""
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
