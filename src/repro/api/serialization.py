"""Dict <-> dataclass converters behind :class:`~repro.api.spec.ExperimentSpec`.

Every configuration dataclass the experiment layer exposes gets a pair
of converters here, so a whole experiment can round-trip through plain
JSON-friendly dicts (``spec -> dict -> spec`` is the identity).  The
converters validate keys eagerly and list the valid field names on a
typo, mirroring :meth:`ExperimentConfig.with_overrides`.

Intention models are serialized through their canonical declarative
form (see :func:`repro.core.intentions.consumer_intentions_to_spec`),
which is also what :func:`canonical_population` normalizes live model
objects to -- the reason two specs built from equivalent inputs compare
equal.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Any, Dict, Optional, Type

from repro.core.intentions import (
    consumer_intentions_to_spec,
    provider_intentions_to_spec,
)
from repro.core.sbqa import SbQAConfig
from repro.experiments.config import AutonomyConfig, PolicySpec
from repro.federation.config import FederationConfig
from repro.system.failures import FailureConfig
from repro.workloads.boinc import (
    BoincScenarioParams,
    FocalConsumerSpec,
    FocalProviderSpec,
    ProjectSpec,
)
from repro.workloads.preferences import ArchetypeMix


def dataclass_kwargs(cls: Type, data: Dict[str, Any], what: str) -> Dict[str, Any]:
    """Validate ``data``'s keys against ``cls``'s fields; helpful error."""
    if not isinstance(data, dict):
        raise TypeError(f"{what} must be a dict, got {type(data).__name__}")
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ValueError(
            f"unknown {what} field(s): {', '.join(unknown)}. "
            f"Valid fields: {', '.join(sorted(valid))}"
        )
    return dict(data)


def versioned_payload(
    data: Any,
    kind: str,
    version_key: str,
    version: int,
    valid_fields: "frozenset",
) -> Dict[str, Any]:
    """Common ``from_dict`` front door of the serialized spec kinds.

    Checks that ``data`` is a dict, that its ``version_key`` tag (if
    present) matches the ``version`` this build reads, and that no
    unknown fields sneaked in; returns a copy with the version tag
    popped.  ``kind`` names the spec class in error messages.
    """
    if not isinstance(data, dict):
        raise TypeError(f"{kind} document must be a dict, got {type(data).__name__}")
    payload = dict(data)
    found = payload.pop(version_key, version)
    if found != version:
        raise ValueError(
            f"unsupported {version_key} {found!r} (this build reads "
            f"version {version})"
        )
    unknown = sorted(set(payload) - valid_fields)
    if unknown:
        raise ValueError(
            f"unknown {kind} field(s): {', '.join(unknown)}. "
            f"Valid fields: {', '.join(sorted(valid_fields))}"
        )
    return payload


def _scalar_dict(obj) -> Dict[str, Any]:
    """Field dict of a dataclass whose values are all JSON scalars."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


# ----------------------------------------------------------------------
# Leaf dataclasses (scalar fields only)
# ----------------------------------------------------------------------

project_spec_to_dict = _scalar_dict
archetype_mix_to_dict = _scalar_dict
focal_provider_to_dict = _scalar_dict
focal_consumer_to_dict = _scalar_dict
autonomy_to_dict = _scalar_dict
failures_to_dict = _scalar_dict
sbqa_config_to_dict = _scalar_dict
federation_to_dict = _scalar_dict


def project_spec_from_dict(data: Dict[str, Any]) -> ProjectSpec:
    return ProjectSpec(**dataclass_kwargs(ProjectSpec, data, "ProjectSpec"))


def archetype_mix_from_dict(data: Dict[str, Any]) -> ArchetypeMix:
    return ArchetypeMix(**dataclass_kwargs(ArchetypeMix, data, "ArchetypeMix"))


def focal_provider_from_dict(data: Dict[str, Any]) -> FocalProviderSpec:
    return FocalProviderSpec(
        **dataclass_kwargs(FocalProviderSpec, data, "FocalProviderSpec")
    )


def focal_consumer_from_dict(data: Dict[str, Any]) -> FocalConsumerSpec:
    return FocalConsumerSpec(
        **dataclass_kwargs(FocalConsumerSpec, data, "FocalConsumerSpec")
    )


def autonomy_from_dict(data: Dict[str, Any]) -> AutonomyConfig:
    return AutonomyConfig(**dataclass_kwargs(AutonomyConfig, data, "AutonomyConfig"))


def failures_from_dict(data: Dict[str, Any]) -> FailureConfig:
    return FailureConfig(**dataclass_kwargs(FailureConfig, data, "FailureConfig"))


def sbqa_config_from_dict(data: Dict[str, Any]) -> SbQAConfig:
    return SbQAConfig(**dataclass_kwargs(SbQAConfig, data, "SbQAConfig"))


def federation_from_dict(data: Dict[str, Any]) -> FederationConfig:
    return FederationConfig(
        **dataclass_kwargs(FederationConfig, data, "FederationConfig")
    )


def optional_federation_from_dict(data) -> Optional[FederationConfig]:
    if data is None or isinstance(data, FederationConfig):
        return data
    return federation_from_dict(data)


# ----------------------------------------------------------------------
# PolicySpec
# ----------------------------------------------------------------------


def policy_spec_to_dict(spec: PolicySpec) -> Dict[str, Any]:
    data: Dict[str, Any] = {"name": spec.name, "label": spec.label}
    if spec.sbqa is not None:
        data["sbqa"] = sbqa_config_to_dict(spec.sbqa)
    if spec.params:
        data["params"] = dict(spec.params)
    return data


def policy_spec_from_dict(data: Dict[str, Any]) -> PolicySpec:
    kwargs = dataclass_kwargs(PolicySpec, data, "PolicySpec")
    if "name" not in kwargs:
        raise ValueError(f"PolicySpec dict needs a 'name' key, got {data!r}")
    sbqa = kwargs.get("sbqa")
    if isinstance(sbqa, dict):
        kwargs["sbqa"] = sbqa_config_from_dict(sbqa)
    kwargs.setdefault("label", "")
    kwargs["params"] = dict(kwargs.get("params") or {})
    return PolicySpec(**kwargs)


# ----------------------------------------------------------------------
# BoincScenarioParams (the population)
# ----------------------------------------------------------------------

#: Population fields that are plain JSON scalars.
_POPULATION_SCALARS = (
    "n_providers",
    "capacity_mean",
    "capacity_cv",
    "demand_mean",
    "demand_cv",
    "demand_distribution",
    "pareto_minimum",
    "n_results",
    "quorum",
    "target_load",
    "memory",
    "memory_jitter",
    "saturation_horizon",
    "rt_reference",
    "preferred_fraction",
)


def canonical_population(params: BoincScenarioParams) -> BoincScenarioParams:
    """Normalize a population to its declarative, comparable form.

    Intention models become their canonical dict specs (the builders in
    :mod:`repro.workloads.boinc` accept those directly) and ``projects``
    becomes a tuple, so two equivalent populations compare equal and
    serialization is order-independent of how they were authored.
    """
    return replace(
        params,
        projects=tuple(params.projects),
        consumer_intentions=consumer_intentions_to_spec(params.consumer_intentions),
        provider_intentions=provider_intentions_to_spec(params.provider_intentions),
    )


def population_to_dict(params: BoincScenarioParams) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        name: getattr(params, name) for name in _POPULATION_SCALARS
    }
    data["projects"] = [project_spec_to_dict(p) for p in params.projects]
    data["archetype_mix"] = archetype_mix_to_dict(params.archetype_mix)
    data["consumer_intentions"] = consumer_intentions_to_spec(
        params.consumer_intentions
    )
    data["provider_intentions"] = provider_intentions_to_spec(
        params.provider_intentions
    )
    data["focal_provider"] = (
        None
        if params.focal_provider is None
        else focal_provider_to_dict(params.focal_provider)
    )
    data["focal_consumer"] = (
        None
        if params.focal_consumer is None
        else focal_consumer_to_dict(params.focal_consumer)
    )
    return data


def population_from_dict(data: Dict[str, Any]) -> BoincScenarioParams:
    kwargs = dataclass_kwargs(BoincScenarioParams, data, "BoincScenarioParams")
    if "projects" in kwargs:
        kwargs["projects"] = tuple(
            project_spec_from_dict(p) if isinstance(p, dict) else p
            for p in kwargs["projects"]
        )
    if isinstance(kwargs.get("archetype_mix"), dict):
        kwargs["archetype_mix"] = archetype_mix_from_dict(kwargs["archetype_mix"])
    if isinstance(kwargs.get("focal_provider"), dict):
        kwargs["focal_provider"] = focal_provider_from_dict(kwargs["focal_provider"])
    if isinstance(kwargs.get("focal_consumer"), dict):
        kwargs["focal_consumer"] = focal_consumer_from_dict(kwargs["focal_consumer"])
    return canonical_population(BoincScenarioParams(**kwargs))


def optional_failures_from_dict(data) -> Optional[FailureConfig]:
    if data is None or isinstance(data, FailureConfig):
        return data
    return failures_from_dict(data)


# ----------------------------------------------------------------------
# Dot-path overrides (the sweep layer's point expansion)
# ----------------------------------------------------------------------

#: Fields of :class:`SbQAConfig` addressable through the ``sbqa.`` prefix.
_SBQA_FIELDS = frozenset(f.name for f in fields(SbQAConfig))


def apply_spec_override(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set one dot-path in an ``ExperimentSpec`` dict, in place.

    Two addressing forms:

    * a plain dot-path into the spec's dict form, e.g. ``"duration"``,
      ``"population.memory"``, ``"autonomy.rejoin_cooldown"`` or
      ``"failures.mttf"`` -- every intermediate must be a dict and the
      final key must already exist, so typos fail loudly instead of
      being swallowed by ``from_dict``'s unknown-key check one level up;
    * ``"sbqa.<field>"`` fans the value out to every policy entry named
      ``sbqa`` (creating the explicit config dict when the policy relied
      on defaults), which is how a sweep axis varies ``omega``, ``kn``,
      ``k`` or ``epsilon`` across the comparison's SbQA arms.
    """
    head, _, rest = path.partition(".")
    if head == "sbqa":
        _apply_sbqa_override(data, path, rest, value)
        return
    parts = path.split(".")
    node = data
    for depth, part in enumerate(parts[:-1]):
        child = node.get(part) if isinstance(node, dict) else None
        if not isinstance(child, dict):
            where = ".".join(parts[: depth + 1])
            if child is None and part == "failures":
                hint = (
                    " (the base spec has no failure injection; give it a "
                    "failures block to sweep over it)"
                )
            elif child is None and part == "federation":
                hint = (
                    " (the base spec has no federation block; give it one "
                    "-- e.g. {\"shards\": 1} -- to sweep over shard count)"
                )
            else:
                hint = ""
            raise ValueError(
                f"cannot apply override {path!r}: {where!r} is not a "
                f"nested object in the spec{hint}"
            )
        node = child
    leaf = parts[-1]
    if not isinstance(node, dict) or leaf not in node:
        raise ValueError(
            f"cannot apply override {path!r}: no field {leaf!r} at that "
            f"path. Top-level spec fields: name, seed, duration, "
            f"sample_interval, population, autonomy, latency_low, "
            f"latency_high, failures, result_timeout, policies, "
            f"replications, ...; SbQA knobs use the 'sbqa.' prefix."
        )
    node[leaf] = value


def _apply_sbqa_override(
    data: Dict[str, Any], path: str, field_name: str, value: Any
) -> None:
    if field_name not in _SBQA_FIELDS:
        raise ValueError(
            f"cannot apply override {path!r}: SbQAConfig has no field "
            f"{field_name!r}. Valid fields: {', '.join(sorted(_SBQA_FIELDS))}"
        )
    targets = [
        p for p in data.get("policies", ()) if p.get("name", "").lower() == "sbqa"
    ]
    if not targets:
        raise ValueError(
            f"cannot apply override {path!r}: the base spec has no 'sbqa' "
            "policy entry to fan the value out to"
        )
    for policy in targets:
        config = policy.get("sbqa")
        if not isinstance(config, dict):
            # The entry relied on the default SbQAConfig; materialize it
            # so a single field can be overridden.
            config = sbqa_config_to_dict(SbQAConfig())
            policy["sbqa"] = config
        config[field_name] = value
