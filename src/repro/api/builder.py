"""The fluent experiment builder and the :class:`Experiment` facade.

The builder covers every knob the declarative layer exposes --
:class:`ExperimentConfig`, :class:`AutonomyConfig`,
:class:`BoincScenarioParams`, :class:`SbQAConfig`, failure injection --
behind chainable methods::

    spec = (
        Experiment.builder()
        .named("churn")
        .duration(2400)
        .policy("sbqa", kn=5)
        .policy("capacity")
        .autonomous(rejoin_cooldown=120)
        .replications(8)
        .build()
    )

``Experiment.from_scenario("scenario3", duration=900)`` seeds a builder
from a demo preset (see :mod:`repro.api.presets`), so scenario variants
are one override away instead of a hand-written configuration.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Union

from repro.api.presets import scenario_spec
from repro.api.serialization import dataclass_kwargs
from repro.api.spec import ExperimentSpec
from repro.core.sbqa import SbQAConfig
from repro.experiments.config import (
    AutonomyConfig,
    ExperimentConfig,
    PolicySpec,
)
from repro.federation.config import FederationConfig
from repro.system.failures import FailureConfig
from repro.workloads.boinc import (
    BoincScenarioParams,
    FocalConsumerSpec,
    FocalProviderSpec,
    ProjectSpec,
)
from repro.workloads.preferences import ArchetypeMix

#: Distinguishes "not passed" from an explicit ``None`` argument.
_UNSET: object = object()


class ExperimentBuilder:
    """Accumulates an :class:`ExperimentSpec` through chained calls.

    Every method returns ``self``; :meth:`build` validates and freezes
    the result.  A builder can be seeded from an existing spec (its
    state is copied, the source spec is never mutated).
    """

    def __init__(self, spec: Optional[ExperimentSpec] = None) -> None:
        seeded = spec is not None
        spec = spec if seeded else ExperimentSpec()
        self._name = spec.name
        self._seed = spec.seed
        self._duration = spec.duration
        self._sample_interval = spec.sample_interval
        self._engine = spec.engine
        self._population = spec.population
        self._autonomy = spec.autonomy
        self._latency_low = spec.latency_low
        self._latency_high = spec.latency_high
        self._federation = spec.federation
        self._failures = spec.failures
        self._result_timeout = spec.result_timeout
        self._adequation_over_candidates = spec.adequation_over_candidates
        self._keep_records = spec.keep_records
        self._track_provider_snapshots = spec.track_provider_snapshots
        self._policies: List[PolicySpec] = list(spec.policies)
        self._replications = spec.replications
        # A blank builder starts with an *empty* policy list so
        # `.policy(...)` calls define the comparison; seeding from a
        # spec — any spec, including one equal to the defaults — keeps
        # its policies (still replaceable via clear_policies()).
        if not seeded:
            self._policies = []

    # ------------------------------------------------------------------
    # Identity and horizon
    # ------------------------------------------------------------------

    def named(self, name: str) -> "ExperimentBuilder":
        """Set the experiment name (report and export headings)."""
        self._name = str(name)
        return self

    def seed(self, seed: int) -> "ExperimentBuilder":
        """Set the root random seed all replications derive from."""
        self._seed = int(seed)
        return self

    def duration(self, seconds: float) -> "ExperimentBuilder":
        """Set the simulated horizon in seconds."""
        self._duration = float(seconds)
        return self

    def sample_interval(self, seconds: float) -> "ExperimentBuilder":
        """Set the metric sweep period."""
        self._sample_interval = float(seconds)
        return self

    def engine(self, mode: str) -> "ExperimentBuilder":
        """Select the allocation runtime: ``"fast"`` or ``"event"``.

        The hot-path engine (default) and the event-faithful reference
        produce bit-identical results; ``"event"`` is the equivalence
        escape hatch (see docs/performance.md).
        """
        self._engine = str(mode)
        return self

    def latency(self, low: float, high: float) -> "ExperimentBuilder":
        """Set the uniform network latency band (seconds)."""
        self._latency_low = float(low)
        self._latency_high = float(high)
        return self

    # ------------------------------------------------------------------
    # Population and workload
    # ------------------------------------------------------------------

    def population(self, **kwargs) -> "ExperimentBuilder":
        """Override any :class:`BoincScenarioParams` field by name."""
        kwargs = dataclass_kwargs(BoincScenarioParams, kwargs, "population")
        self._population = replace(self._population, **kwargs)
        return self

    def providers(self, n: int) -> "ExperimentBuilder":
        """Set the volunteer population size."""
        return self.population(n_providers=int(n))

    def projects(self, *projects) -> "ExperimentBuilder":
        """Replace the consumer projects (ProjectSpec instances or dicts)."""
        specs = tuple(
            p if isinstance(p, ProjectSpec) else ProjectSpec(**p) for p in projects
        )
        return self.population(projects=specs)

    def archetype_mix(self, **fractions) -> "ExperimentBuilder":
        """Adjust the provider archetype fractions (must still sum to 1)."""
        fractions = dataclass_kwargs(ArchetypeMix, fractions, "archetype_mix")
        return self.population(
            archetype_mix=replace(self._population.archetype_mix, **fractions)
        )

    def capacity(
        self, mean: Optional[float] = None, cv: Optional[float] = None
    ) -> "ExperimentBuilder":
        """Set the provider capacity distribution."""
        kwargs = {}
        if mean is not None:
            kwargs["capacity_mean"] = float(mean)
        if cv is not None:
            kwargs["capacity_cv"] = float(cv)
        return self.population(**kwargs)

    def demand(
        self,
        mean: Optional[float] = None,
        cv: Optional[float] = None,
        distribution: Optional[str] = None,
        pareto_minimum: Optional[float] = None,
    ) -> "ExperimentBuilder":
        """Set the per-query service-demand distribution."""
        kwargs = {}
        if mean is not None:
            kwargs["demand_mean"] = float(mean)
        if cv is not None:
            kwargs["demand_cv"] = float(cv)
        if distribution is not None:
            kwargs["demand_distribution"] = distribution
        if pareto_minimum is not None:
            kwargs["pareto_minimum"] = float(pareto_minimum)
        return self.population(**kwargs)

    def target_load(self, fraction: float) -> "ExperimentBuilder":
        """Set the aggregate load the arrival rates are solved for."""
        return self.population(target_load=float(fraction))

    def replication_factor(self, n_results: int, quorum=_UNSET) -> "ExperimentBuilder":
        """Set BOINC-style query redundancy (replicas and quorum).

        ``quorum`` is only touched when passed explicitly (``None``
        means "all replicas must answer").
        """
        kwargs = {"n_results": int(n_results)}
        if quorum is not _UNSET:
            kwargs["quorum"] = quorum
        return self.population(**kwargs)

    def memory(
        self, size: int, jitter: Optional[float] = None
    ) -> "ExperimentBuilder":
        """Set the satisfaction window length (and optional jitter)."""
        kwargs = {"memory": int(size)}
        if jitter is not None:
            kwargs["memory_jitter"] = float(jitter)
        return self.population(**kwargs)

    def intentions(
        self, consumer=None, provider=None
    ) -> "ExperimentBuilder":
        """Set the intention models (names, dicts or model instances)."""
        kwargs = {}
        if consumer is not None:
            kwargs["consumer_intentions"] = consumer
        if provider is not None:
            kwargs["provider_intentions"] = provider
        return self.population(**kwargs)

    def focal_provider(self, **kwargs) -> "ExperimentBuilder":
        """Add the Scenario-7 style focal volunteer probe."""
        kwargs = dataclass_kwargs(FocalProviderSpec, kwargs, "focal_provider")
        return self.population(focal_provider=FocalProviderSpec(**kwargs))

    def focal_consumer(self, **kwargs) -> "ExperimentBuilder":
        """Add the Scenario-7 style focal project probe."""
        kwargs = dataclass_kwargs(FocalConsumerSpec, kwargs, "focal_consumer")
        return self.population(focal_consumer=FocalConsumerSpec(**kwargs))

    # ------------------------------------------------------------------
    # Autonomy and failures
    # ------------------------------------------------------------------

    def autonomy(self, **kwargs) -> "ExperimentBuilder":
        """Override any :class:`AutonomyConfig` field by name."""
        kwargs = dataclass_kwargs(AutonomyConfig, kwargs, "autonomy")
        self._autonomy = replace(self._autonomy, **kwargs)
        return self

    def captive(self) -> "ExperimentBuilder":
        """Participants cannot leave (the paper's captive regime)."""
        return self.autonomy(mode="captive")

    def autonomous(self, **kwargs) -> "ExperimentBuilder":
        """Participants depart below their satisfaction thresholds.

        Keyword arguments are the remaining :class:`AutonomyConfig`
        fields (thresholds, warmup, check interval, rejoin cooldown).
        """
        return self.autonomy(mode="autonomous", **kwargs)

    def failures(
        self,
        mttf: float,
        repair_time: Optional[float] = 120.0,
        start: float = 0.0,
        result_timeout: Optional[float] = None,
    ) -> "ExperimentBuilder":
        """Enable crash injection; see :class:`FailureConfig`.

        Crash runs need a consumer ``result_timeout``; pass it here or
        via :meth:`result_timeout` (build() enforces the coupling).
        """
        self._failures = FailureConfig(
            mttf=float(mttf), repair_time=repair_time, start=float(start)
        )
        if result_timeout is not None:
            self._result_timeout = float(result_timeout)
        return self

    def result_timeout(self, seconds: Optional[float]) -> "ExperimentBuilder":
        """Write off queries whose results do not arrive in time."""
        self._result_timeout = None if seconds is None else float(seconds)
        return self

    # ------------------------------------------------------------------
    # Federation
    # ------------------------------------------------------------------

    def federation(self, **kwargs) -> "ExperimentBuilder":
        """Enable the sharded multi-mediator federation.

        Keyword arguments are :class:`FederationConfig` fields
        (``shards``, ``partition``, ``forward_threshold``,
        ``virtual_nodes``); repeated calls override fields on the
        accumulated config.
        """
        kwargs = dataclass_kwargs(FederationConfig, kwargs, "federation")
        base = self._federation or FederationConfig()
        self._federation = replace(base, **kwargs)
        return self

    def shards(self, k: Optional[int]) -> "ExperimentBuilder":
        """Set the mediator shard count (``None`` disables federation)."""
        if k is None:
            self._federation = None
            return self
        return self.federation(shards=int(k))

    # ------------------------------------------------------------------
    # Measurement flags
    # ------------------------------------------------------------------

    def adequation_over_candidates(self, enabled: bool = True) -> "ExperimentBuilder":
        """Compute adequation over the whole capable set (costlier)."""
        self._adequation_over_candidates = bool(enabled)
        return self

    def keep_records(self, enabled: bool = True) -> "ExperimentBuilder":
        """Retain every allocation record for post-run analysis."""
        self._keep_records = bool(enabled)
        return self

    def track_provider_snapshots(self, enabled: bool = True) -> "ExperimentBuilder":
        """Record per-provider satisfaction at every metric sweep."""
        self._track_provider_snapshots = bool(enabled)
        return self

    # ------------------------------------------------------------------
    # Policies and replications
    # ------------------------------------------------------------------

    def policy(
        self, name: str, label: Optional[str] = None, **params
    ) -> "ExperimentBuilder":
        """Add one allocation technique to the comparison.

        For ``name="sbqa"`` the keyword arguments are
        :class:`SbQAConfig` fields (``k``, ``kn``, ``epsilon``,
        ``omega``); for the baselines they are constructor parameters
        (e.g. ``selfishness`` for the economic policy).
        """
        if name.lower() == "sbqa":
            sbqa_kwargs = dataclass_kwargs(SbQAConfig, params, "SbQAConfig")
            spec = PolicySpec(
                name="sbqa", label=label or "", sbqa=SbQAConfig(**sbqa_kwargs)
            )
        else:
            spec = PolicySpec(name=name, label=label or "", params=params)
        return self.policy_spec(spec)

    def policy_spec(self, spec: PolicySpec) -> "ExperimentBuilder":
        """Add a pre-built :class:`PolicySpec` (sweeps, custom labels)."""
        if not isinstance(spec, PolicySpec):
            raise TypeError(f"expected a PolicySpec, got {type(spec).__name__}")
        self._policies.append(spec)
        return self

    def clear_policies(self) -> "ExperimentBuilder":
        """Drop the accumulated policy list (preset overrides)."""
        self._policies = []
        return self

    def replications(self, n: int) -> "ExperimentBuilder":
        """Run every policy this many times over independent seeds."""
        self._replications = int(n)
        return self

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------

    def build(self) -> ExperimentSpec:
        """Validate and return the accumulated :class:`ExperimentSpec`.

        With no :meth:`policy` calls the spec defaults to SbQA alone.
        """
        policies = tuple(self._policies) or (PolicySpec(name="sbqa"),)
        return ExperimentSpec(
            name=self._name,
            seed=self._seed,
            duration=self._duration,
            sample_interval=self._sample_interval,
            engine=self._engine,
            population=self._population,
            autonomy=self._autonomy,
            latency_low=self._latency_low,
            latency_high=self._latency_high,
            federation=self._federation,
            failures=self._failures,
            result_timeout=self._result_timeout,
            adequation_over_candidates=self._adequation_over_candidates,
            keep_records=self._keep_records,
            track_provider_snapshots=self._track_provider_snapshots,
            policies=policies,
            replications=self._replications,
        )

    def session(self):
        """A :class:`~repro.api.session.Session` over the built spec."""
        from repro.api.session import Session

        return Session(self.build())

    def run(self, parallel: bool = False, max_workers: Optional[int] = None):
        """Build and execute; see :meth:`repro.api.session.Session.run`."""
        return self.session().run(parallel=parallel, max_workers=max_workers)

    def sweep(self):
        """A :class:`~repro.api.sweep.SweepBuilder` over the built spec.

        Turns the accumulated experiment into the *base* of a parameter
        grid; chain ``.axis(path, values)`` calls and ``.run()`` /
        ``.stream()`` from there.
        """
        from repro.api.sweep import SweepBuilder

        return SweepBuilder(self.build())


class Experiment:
    """Entry points of the layered API (purely static; not instantiated)."""

    def __new__(cls, *args, **kwargs):  # pragma: no cover - misuse guard
        raise TypeError(
            "Experiment is a namespace; use Experiment.builder(), "
            "Experiment.from_scenario(...) or Experiment.load(...)"
        )

    @staticmethod
    def builder() -> ExperimentBuilder:
        """A blank fluent builder."""
        return ExperimentBuilder()

    @staticmethod
    def from_scenario(scenario_id: str, **overrides) -> ExperimentBuilder:
        """A builder seeded from a demo scenario preset.

        ``overrides`` are the preset parameters: ``seed``, ``duration``,
        ``n_providers``, ``replications``, plus any
        :class:`BoincScenarioParams` field.
        """
        return ExperimentBuilder(scenario_spec(scenario_id, **overrides))

    @staticmethod
    def from_spec(spec) -> ExperimentBuilder:
        """A builder seeded from a spec (or its dict form)."""
        if isinstance(spec, dict):
            spec = ExperimentSpec.from_dict(spec)
        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"expected an ExperimentSpec or dict, got {type(spec).__name__}"
            )
        return ExperimentBuilder(spec)

    @staticmethod
    def from_config(
        config: ExperimentConfig, policies, replications: int = 1
    ) -> ExperimentBuilder:
        """A builder lifted from the imperative ``(config, policies)`` pair."""
        return ExperimentBuilder(
            ExperimentSpec.from_config(config, policies, replications=replications)
        )

    @staticmethod
    def load(path: Union[str, Path]) -> ExperimentBuilder:
        """A builder seeded from a JSON spec file."""
        return ExperimentBuilder(ExperimentSpec.load(path))

    @staticmethod
    def sweep(base=None):
        """A :class:`~repro.api.sweep.SweepBuilder`, optionally seeded.

        ``base`` may be an :class:`ExperimentSpec`, a builder, or a spec
        dict; omitted, the sweep derives from the default experiment.
        """
        from repro.api.sweep import SweepBuilder

        if isinstance(base, ExperimentBuilder):
            base = base.build()
        elif isinstance(base, dict):
            base = ExperimentSpec.from_dict(base)
        elif base is not None and not isinstance(base, ExperimentSpec):
            raise TypeError(
                "Experiment.sweep() takes an ExperimentSpec, an "
                f"ExperimentBuilder or a spec dict, got {type(base).__name__}"
            )
        return SweepBuilder(base)

    @staticmethod
    def tune(search):
        """A :class:`~repro.api.tune.TuneBuilder` over a search space.

        ``search`` is the parameter grid to race: a
        :class:`~repro.api.sweep.SweepSpec`, a
        :class:`~repro.api.sweep.SweepBuilder`, or a sweep dict.  Chain
        ``.objective(...)``, ``.budget(...)`` and ``.run()`` from the
        returned builder -- or end a sweep chain with ``.tune()`` for
        the same thing.
        """
        from repro.api.sweep import SweepBuilder, SweepSpec
        from repro.api.tune import TuneBuilder

        if isinstance(search, SweepBuilder):
            search = search.build()
        elif isinstance(search, dict):
            search = SweepSpec.from_dict(search)
        elif not isinstance(search, SweepSpec):
            raise TypeError(
                "Experiment.tune() takes a SweepSpec, a SweepBuilder or a "
                f"sweep dict, got {type(search).__name__}"
            )
        return TuneBuilder(search)
