"""Scenario presets: the demo's experiments as :class:`ExperimentSpec`\\ s.

Each preset reproduces the configuration of the corresponding
``scenarioN_*`` function of :mod:`repro.experiments.scenarios` --
population scale, autonomy regime, the policies compared -- as a
declarative spec, so the demo experiments can be replicated, scaled,
serialized and parallelised through the layered API::

    spec = scenario_spec("scenario4", duration=1200.0, replications=8)
    result = Session(spec).run(parallel=True)

The scenario functions themselves import these presets, which keeps the
two entry points (claim-checking scenario reports, spec-driven
sessions) structurally identical by construction.

Note Scenario 5 compares *two* populations (interest-driven vs
performance-driven intentions); its preset is the performance-driven
arm, which is the configuration the scenario's headline claims are
about.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.api.spec import ExperimentSpec
from repro.core.sbqa import SbQAConfig
from repro.experiments.config import (
    AutonomyConfig,
    DEFAULT_SEED,
    PolicySpec,
)
from repro.workloads.boinc import (
    BoincScenarioParams,
    FocalConsumerSpec,
    FocalProviderSpec,
)

#: The two interest-blind baselines every scenario compares against.
BASELINE_POLICIES: Tuple[PolicySpec, ...] = (
    PolicySpec(name="capacity"),
    PolicySpec(name="economic"),
)


def sbqa_policy(label: str = "sbqa", **sbqa_kwargs) -> PolicySpec:
    """An SbQA policy entry (kwargs are :class:`SbQAConfig` fields)."""
    return PolicySpec(name="sbqa", label=label, sbqa=SbQAConfig(**sbqa_kwargs))


def scenario_autonomy(autonomous: bool, duration: float) -> AutonomyConfig:
    """The demo's autonomy regime at a given horizon.

    The warmup shrinks with short benches (``min(300, duration / 8)``)
    so scaled-down runs still see churn.
    """
    return AutonomyConfig(
        mode="autonomous" if autonomous else "captive",
        warmup=min(300.0, duration / 8.0),
    )


def _spec(
    scenario_id: str,
    seed: int,
    duration: float,
    n_providers: int,
    autonomous: bool,
    policies: Tuple[PolicySpec, ...],
    replications: int,
    population_overrides: Dict[str, object],
    track_provider_snapshots: bool = False,
) -> ExperimentSpec:
    population = BoincScenarioParams(n_providers=n_providers, **population_overrides)
    return ExperimentSpec(
        name=scenario_id,
        seed=seed,
        duration=duration,
        population=population,
        autonomy=scenario_autonomy(autonomous, duration),
        track_provider_snapshots=track_provider_snapshots,
        policies=policies,
        replications=replications,
    )


def scenario1_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """Capacity vs economic under the satisfaction lens (captive)."""
    return _spec(
        "scenario1", seed, duration, n_providers, False,
        BASELINE_POLICIES, replications, population_overrides,
    )


def scenario2_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """Baselines under churn; provider snapshots feed the departure
    prediction analysis."""
    return _spec(
        "scenario2", seed, duration, n_providers, True,
        BASELINE_POLICIES, replications, population_overrides,
        track_provider_snapshots=True,
    )


def scenario3_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """SbQA vs baselines where nobody can leave."""
    return _spec(
        "scenario3", seed, duration, n_providers, False,
        (sbqa_policy(),) + BASELINE_POLICIES, replications, population_overrides,
    )


def scenario4_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """SbQA vs baselines under churn (the paper's headline)."""
    return _spec(
        "scenario4", seed, duration, n_providers, True,
        (sbqa_policy(),) + BASELINE_POLICIES, replications, population_overrides,
    )


def scenario5_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """The performance-intentions arm of the adaptation study: SbQA as
    a load balancer vs the dedicated capacity balancer."""
    overrides = {
        "consumer_intentions": {"model": "response-time-only"},
        "provider_intentions": {"model": "load-only"},
    }
    overrides.update(population_overrides)
    return _spec(
        "scenario5", seed, duration, n_providers, False,
        (sbqa_policy("sbqa[performance]"), PolicySpec(name="capacity")),
        replications, overrides,
    )


def scenario6_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    k: int = 20,
    **population_overrides,
) -> ExperimentSpec:
    """The kn / omega tuning sweep of the application-adaptability study."""
    policies = tuple(scenario6_policies(k))
    return _spec(
        "scenario6", seed, duration, n_providers, False,
        policies, replications, population_overrides,
    )


def scenario6_kn_values(k: int = 20) -> list:
    """The kn settings Scenario 6 sweeps for a given pool size.

    Single source of truth: the scenario's claim checks look sweep
    entries up by these values, so the label set and the checks cannot
    drift apart.
    """
    return sorted({1, max(2, k // 8), k // 2, k})


def scenario6_policies(k: int = 20):
    """The sweep entries Scenario 6 compares, for a given pool size."""
    kn_values = scenario6_kn_values(k)
    policies = [
        sbqa_policy(f"sbqa[kn={kn}]", k=k, kn=kn, omega="adaptive")
        for kn in kn_values
    ]
    policies += [
        sbqa_policy(f"sbqa[w={omega:g}]", k=k, kn=k // 2, omega=omega)
        for omega in (0.0, 0.5, 1.0)
    ]
    policies.append(sbqa_policy("sbqa[w=adaptive]", k=k, kn=k // 2, omega="adaptive"))
    return policies


def scenario7_spec(
    seed: int = DEFAULT_SEED,
    duration: float = 2400.0,
    n_providers: int = 120,
    replications: int = 1,
    **population_overrides,
) -> ExperimentSpec:
    """Every mediation probed by a focal volunteer and a focal project."""
    overrides = {
        "focal_provider": FocalProviderSpec(loves="einstein"),
        "focal_consumer": FocalConsumerSpec(),
    }
    overrides.update(population_overrides)
    policies = (
        sbqa_policy(),
        PolicySpec(name="capacity"),
        PolicySpec(name="economic"),
        PolicySpec(name="boinc-shares"),
        PolicySpec(name="random"),
    )
    return _spec(
        "scenario7", seed, duration, n_providers, False,
        policies, replications, overrides,
    )


#: Scenario id -> preset spec factory.
SCENARIO_PRESETS: Dict[str, Callable[..., ExperimentSpec]] = {
    "scenario1": scenario1_spec,
    "scenario2": scenario2_spec,
    "scenario3": scenario3_spec,
    "scenario4": scenario4_spec,
    "scenario5": scenario5_spec,
    "scenario6": scenario6_spec,
    "scenario7": scenario7_spec,
}


def available_scenarios() -> Tuple[str, ...]:
    """The scenario ids :func:`scenario_spec` accepts, sorted."""
    return tuple(sorted(SCENARIO_PRESETS))


def scenario_spec(scenario_id: str, **kwargs) -> ExperimentSpec:
    """The preset spec of one demo scenario, with overrides.

    ``kwargs`` are the preset's parameters (``seed``, ``duration``,
    ``n_providers``, ``replications``, plus any
    :class:`BoincScenarioParams` field as a population override).
    """
    try:
        factory = SCENARIO_PRESETS[scenario_id]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario_id!r}; "
            f"available: {', '.join(available_scenarios())}"
        ) from None
    return factory(**kwargs)
