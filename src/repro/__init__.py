"""SbQA: Satisfaction-based Query Allocation -- an ICDE 2009 reproduction.

A from-scratch Python implementation of the query-allocation framework
of Quiané-Ruiz, Lamarre and Valduriez, *SbQA: A Self-Adaptable Query
Allocation Process* (ICDE 2009), together with every substrate the
paper's demonstration depends on: a discrete-event simulation kernel, a
BOINC-like volunteer-computing system model, the KnBest and SQLB
components, the capacity-based / economic / resource-shares baselines,
and the seven demo scenarios as runnable experiments.

The supported way to drive the system is the layered API of
:mod:`repro.api` -- declarative spec, fluent builder, session runtime::

    from repro import Experiment

    result = (
        Experiment.from_scenario("scenario4", duration=1200.0)
        .replications(4)
        .run(parallel=True)
    )
    print(result.comparison_table())

The classic entry points (``scenario3_captive(...)``, ``run_once``,
manual assembly -- see ``examples/quickstart.py``) keep working; this
module is a curated facade that resolves every name lazily from its
defining subpackage, so ``import repro`` stays light.
"""

import warnings as _warnings

__version__ = "1.1.0"

#: name -> defining module.  The facade resolves these lazily (PEP 562).
_EXPORTS = {
    # layered API (the supported entry points)
    "Experiment": "repro.api",
    "ExperimentBuilder": "repro.api",
    "ExperimentSpec": "repro.api",
    "Session": "repro.api",
    "ExperimentResult": "repro.api",
    "PolicyResult": "repro.api",
    "SweepSpec": "repro.api",
    "SweepAxis": "repro.api",
    "SweepSession": "repro.api",
    "SweepBuilder": "repro.api",
    "SweepResult": "repro.api",
    "SweepPointResult": "repro.api",
    "TuneSpec": "repro.api",
    "TuneSession": "repro.api",
    "TuneBuilder": "repro.api",
    "TuneResult": "repro.api",
    "scenario_spec": "repro.api",
    "available_scenarios": "repro.api",
    # core
    "SbQAPolicy": "repro.core",
    "SbQAConfig": "repro.core",
    "Mediator": "repro.core",
    "KnBestSelector": "repro.core",
    "sqlb_score": "repro.core",
    "adaptive_omega": "repro.core",
    "AdaptiveOmega": "repro.core",
    "FixedOmega": "repro.core",
    "consumer_query_satisfaction": "repro.core",
    "ConsumerSatisfactionTracker": "repro.core",
    "ProviderSatisfactionTracker": "repro.core",
    "AllocationPolicy": "repro.core",
    # baselines
    "CapacityBasedPolicy": "repro.allocation",
    "EconomicPolicy": "repro.allocation",
    "BoincSharesPolicy": "repro.allocation",
    "RandomPolicy": "repro.allocation",
    "RoundRobinPolicy": "repro.allocation",
    "ShortestQueuePolicy": "repro.allocation",
    "available_policies": "repro.allocation",
    "make_policy": "repro.allocation",
    # kernel
    "Simulator": "repro.des",
    "Network": "repro.des",
    "RandomRoot": "repro.des",
    "TraceRecorder": "repro.des",
    # system
    "Consumer": "repro.system",
    "Provider": "repro.system",
    "Query": "repro.system",
    "SystemRegistry": "repro.system",
    "FailureConfig": "repro.system",
    "CrashInjector": "repro.system",
    # analysis
    "PredictionReport": "repro.analysis",
    "predict_departures": "repro.analysis",
    "Comparison": "repro.analysis",
    "compare_aggregates": "repro.analysis",
    "welch_t_test": "repro.analysis",
    # workloads
    "BoincScenarioParams": "repro.workloads",
    "build_boinc_population": "repro.workloads",
    # experiments (imperative layer)
    "ExperimentConfig": "repro.experiments",
    "PolicySpec": "repro.experiments",
    "AutonomyConfig": "repro.experiments",
    "RunResult": "repro.experiments",
    "LiveRun": "repro.experiments",
    "ScenarioResult": "repro.experiments",
    "run_once": "repro.experiments",
    "run_replications": "repro.experiments",
    "scenario1_satisfaction_model": "repro.experiments",
    "scenario2_departures": "repro.experiments",
    "scenario3_captive": "repro.experiments",
    "scenario4_autonomous": "repro.experiments",
    "scenario5_expectation_adaptation": "repro.experiments",
    "scenario6_application_adaptability": "repro.experiments",
    "scenario7_focal_participant": "repro.experiments",
}

#: Top-level shims superseded by the layered API; accessing them through
#: ``repro`` warns once, the canonical homes stay silent.
_DEPRECATED = {
    "run_once": "Session(spec).run() / repro.experiments.runner.run_once",
    "run_replications": (
        "Session(spec).run() with spec.replications > 1 / "
        "repro.experiments.replication.run_replications"
    ),
}

# Deprecated shims stay importable (`from repro import run_once` works,
# with a warning) but are excluded from __all__, so enumerating or
# star-importing the public API does not trigger DeprecationWarning.
__all__ = sorted(set(_EXPORTS) - set(_DEPRECATED)) + ["__version__"]


#: Subpackages reachable as ``repro.<name>`` without an explicit
#: ``import repro.<name>`` (the eager facade used to bind these).
_SUBMODULES = frozenset({
    "allocation", "analysis", "api", "cli", "core", "des",
    "experiments", "metrics", "system", "workloads",
})


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        module = importlib.import_module(f"repro.{name}")
        globals()[name] = module
        return module
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    if name in _DEPRECATED:
        _warnings.warn(
            f"repro.{name} is deprecated; use {_DEPRECATED[name]}",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    if name not in _DEPRECATED:  # cache so __getattr__ (and the warning) fires once
        globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
