"""SbQA: Satisfaction-based Query Allocation -- an ICDE 2009 reproduction.

A from-scratch Python implementation of the query-allocation framework
of Quiané-Ruiz, Lamarre and Valduriez, *SbQA: A Self-Adaptable Query
Allocation Process* (ICDE 2009), together with every substrate the
paper's demonstration depends on: a discrete-event simulation kernel, a
BOINC-like volunteer-computing system model, the KnBest and SQLB
components, the capacity-based / economic / resource-shares baselines,
and the seven demo scenarios as runnable experiments.

Quickstart::

    from repro import scenario3_captive

    result = scenario3_captive(duration=600.0, n_providers=60)
    print(result.report())

Or assemble the pieces yourself -- see ``examples/quickstart.py``.
"""

from repro.core import (
    AdaptiveOmega,
    AllocationPolicy,
    ConsumerSatisfactionTracker,
    FixedOmega,
    KnBestSelector,
    Mediator,
    ProviderSatisfactionTracker,
    SbQAConfig,
    SbQAPolicy,
    adaptive_omega,
    consumer_query_satisfaction,
    sqlb_score,
)
from repro.allocation import (
    BoincSharesPolicy,
    CapacityBasedPolicy,
    EconomicPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    ShortestQueuePolicy,
    available_policies,
    make_policy,
)
from repro.des import Network, RandomRoot, Simulator, TraceRecorder
from repro.experiments import (
    AutonomyConfig,
    ExperimentConfig,
    PolicySpec,
    RunResult,
    ScenarioResult,
    run_once,
    run_replications,
    scenario1_satisfaction_model,
    scenario2_departures,
    scenario3_captive,
    scenario4_autonomous,
    scenario5_expectation_adaptation,
    scenario6_application_adaptability,
    scenario7_focal_participant,
)
from repro.analysis import (
    Comparison,
    PredictionReport,
    compare_aggregates,
    predict_departures,
    welch_t_test,
)
from repro.system import (
    Consumer,
    CrashInjector,
    FailureConfig,
    Provider,
    Query,
    SystemRegistry,
)
from repro.workloads import BoincScenarioParams, build_boinc_population

__version__ = "1.0.0"

__all__ = [
    # core
    "SbQAPolicy",
    "SbQAConfig",
    "Mediator",
    "KnBestSelector",
    "sqlb_score",
    "adaptive_omega",
    "AdaptiveOmega",
    "FixedOmega",
    "consumer_query_satisfaction",
    "ConsumerSatisfactionTracker",
    "ProviderSatisfactionTracker",
    "AllocationPolicy",
    # baselines
    "CapacityBasedPolicy",
    "EconomicPolicy",
    "BoincSharesPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "ShortestQueuePolicy",
    "available_policies",
    "make_policy",
    # kernel
    "Simulator",
    "Network",
    "RandomRoot",
    "TraceRecorder",
    # system
    "Consumer",
    "Provider",
    "Query",
    "SystemRegistry",
    "FailureConfig",
    "CrashInjector",
    # analysis
    "PredictionReport",
    "predict_departures",
    "Comparison",
    "compare_aggregates",
    "welch_t_test",
    # workloads
    "BoincScenarioParams",
    "build_boinc_population",
    # experiments
    "ExperimentConfig",
    "PolicySpec",
    "AutonomyConfig",
    "RunResult",
    "ScenarioResult",
    "run_once",
    "run_replications",
    "scenario1_satisfaction_model",
    "scenario2_departures",
    "scenario3_captive",
    "scenario4_autonomous",
    "scenario5_expectation_adaptation",
    "scenario6_application_adaptability",
    "scenario7_focal_participant",
    "__version__",
]
