"""Latency-modelled message delivery between entities.

The demo prototype simulated its network with SimJava; here a
:class:`Network` pairs a :class:`LatencyModel` with the simulator: a
``send`` schedules the destination entity's
:meth:`~repro.des.entity.Entity.receive` after the modelled delay.

Latency models provided:

* :class:`ZeroLatency` -- everything is instantaneous (unit tests,
  micro-benchmarks where network time is noise);
* :class:`UniformLatency` -- one-way delay drawn uniformly from
  ``[low, high]``, the classic SimJava-style parameterisation;
* :class:`FixedLatency` -- constant delay, convenient for exact-time
  assertions in tests.

Messages carry a ``kind`` string and an arbitrary payload; entities
dispatch on ``kind``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.des.entity import Entity
from repro.des.rng import RandomStream
from repro.des.scheduler import Simulator


@dataclass(frozen=True)
class Message:
    """An in-flight or delivered simulation message."""

    kind: str
    sender: Entity
    recipient: Entity
    payload: Any = None
    sent_at: float = 0.0
    delivered_at: float = 0.0

    @property
    def latency(self) -> float:
        """One-way delay this message experienced."""
        return self.delivered_at - self.sent_at


class LatencyModel:
    """Strategy interface: one-way delay for a (src, dst) pair."""

    def delay(self, sender: Entity, recipient: Entity) -> float:
        raise NotImplementedError

    def constant_delay(self) -> Optional[float]:
        """The one-way delay if it is deterministic and pair-independent.

        Returns ``None`` when delays vary (randomly or per pair).  A
        non-None value is a promise that :meth:`delay` returns exactly
        this float for every pair *without consuming randomness*, which
        is what lets the fast engine compute consultation round-trips
        analytically and collapse dispatch deliveries into one event
        (see :mod:`repro.core.engine`).
        """
        return None


class ZeroLatency(LatencyModel):
    """No network delay at all."""

    def delay(self, sender: Entity, recipient: Entity) -> float:
        return 0.0

    def constant_delay(self) -> Optional[float]:
        return 0.0

    def __repr__(self) -> str:
        return "ZeroLatency()"


class FixedLatency(LatencyModel):
    """Constant one-way delay."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.seconds = float(seconds)

    def delay(self, sender: Entity, recipient: Entity) -> float:
        return self.seconds

    def constant_delay(self) -> Optional[float]:
        return self.seconds

    def __repr__(self) -> str:
        return f"FixedLatency({self.seconds})"


class UniformLatency(LatencyModel):
    """One-way delay uniform in ``[low, high]``, drawn from a named stream."""

    def __init__(self, low: float, high: float, stream: RandomStream) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)
        self._stream = stream

    def delay(self, sender: Entity, recipient: Entity) -> float:
        if self.low == self.high:
            return self.low
        return self._stream.uniform(self.low, self.high)

    def constant_delay(self) -> Optional[float]:
        # A degenerate band short-circuits before the stream is touched
        # (see delay()), so it qualifies as deterministic.
        return self.low if self.low == self.high else None

    def __repr__(self) -> str:
        return f"UniformLatency([{self.low}, {self.high}])"


class Network:
    """Delivers messages between entities with modelled latency.

    Also keeps simple counters so experiments can report message volume
    (mediation has a 2-message overhead per consulted provider in SbQA,
    which the KnBest paper motivates bounding via ``k``).
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ZeroLatency()
        self.messages_sent = 0
        self.messages_delivered = 0

    def send(self, kind: str, sender: Entity, recipient: Entity, payload: Any = None) -> Message:
        """Schedule delivery of a message; returns the in-flight message."""
        delay = self.latency.delay(sender, recipient)
        if delay < 0:
            raise ValueError(f"latency model produced negative delay {delay}")
        sent_at = self.sim.now
        message = Message(
            kind=kind,
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=sent_at,
            delivered_at=sent_at + delay,
        )
        self.messages_sent += 1

        def deliver() -> None:
            self.messages_delivered += 1
            recipient.receive(message)

        self.sim.schedule_in(delay, deliver, label=f"deliver:{kind}->{recipient.name}")
        return message

    def __repr__(self) -> str:
        return (
            f"Network(latency={self.latency!r}, sent={self.messages_sent}, "
            f"delivered={self.messages_delivered})"
        )
