"""Structured simulation traces.

A :class:`TraceRecorder` collects :class:`TraceEvent` records --
``(time, category, message, data)`` tuples -- from any component that
was handed the recorder.  It backs:

* the Figure-1 pipeline bench, which shows the stages of one SbQA
  mediation (candidates -> KnBest -> intentions -> scores -> allocation);
* integration tests that assert on the sequence of system actions;
* the ``--trace`` mode of the CLI.

Recording is cheap (an append) and can be disabled wholesale or
filtered by category so full-scale experiments are not slowed down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set


@dataclass(frozen=True)
class TraceEvent:
    """One recorded fact about the simulation."""

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable single-line rendering."""
        extra = ""
        if self.data:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
            extra = f" [{parts}]"
        return f"t={self.time:10.3f}  {self.category:<12} {self.message}{extra}"


class TraceRecorder:
    """Collects trace events, optionally filtered by category.

    Parameters
    ----------
    enabled:
        Master switch; a disabled recorder drops everything.
    categories:
        If given, only these categories are kept.
    capacity:
        Optional ring-buffer bound; oldest events are dropped once the
        bound is reached, so long runs cannot exhaust memory.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self._categories: Optional[Set[str]] = set(categories) if categories else None
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, category: str, message: str, **data: Any) -> None:
        """Record one event (no-op when disabled or filtered out)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        self._events.append(TraceEvent(time=time, category=category, message=message, data=data))
        if self._capacity is not None and len(self._events) > self._capacity:
            overflow = len(self._events) - self._capacity
            del self._events[:overflow]
            self.dropped += overflow

    # -- access -----------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """All retained events in recording order (defensive copy)."""
        return list(self._events)

    def by_category(self, category: str) -> List[TraceEvent]:
        """Retained events of one category."""
        return [e for e in self._events if e.category == category]

    def categories(self) -> Set[str]:
        """Distinct categories seen."""
        return {e.category for e in self._events}

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop all retained events and reset the drop counter."""
        self._events.clear()
        self.dropped = 0

    def format(self, limit: Optional[int] = None) -> str:
        """Multi-line rendering of (up to ``limit``) retained events."""
        events = self._events if limit is None else self._events[:limit]
        return "\n".join(e.format() for e in events)


#: A recorder that drops everything; safe default for components that
#: take an optional recorder.
NULL_RECORDER = TraceRecorder(enabled=False)
