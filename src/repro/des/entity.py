"""Simulation entities.

An :class:`Entity` is a named actor bound to a
:class:`~repro.des.scheduler.Simulator`.  Consumers, providers and the
mediator all derive from it.  The base class provides:

* identity (``entity_id`` unique per simulator binding, plus a
  human-readable ``name``);
* scheduling sugar (:meth:`call_in`, :meth:`call_at`);
* a message inbox hook (:meth:`receive`) used by
  :class:`~repro.des.network.Network` delivery.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.des.events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.network import Message
    from repro.des.scheduler import Simulator

_entity_counter = itertools.count()


class Entity:
    """A named actor in the simulation."""

    #: Message kinds this entity can receive without a
    #: :class:`~repro.des.network.Message` envelope: kind -> name of the
    #: bound method taking the bare payload.  The fast engine's network
    #: (:class:`repro.core.engine.FastNetwork`) uses this to deliver
    #: payloads directly; kinds absent from the map fall back to the
    #: envelope path and :meth:`receive`, preserving the loud-failure
    #: behaviour for unexpected messages.
    FAST_HANDLERS: "Dict[str, str]" = {}

    def __init__(self, sim: "Simulator", name: str) -> None:
        if not name:
            raise ValueError("entity name must be non-empty")
        self.sim = sim
        self.name = name
        self.entity_id = next(_entity_counter)

    # -- scheduling sugar ----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.sim.now

    def call_in(self, delay: float, action: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``action`` after ``delay`` seconds of simulated time."""
        return self.sim.schedule_in(delay, action, label=label or f"{self.name}:call_in")

    def call_at(self, time: float, action: Callable[[], None], label: str = "") -> EventHandle:
        """Schedule ``action`` at absolute simulation time ``time``."""
        return self.sim.schedule_at(time, action, label=label or f"{self.name}:call_at")

    # -- messaging hook --------------------------------------------------

    def fast_handler(self, kind: str) -> "Optional[Callable[[Any], None]]":
        """The bound payload handler for ``kind``, or None.

        Resolved once per entity instance from :attr:`FAST_HANDLERS`
        and cached, so the per-send cost in the fast engine is one dict
        lookup.
        """
        cache = self.__dict__.get("_fast_handlers")
        if cache is None:
            cache = {
                kind: getattr(self, method_name)
                for kind, method_name in self.FAST_HANDLERS.items()
            }
            self._fast_handlers = cache
        return cache.get(kind)

    def receive(self, message: "Message") -> None:
        """Handle a delivered message.

        The base implementation raises so that wiring errors (a message
        routed to an entity that does not expect any) fail loudly
        instead of vanishing.
        """
        raise NotImplementedError(
            f"{type(self).__name__} {self.name!r} received unexpected message "
            f"{message.kind!r}"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class RecordingEntity(Entity):
    """An entity that stores every received message; used in tests."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        super().__init__(sim, name)
        self.inbox: list = []

    def receive(self, message: "Message") -> None:
        self.inbox.append(message)

    def payloads(self) -> list:
        """The payloads of all received messages, in delivery order."""
        return [m.payload for m in self.inbox]


def reset_entity_counter() -> None:
    """Reset the global entity-id counter (test isolation only)."""
    global _entity_counter
    _entity_counter = itertools.count()


def peek_entity_counter() -> int:
    """Next id that would be assigned; exposed for determinism tests."""
    global _entity_counter
    value = next(_entity_counter)
    # Re-prime the counter so the peek is non-destructive.
    _entity_counter = itertools.chain([value], _entity_counter)  # type: ignore[assignment]
    return value


def format_entity(entity: Entity) -> str:
    """Stable display string ``name#id`` used in traces."""
    return f"{entity.name}#{entity.entity_id}"
