"""Events and event handles for the simulation kernel.

An :class:`Event` couples a simulation timestamp with a zero-argument
callback.  Events are totally ordered by ``(time, priority, seq)``:

* ``time`` -- the simulation instant at which the event fires;
* ``priority`` -- tie-breaker for events scheduled at the same instant
  (lower fires first); defaults to :data:`DEFAULT_PRIORITY`;
* ``seq`` -- a monotonically increasing sequence number assigned by the
  scheduler, which makes the order total and deterministic even for
  events with identical time and priority (FIFO among equals).

User code does not build events directly; it calls
:meth:`repro.des.scheduler.Simulator.schedule_at` /
:meth:`~repro.des.scheduler.Simulator.schedule_in`, which return an
:class:`EventHandle` usable to cancel the event.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

#: Priority assigned when the caller does not specify one.  Having slack
#: on both sides lets tests exercise both earlier and later priorities.
DEFAULT_PRIORITY = 0


@functools.total_ordering
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    __slots__ = ("time", "priority", "seq", "action", "label", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> None:
        if time != time:  # NaN guard: NaN breaks heap ordering silently.
            raise ValueError("event time must not be NaN")
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.action = action
        self.label = label
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether the event was cancelled before firing."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; the scheduler will skip it."""
        self._cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() == other.sort_key()

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.seq))

    def __repr__(self) -> str:
        flag = " CANCELLED" if self._cancelled else ""
        name = self.label or getattr(self.action, "__name__", "<callable>")
        return f"Event(t={self.time:.6g}, prio={self.priority}, seq={self.seq}, {name}{flag})"


class EventHandle:
    """A cancellation handle returned by the scheduler.

    Keeps a reference to the underlying event without exposing mutation
    of its schedule.  ``cancel()`` is idempotent and safe to call after
    the event fired (it is then a no-op).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulation time the event is scheduled for."""
        return self._event.time

    @property
    def label(self) -> str:
        return self._event.label

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancel()

    def __repr__(self) -> str:
        return f"EventHandle({self._event!r})"


def make_repeating(
    schedule_in: Callable[[float, Callable[[], None]], "EventHandle"],
    interval: float,
    action: Callable[[], None],
    stop_when: Optional[Callable[[], bool]] = None,
) -> Callable[[], None]:
    """Build a self-rescheduling callback.

    ``schedule_in(delay, fn)`` must schedule ``fn`` after ``delay``;
    the returned tick function runs ``action`` then re-schedules itself
    every ``interval`` until ``stop_when()`` (if given) returns True.

    The first tick must be scheduled by the caller; this only builds the
    closure.  Used for metric samplers and churn checks.
    """
    if interval <= 0:
        raise ValueError(f"repeating interval must be positive, got {interval}")

    def tick() -> None:
        if stop_when is not None and stop_when():
            return
        action()
        schedule_in(interval, tick)

    return tick
