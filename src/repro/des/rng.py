"""Named, reproducible random substreams.

Simulation studies need *stream independence*: the arrival process of
consumer 3 must draw the same values whether or not provider 17 also
consumes randomness.  A single shared ``random.Random`` breaks that (any
extra draw shifts every later one), so experiments become sensitive to
incidental code ordering.

:class:`RandomRoot` derives independent :class:`RandomStream` objects
from a root seed and a string name via SHA-256, so:

* the same ``(root_seed, name)`` always yields the same stream;
* streams with different names are statistically independent;
* adding a new stream never perturbs existing ones.

This is the substitution for SimJava's per-entity RNGs, and decision
D1 of DESIGN.md (deterministic simulation).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A seeded random stream with the distributions the simulation needs.

    Wraps :class:`random.Random` rather than subclassing it so the public
    surface stays small and every distribution used by the reproduction
    is named and testable.
    """

    __slots__ = ("name", "seed", "_rng")

    def __init__(self, seed: int, name: str = "") -> None:
        self.name = name
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    # -- uniform -------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in [low, high)."""
        return low + (high - low) * self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self._rng.randrange(len(items))]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``min(k, len(items))`` distinct elements uniformly.

        Unlike :func:`random.sample`, clamps ``k`` instead of raising,
        because KnBest's stage 1 asks for ``k`` candidates even when
        fewer providers remain online.

        This is a draw-for-draw replica of CPython's
        ``random.Random.sample`` with ``_randbelow`` unrolled into the
        loop: it consumes exactly the same ``getrandbits`` sequence and
        returns exactly the same elements (asserted against the stdlib
        by the rng tests), but skips one function frame per drawn index
        -- KnBest runs this once per mediation, which made the stdlib's
        frame overhead a measurable slice of the allocation hot path.
        """
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        # Lists and tuples are indexed in place (the registry's capable
        # snapshots are tuples; copying them per mediation would undo
        # the snapshot win); anything else is materialised once.
        population = items if isinstance(items, (list, tuple)) else list(items)
        n = len(population)
        if k > n:
            k = n
        getrandbits = self._rng.getrandbits
        result: List[T] = [None] * k  # type: ignore[list-item]
        setsize = 21  # size of a small set minus size of an empty list
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        if n <= setsize:
            # An n-length list is smaller than a k-length set: pick from
            # a shrinking pool (Fisher-Yates-style partial shuffle).
            pool = list(population)
            for i in range(k):
                m = n - i
                bits = m.bit_length()
                j = getrandbits(bits)
                while j >= m:
                    j = getrandbits(bits)
                result[i] = pool[j]
                pool[j] = pool[m - 1]  # move non-selected item into vacancy
        else:
            selected: set = set()
            selected_add = selected.add
            bits = n.bit_length()
            for i in range(k):
                j = getrandbits(bits)
                while j >= n:
                    j = getrandbits(bits)
                while j in selected:
                    j = getrandbits(bits)
                    while j >= n:
                        j = getrandbits(bits)
                selected_add(j)
                result[i] = population[j]
        return result

    def sample_indices(self, n: int, k: int) -> List[int]:
        """Sample ``min(k, n)`` distinct indices from ``range(n)``.

        Draw-for-draw identical to ``sample(seq, k)`` over any
        ``n``-length sequence -- the stdlib algorithm's ``getrandbits``
        consumption depends only on ``(n, k)``, never on the elements --
        so ``[seq[i] for i in sample_indices(len(seq), k)]`` equals
        ``sample(seq, k)`` exactly.  The fast engine's fused kernel
        works in snapshot ordinals and uses this form to skip the
        element indirection of stage 1.
        """
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        if k > n:
            k = n
        getrandbits = self._rng.getrandbits
        result: List[int] = [0] * k
        setsize = 21  # size of a small set minus size of an empty list
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        if n <= setsize:
            pool = list(range(n))
            for i in range(k):
                m = n - i
                bits = m.bit_length()
                j = getrandbits(bits)
                while j >= m:
                    j = getrandbits(bits)
                result[i] = pool[j]
                pool[j] = pool[m - 1]
        else:
            selected: set = set()
            selected_add = selected.add
            bits = n.bit_length()
            for i in range(k):
                j = getrandbits(bits)
                while j >= n:
                    j = getrandbits(bits)
                while j in selected:
                    j = getrandbits(bits)
                    while j >= n:
                        j = getrandbits(bits)
                selected_add(j)
                result[i] = j
        return result

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    # -- distributions ---------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (inter-arrival times)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        u = 1.0 - self._rng.random()  # avoid log(0)
        return -mean * math.log(u)

    def normal(self, mu: float, sigma: float) -> float:
        """Gaussian variate."""
        return self._rng.gauss(mu, sigma)

    def lognormal(self, mean: float, cv: float) -> float:
        """Log-normal variate parameterised by its *arithmetic* mean and
        coefficient of variation (sigma/mean), which is how service-demand
        heterogeneity is specified in experiment configs."""
        if mean <= 0:
            raise ValueError(f"lognormal mean must be positive, got {mean}")
        if cv < 0:
            raise ValueError(f"lognormal cv must be non-negative, got {cv}")
        if cv == 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return math.exp(self._rng.gauss(mu, math.sqrt(sigma2)))

    def pareto(self, alpha: float, minimum: float = 1.0) -> float:
        """Bounded-below Pareto variate (heavy-tailed demands)."""
        if alpha <= 0:
            raise ValueError(f"pareto alpha must be positive, got {alpha}")
        if minimum <= 0:
            raise ValueError(f"pareto minimum must be positive, got {minimum}")
        u = 1.0 - self._rng.random()
        return minimum / (u ** (1.0 / alpha))

    def zipf_weights(self, n: int, skew: float) -> List[float]:
        """Zipf-like popularity weights of length ``n`` summing to 1.

        ``skew = 0`` is uniform; larger skews concentrate mass on the
        first ranks.  Used to build popular/normal/unpopular projects.
        """
        if n <= 0:
            raise ValueError(f"need at least one rank, got n={n}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        raw = [1.0 / ((rank + 1) ** skew) for rank in range(n)]
        total = sum(raw)
        return [w / total for w in raw]

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given (not necessarily normalised) weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        for weight in weights:
            if weight < 0:
                raise ValueError(f"negative weight {weight}")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        pick = self._rng.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if pick < acc:
                return item
        return items[-1]  # floating-point slack

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self._rng.random() < p

    def __repr__(self) -> str:
        return f"RandomStream(name={self.name!r}, seed={self.seed})"


class RandomRoot:
    """Factory of named substreams derived from one root seed.

    Examples
    --------
    >>> root = RandomRoot(42)
    >>> a = root.stream("arrivals/consumer-0")
    >>> b = root.stream("arrivals/consumer-0")
    >>> a.uniform() == b.uniform()
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._issued: dict = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``; fresh instance per call.

        Two calls with the same name give *independent instances at the
        start of the same sequence* -- convenient for tests; production
        code stores the stream it was given.
        """
        return RandomStream(derive_seed(self.seed, name), name=name)

    def spawn(self, name: str) -> "RandomRoot":
        """Derive a child root (e.g. one per replication)."""
        return RandomRoot(derive_seed(self.seed, f"root/{name}"))

    def streams(self, names: Iterable[str]) -> List[RandomStream]:
        """Bulk :meth:`stream` for an iterable of names."""
        return [self.stream(name) for name in names]

    def __repr__(self) -> str:
        return f"RandomRoot(seed={self.seed})"


def spawn_replication_root(base_seed: int, replication: int) -> RandomRoot:
    """Root for replication ``replication`` of an experiment.

    Kept as a module-level helper so experiment runners and tests agree
    on the derivation.
    """
    if replication < 0:
        raise ValueError(f"replication index must be non-negative, got {replication}")
    return RandomRoot(derive_seed(base_seed, f"replication/{replication}"))


def default_root(seed: Optional[int] = None) -> RandomRoot:
    """A root with the library-wide default seed unless overridden."""
    return RandomRoot(20090301 if seed is None else seed)  # ICDE 2009, March
