"""Discrete-event simulation kernel.

This package is the simulation substrate of the SbQA reproduction.  The
original prototype simulated its network with SimJava; this package
provides the equivalent primitives, written from scratch:

* :class:`~repro.des.scheduler.Simulator` -- the event loop: a monotone
  simulation clock plus a priority queue of timestamped events.
* :class:`~repro.des.events.Event` -- a scheduled callback with a stable
  total order (time, priority, sequence number).
* :class:`~repro.des.entity.Entity` -- a named simulation actor that can
  schedule work and receive messages.
* :class:`~repro.des.network.Network` -- latency-modelled message
  delivery between entities.
* :class:`~repro.des.rng.RandomStream` / ``RandomRoot`` -- named, seeded
  random substreams so every run is reproducible bit-for-bit.
* :class:`~repro.des.tracing.TraceRecorder` -- structured trace of what
  happened, used by tests and by the Figure-1 pipeline bench.

The kernel is deliberately generic: nothing in it knows about queries,
consumers, providers or mediators.
"""

from repro.des.events import Event, EventHandle
from repro.des.scheduler import Simulator, SimulationError
from repro.des.entity import Entity
from repro.des.network import Network, Message, UniformLatency, ZeroLatency
from repro.des.rng import RandomRoot, RandomStream
from repro.des.tracing import TraceRecorder, TraceEvent

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "Entity",
    "Network",
    "Message",
    "UniformLatency",
    "ZeroLatency",
    "RandomRoot",
    "RandomStream",
    "TraceRecorder",
    "TraceEvent",
]
