"""The simulation event loop.

:class:`Simulator` owns the simulation clock and a binary heap of
pending :class:`~repro.des.events.Event` objects.  Its contract:

* time never moves backwards;
* events fire in ``(time, priority, seq)`` order -- deterministic,
  FIFO among ties;
* an event's callback may schedule further events (at or after the
  current instant);
* cancelled events are skipped (and lazily discarded).

The loop is run either to exhaustion (:meth:`Simulator.run`), up to a
horizon (:meth:`Simulator.run_until`), or one event at a time
(:meth:`Simulator.step`), which tests use to interleave assertions.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.des.events import DEFAULT_PRIORITY, Event, EventHandle


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


class _Posted:
    """Minimal heap payload for fire-and-forget events (:meth:`Simulator.post_in`).

    Carries only the action; ``_cancelled`` is a class attribute (these
    events have no handle, so nothing can cancel them) and the firing
    time lives in the heap entry itself.
    """

    __slots__ = ("action",)

    _cancelled = False
    label = ""

    def __init__(self, action: Callable[[], None]) -> None:
        self.action = action

    @property
    def cancelled(self) -> bool:
        return False

    def __repr__(self) -> str:
        name = getattr(self.action, "__name__", type(self.action).__name__)
        return f"_Posted({name})"


class Simulator:
    """A deterministic discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (seconds).  Defaults to 0.

    Notes
    -----
    The simulator is single-threaded and re-entrant only in the sense
    that callbacks may schedule new events; calling :meth:`run` from
    inside a callback is an error.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap entries are (time, priority, seq, event): the first three
        # fields decide every heap comparison in C (seq is unique, so
        # the Event in slot 3 never participates), which is measurably
        # cheaper than Event.__lt__'s per-comparison tuple building in
        # event-dense runs.  Firing order is unchanged.
        self._heap: List[tuple] = []
        self._seq = 0
        self._fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def events_pending(self) -> int:
        """Number of queued events, including not-yet-discarded cancelled ones."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at absolute simulation ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies strictly in the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6g}: clock already at t={self._now:.6g}"
            )
        event = Event(time, self._seq, action, priority=priority, label=label)
        heapq.heappush(self._heap, (event.time, event.priority, self._seq, event))
        self._seq += 1
        return EventHandle(event)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` after a non-negative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._now + delay, action, priority=priority, label=label)

    def post_in(self, delay: float, action: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_in` for uncancellable events.

        The hot-path form used by the fast engine's collapsed dispatch
        and batched result drain: identical ordering semantics (same
        time, same default priority, same seq assignment), but no
        :class:`EventHandle` is constructed.
        """
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        seq = self._seq
        heapq.heappush(
            self._heap, (self._now + delay, DEFAULT_PRIORITY, seq, _Posted(action))
        )
        self._seq += 1

    def post_in_batch(self, items) -> None:
        """Batched :meth:`post_in`: insert ``(delay, action)`` pairs at once.

        Same ordering semantics as calling :meth:`post_in` once per
        pair, in iteration order (seq numbers are assigned in that
        order, so tie-breaking among same-instant events is unchanged).
        The win is mechanical: one attribute-resolution of the heap,
        clock and seq per *batch* instead of per event, and -- when the
        batch rivals the live heap in size -- one ``heapify`` over the
        extended list instead of ``m`` sift-ups.  Used by the fast
        engine's collapsed dispatch, whose per-allocation drain fan-out
        posts one event per distinct finish instant.
        """
        heap = self._heap
        now = self._now
        seq = self._seq
        entries = []
        for delay, action in items:
            if delay < 0:
                raise SimulationError(f"delay must be non-negative, got {delay}")
            entries.append((now + delay, DEFAULT_PRIORITY, seq, _Posted(action)))
            seq += 1
        self._seq = seq
        if not entries:
            return
        # Crossover: heapify is O(n + m) against m pushes at O(m log n);
        # for the small fan-outs the dispatch path produces, pushes win
        # until the batch is a sizable fraction of the heap.
        if len(entries) * 4 >= len(heap):
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for entry in entries:
                push(heap, entry)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Fire the single next event.

        Returns True if an event fired, False if the queue was empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        entry = heapq.heappop(self._heap)
        self._advance_clock(entry[0])
        self._fired += 1
        entry[3].action()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.

        Parameters
        ----------
        max_events:
            Optional safety valve; raises :class:`SimulationError` when
            exceeded (runaway self-rescheduling loops).

        Returns
        -------
        int
            Number of events fired by this call.
        """
        return self._loop(horizon=None, max_events=max_events)

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= horizon``, then set the clock to ``horizon``.

        Events scheduled beyond the horizon stay queued, so the
        simulation can be resumed with a later horizon.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon t={horizon:.6g} is before current time t={self._now:.6g}"
            )
        fired = self._loop(horizon=horizon, max_events=max_events)
        self._advance_clock(horizon)
        return fired

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _loop(self, horizon: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("Simulator.run called re-entrantly from a callback")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while True:
                while heap and heap[0][3]._cancelled:
                    heappop(heap)
                if not heap:
                    break
                time = heap[0][0]
                if horizon is not None and time > horizon:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                event = heappop(heap)[3]
                if time < self._now:  # pragma: no cover - heap invariant
                    raise SimulationError(
                        f"clock would move backwards: {self._now:.6g} -> {time:.6g}"
                    )
                self._now = time
                self._fired += 1
                fired += 1
                event.action()
        finally:
            self._running = False
        return fired

    def _advance_clock(self, time: float) -> None:
        if time < self._now:
            raise SimulationError(
                f"clock would move backwards: {self._now:.6g} -> {time:.6g}"
            )
        self._now = time

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._now:.6g}, pending={self.events_pending}, "
            f"fired={self._fired})"
        )
