"""Performance measurement harnesses for the hot-path engine.

:mod:`repro.perf.hotpath` measures mediation throughput across the
fast engine, the event-faithful engine, and a reconstruction of the
pre-engine ("seed") hot path, and checks fast/event digest parity.
``benchmarks/bench_core_hotpath.py`` and ``sbqa bench`` are thin
wrappers around it; ``BENCH_core.json`` records its output.
"""

from repro.perf.hotpath import run_bench  # noqa: F401
