"""Serving-subsystem bench: open-loop throughput and ingress delay.

Measures what the batch benches cannot: the serve path end-to-end --
admission, per-consumer injection chains, incremental ``step_until``
advancement and streaming quantile accounting -- under the three
synthetic trace shapes of :mod:`repro.workloads.traces`.  For each
shape the whole trace is streamed (arrivals submitted as the clock
reaches them, in horizon-sized chunks) and the wall-clock cost of
serving it is timed; the figure of merit is sustained open-loop
queries/second, with the P² ingress-delay and response-time quantiles
reported alongside.

A replay-parity check rides along, mirroring the core bench's digest
check: a trace recorded from a closed run is replayed through the serve
path and the digests must match bit-for-bit.

Shared by ``sbqa bench --serve`` and the standalone
``benchmarks/bench_serve_throughput.py`` (the BENCH_serve.json writer).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Optional

from repro.experiments.config import ExperimentConfig, PolicySpec
from repro.workloads.boinc import BoincScenarioParams
from repro.workloads.traces import TraceSpec, record_trace

BENCH_VERSION = 1

#: The synthetic shapes the bench sweeps.
SHAPES = ("diurnal", "flash-crowd", "heavy-tail")

#: Consumer population of the benched traces (the paper's projects).
CONSUMERS = ("seti", "proteins", "einstein")


def _bench_config(duration: float, n_providers: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="serve-bench",
        duration=duration,
        population=BoincScenarioParams(n_providers=n_providers),
    )


def measure_shape(
    shape: str,
    duration: float,
    base_rate: float,
    n_providers: int,
    repeats: int,
    chunk: float = 5.0,
) -> Dict[str, object]:
    """Serve one synthetic trace end-to-end; best-of-``repeats`` timing."""
    from repro.serve.engine import ServeEngine

    trace = TraceSpec(
        name=f"bench-{shape}",
        shape=shape,
        duration=duration,
        base_rate=base_rate,
        consumers=CONSUMERS,
    )
    arrivals = trace.materialize()
    best: Optional[float] = None
    engine = None
    for _ in range(max(1, repeats)):
        engine = ServeEngine(
            _bench_config(duration, n_providers), PolicySpec(name="sbqa")
        )
        start = time.perf_counter()
        index = 0
        target = 0.0
        while target < duration:
            target = min(target + chunk, duration)
            while index < len(arrivals) and arrivals[index].time <= target:
                a = arrivals[index]
                engine.submit(
                    a.consumer_id,
                    service_demand=a.service_demand,
                    topic=a.topic,
                    n_results=a.n_results,
                    quorum=a.quorum,
                    at=a.time,
                )
                index += 1
            engine.advance_to(target)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    snapshot = engine.metrics_snapshot()
    issued = snapshot["queries"]["issued"]
    return {
        "arrivals": len(arrivals),
        "issued": issued,
        "completed": snapshot["queries"]["completed"],
        "sim_seconds": duration,
        "wall_seconds": best,
        "queries_per_s": issued / best if best else 0.0,
        "sim_time_ratio": duration / best if best else 0.0,
        "ingress_delay": snapshot["latency"]["ingress_delay"],
        "response_time": snapshot["latency"]["response_time"],
    }


def check_replay_parity(duration: float, n_providers: int) -> Dict[str, object]:
    """Record a closed run, replay it through the serve path, compare."""
    from repro.serve.engine import ServeEngine

    config = _bench_config(duration, n_providers)
    policy = PolicySpec(name="sbqa")
    trace, batch = record_trace(config, policy)
    served = ServeEngine(config, policy).replay(trace)
    return {
        "identical": batch.digest() == served.digest(),
        "sha256": batch.digest(),
        "arrivals": len(trace),
    }


def run_serve_bench(
    smoke: bool = False, repeats: Optional[int] = None
) -> Dict[str, object]:
    """Run the whole serve bench; returns the BENCH_serve.json record."""
    if repeats is None:
        repeats = 1 if smoke else 2
    duration = 120.0 if smoke else 600.0
    base_rate = 2.0 if smoke else 4.0
    n_providers = 50 if smoke else 120
    parity_duration = 120.0 if smoke else 300.0

    shapes = {
        shape: measure_shape(
            shape,
            duration=duration,
            base_rate=base_rate,
            n_providers=n_providers,
            repeats=repeats,
        )
        for shape in SHAPES
    }
    return {
        "bench_version": BENCH_VERSION,
        "bench": "serve_throughput",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "scenario": {
            "n_providers": n_providers,
            "consumers": list(CONSUMERS),
            "sim_seconds": duration,
            "base_rate": base_rate,
            "repeats": repeats,
        },
        "shapes": shapes,
        "parity": check_replay_parity(parity_duration, n_providers),
    }


def format_serve_report(record: Dict[str, object]) -> str:
    """Human-readable rendering of one serve bench record."""
    lines = [
        f"serve throughput bench ({record['mode']}, python {record['python']})",
        "",
        "  shape            queries/s   sim-time ratio   p99 ingress   p99 rt",
    ]
    for shape, row in record["shapes"].items():
        ingress = row["ingress_delay"].get("p99")
        rt = row["response_time"].get("p99")
        lines.append(
            f"  {shape:<14} {row['queries_per_s']:>11,.0f} "
            f"{row['sim_time_ratio']:>14,.0f}x "
            f"{'-' if ingress is None else format(ingress, '11.3g') + 's':>13} "
            f"{'-' if rt is None else format(rt, '7.3g') + 's':>9}"
        )
    parity = record["parity"]
    status = "identical" if parity["identical"] else "DIVERGED"
    lines += [
        "",
        f"  serve/batch digests: {status} "
        f"({parity['arrivals']} replayed arrivals, "
        f"sha256 {str(parity['sha256'])[:12]}...)",
    ]
    return "\n".join(lines)


def write_serve_record(record: Dict[str, object], path) -> None:
    """Write one serve bench record as stable, diff-friendly JSON."""
    from pathlib import Path

    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
