"""The core hot-path bench: mediation throughput and engine parity.

Two measurements back the perf trajectory started by the allocation
engine (:mod:`repro.core.engine`):

* **Mediation throughput** -- how many ``Mediator.mediate`` calls per
  second a mediation-bound system sustains, for three configurations:

  - ``fast``: :class:`~repro.core.engine.FastMediator` +
    :class:`~repro.core.engine.FastNetwork` (batched scoring, analytic
    consultation delay, collapsed dispatch);
  - ``event``: the event-faithful reference core as it stands today
    (already carrying the shared O(1) satisfaction windows);
  - ``seed_baseline``: the event core with the *pre-engine* hot path
    reconstructed -- per-read ``mean(deque)`` satisfaction
    recomputation and eagerly formatted trace payloads -- i.e. what
    every mediation cost before this engine landed.

* **Digest parity** -- byte-identical ``ExperimentResult`` JSON
  digests between the fast and event engines on a mixed scenario
  (autonomous churn + crash injection + result deadlines + two
  policies), the property that makes the fast default safe.

The timing loop isolates the mediation pipeline: queries are
pre-constructed, ``mediate`` runs in a tight loop, and the execution
drain (provider service, result return) is timed separately and
reported as ``end_to_end`` throughput.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Optional

from repro.core.engine import FastMediator, FastNetwork
from repro.core.intentions import PreferenceUtilizationIntentions
from repro.core.mediator import Mediator
from repro.core.satisfaction import (
    ConsumerSatisfactionTracker,
    NEUTRAL_SATISFACTION,
    ProviderSatisfactionTracker,
    intention_to_unit,
)
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.network import FixedLatency, Network
from repro.des.rng import RandomRoot, RandomStream
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query
from repro.system.registry import SystemRegistry

#: Layout tag written into the bench record / BENCH_core.json.
BENCH_VERSION = 1

#: Engines measured by the throughput kernel, in reporting order.
CONFIGURATIONS = ("fast", "event", "seed_baseline")


# ----------------------------------------------------------------------
# Seed-baseline reconstruction
# ----------------------------------------------------------------------


class SeedConsumerTracker(ConsumerSatisfactionTracker):
    """Pre-engine Definition-1 window: re-sums the deque on every read."""

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        if not self._satisfactions:
            return default
        return sum(self._satisfactions) / len(self._satisfactions)


class SeedProviderTracker(ProviderSatisfactionTracker):
    """Pre-engine Definition-2 window: filters + re-sums on every read."""

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        if not self._proposals:
            return default
        performed = [p.intention for p in self._proposals if p.performed]
        if not performed:
            return 0.0
        return sum(intention_to_unit(i) for i in performed) / len(performed)


class SeedTraceCost(TraceRecorder):
    """Enabled-but-dropping recorder: reproduces the pre-engine cost of
    building every trace payload f-string whether or not anyone
    listens (tracing only became lazy with the engine PR)."""

    def __init__(self) -> None:
        super().__init__(enabled=True)

    def record(self, time: float, category: str, message: str, **data) -> None:
        return None


class SeedRegistry(SystemRegistry):
    """Pre-engine capability lookup: one ``can_serve`` call (and dict
    probe) per registered provider per query, even when no provider
    declares topic restrictions."""

    def capable_providers(self, query):
        return [
            p
            for p in self._providers.values()
            if p.online and self.can_serve(p, query.topic)
        ]


class SeedProvider(Provider):
    """Pre-engine load read: ``utilization`` chained through the
    ``backlog_seconds`` property instead of inlining the arithmetic."""

    @property
    def utilization(self) -> float:
        return min(1.0, self.backlog_seconds / self.saturation_horizon)


class SeedRandomStream(RandomStream):
    """Pre-engine stage-1 sampling: defensive population copy plus the
    stdlib ``random.sample`` (one ``_randbelow`` frame per drawn
    index).  Draw-for-draw identical to the inlined replica."""

    def sample(self, items, k):
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        k = min(k, len(items))
        return self._rng.sample(list(items), k)


# ----------------------------------------------------------------------
# The mediation-bound system
# ----------------------------------------------------------------------


def build_mediation_system(
    configuration: str,
    n_providers: int = 120,
    k: int = 20,
    kn: int = 10,
    memory: int = 100,
    seed: int = 13,
):
    """One consumer, ``n_providers`` volunteers, an SbQA mediator.

    Mirrors the population builder's sharing discipline (one intention
    model instance across providers) and the paper-scale defaults
    (``k=20, kn=10``, 100-interaction windows).  ``configuration``
    selects the engine per :data:`CONFIGURATIONS`.
    """
    if configuration not in CONFIGURATIONS:
        raise ValueError(
            f"unknown configuration {configuration!r}; "
            f"valid: {', '.join(CONFIGURATIONS)}"
        )
    fast = configuration == "fast"
    seed_baseline = configuration == "seed_baseline"

    sim = Simulator()
    latency = FixedLatency(0.05)
    network = (FastNetwork if fast else Network)(sim, latency)
    registry = (SeedRegistry if seed_baseline else SystemRegistry)()
    root = RandomRoot(seed)
    stream = root.stream("hotpath/prefs")
    shared_model = PreferenceUtilizationIntentions()
    provider_cls = SeedProvider if seed_baseline else Provider
    providers = [
        provider_cls(
            sim,
            network,
            participant_id=f"p{i:03d}",
            capacity=stream.uniform(0.5, 2.0),
            preferences={"c0": stream.uniform(-1.0, 1.0)},
            intention_model=shared_model,
            memory=memory,
        )
        for i in range(n_providers)
    ]
    for provider in providers:
        registry.add_provider(provider)
        if seed_baseline:
            provider.tracker = SeedProviderTracker(memory=memory)
    consumer = Consumer(
        sim,
        network,
        participant_id="c0",
        preferences={p.participant_id: stream.uniform(-1.0, 1.0) for p in providers},
        memory=memory,
    )
    if seed_baseline:
        consumer.tracker = SeedConsumerTracker(memory=memory)
    registry.add_consumer(consumer)

    knbest_stream = root.stream("hotpath/knbest")
    if seed_baseline:
        knbest_stream = SeedRandomStream(knbest_stream.seed, name=knbest_stream.name)
    policy = SbQAPolicy(SbQAConfig(k=k, kn=kn), knbest_stream)
    mediator_cls = FastMediator if fast else Mediator
    mediator = mediator_cls(
        sim,
        network,
        registry,
        policy,
        keep_records=False,
        trace=SeedTraceCost() if seed_baseline else NULL_RECORDER,
    )
    consumer.attach_mediator(mediator)
    return sim, mediator, consumer


# ----------------------------------------------------------------------
# Throughput measurement
# ----------------------------------------------------------------------


def _one_sample(configuration: str, mediations: int, **system_kwargs):
    """One timed pass: (mediate seconds, drain seconds)."""
    import gc

    sim, mediator, consumer = build_mediation_system(
        configuration, **system_kwargs
    )
    queries = [
        Query(
            consumer=consumer,
            topic="c0",
            service_demand=10.0,
            n_results=2,
            issued_at=0.0,
        )
        for _ in range(mediations)
    ]
    mediate = mediator.mediate
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for query in queries:
            mediate(query)
        mediate_seconds = time.perf_counter() - start
        drain_start = time.perf_counter()
        sim.run()
        drain_seconds = time.perf_counter() - drain_start
    finally:
        if gc_was_enabled:
            gc.enable()
    return mediate_seconds, drain_seconds


def measure_throughput(
    configurations=CONFIGURATIONS,
    mediations: int = 4000,
    repeats: int = 3,
    **system_kwargs,
) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` mediation throughput per configuration.

    Samples are interleaved round-robin across the configurations (a
    machine-load burst then degrades every configuration's round, not
    one configuration's whole block) and taken with the garbage
    collector paused.  Returns, per configuration, mediations/second
    for the mediate loop alone (``mediate_per_s``) and with the
    execution drain included (``end_to_end_per_s``).
    """
    best: Dict[str, Dict[str, float]] = {
        configuration: {"mediate_per_s": 0.0, "end_to_end_per_s": 0.0}
        for configuration in configurations
    }
    # One untimed warm-up round lets allocator pools and code paths
    # settle before any sample counts.
    for configuration in configurations:
        _one_sample(configuration, min(mediations, 500), **system_kwargs)
    for _ in range(repeats):
        for configuration in configurations:
            mediate_seconds, drain_seconds = _one_sample(
                configuration, mediations, **system_kwargs
            )
            row = best[configuration]
            row["mediate_per_s"] = max(
                row["mediate_per_s"], mediations / mediate_seconds
            )
            row["end_to_end_per_s"] = max(
                row["end_to_end_per_s"],
                mediations / (mediate_seconds + drain_seconds),
            )
    return best


# ----------------------------------------------------------------------
# Digest parity
# ----------------------------------------------------------------------


def _mixed_spec(engine: str, duration: float, n_providers: int):
    """The mixed parity scenario: churn + crashes + two policies."""
    from repro.api.builder import Experiment

    return (
        Experiment.builder()
        .named("engine-parity-mixed")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
        .policy("sbqa")
        .policy("capacity")
        .autonomous()
        .failures(mttf=4000.0, repair_time=120.0, result_timeout=240.0)
        .replications(2)
        .engine(engine)
        .build()
    )


def check_digest_parity(
    duration: float = 600.0, n_providers: int = 80
) -> Dict[str, object]:
    """Fast-vs-event ``ExperimentResult`` digests on the mixed scenario.

    Byte-compares the JSON digests (the spec serialization deliberately
    omits the engine, so any difference is a result difference).
    """
    import hashlib

    from repro.api.session import Session

    digests = {}
    for engine in ("fast", "event"):
        result = Session(_mixed_spec(engine, duration, n_providers)).run(
            keep_runs=False
        )
        digests[engine] = result.to_json()
    identical = digests["fast"] == digests["event"]
    return {
        "scenario": "engine-parity-mixed",
        "duration": duration,
        "n_providers": n_providers,
        "identical": identical,
        "sha256": hashlib.sha256(digests["fast"].encode("utf-8")).hexdigest(),
    }


# ----------------------------------------------------------------------
# The bench record
# ----------------------------------------------------------------------


def run_bench(
    smoke: bool = False,
    mediations: Optional[int] = None,
    repeats: Optional[int] = None,
    check_parity: bool = True,
) -> Dict[str, object]:
    """Run the whole bench; returns the BENCH_core.json record."""
    if mediations is None:
        mediations = 1200 if smoke else 4000
    if repeats is None:
        repeats = 2 if smoke else 3
    parity_duration = 240.0 if smoke else 600.0
    parity_providers = 50 if smoke else 80

    throughput = measure_throughput(mediations=mediations, repeats=repeats)

    fast = throughput["fast"]["mediate_per_s"]
    event = throughput["event"]["mediate_per_s"]
    seed_baseline = throughput["seed_baseline"]["mediate_per_s"]
    record: Dict[str, object] = {
        "bench_version": BENCH_VERSION,
        "bench": "core_hotpath",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "scenario": {
            "n_providers": 120,
            "k": 20,
            "kn": 10,
            "memory": 100,
            "latency": "fixed 0.05s",
            "mediations": mediations,
            "repeats": repeats,
        },
        "throughput": throughput,
        "speedup": {
            # The tentpole claim: fast engine vs the pre-engine hot path.
            "fast_vs_seed": fast / seed_baseline,
            # The engine split alone (both sides share the O(1) windows).
            "fast_vs_event": fast / event,
            "event_vs_seed": event / seed_baseline,
        },
    }
    if check_parity:
        record["parity"] = check_digest_parity(
            duration=parity_duration, n_providers=parity_providers
        )
    return record


def format_report(record: Dict[str, object]) -> str:
    """Human-readable rendering of one bench record."""
    lines = [
        f"core hot-path bench ({record['mode']}, python {record['python']})",
        "",
    ]
    throughput = record["throughput"]
    for configuration in CONFIGURATIONS:
        row = throughput[configuration]
        lines.append(
            f"  {configuration:<14} {row['mediate_per_s']:>10,.0f} mediations/s"
            f"   ({row['end_to_end_per_s']:>9,.0f}/s end-to-end)"
        )
    speedup = record["speedup"]
    lines += [
        "",
        f"  fast vs seed baseline: {speedup['fast_vs_seed']:.2f}x",
        f"  fast vs event engine:  {speedup['fast_vs_event']:.2f}x",
    ]
    parity = record.get("parity")
    if parity is not None:
        status = "identical" if parity["identical"] else "DIVERGED"
        lines.append(
            f"  fast/event digests:    {status} "
            f"(mixed scenario, sha256 {str(parity['sha256'])[:12]}...)"
        )
    return "\n".join(lines)


def write_record(record: Dict[str, object], path) -> None:
    """Write one bench record as stable, diff-friendly JSON."""
    from pathlib import Path

    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
