"""The core hot-path bench: mediation throughput and engine parity.

Measurements backing the perf trajectory started by the allocation
engine (:mod:`repro.core.engine`) and extended by the indexed registry
and the universal policy fast paths:

* **Mediation throughput** -- how many ``Mediator.mediate`` calls per
  second a mediation-bound system sustains, for four configurations:

  - ``fast``: :class:`~repro.core.engine.FastMediator` +
    :class:`~repro.core.engine.FastNetwork` running the fused
    structure-of-arrays kernel (:mod:`repro.core.soa`): ordinal
    columns, inlined stage-1 sampling, one-pass consult/score/rank,
    lazy allocation records;
  - ``fast_scalar``: the same engine pinned to the scalar oracle path
    (``SBQA_SCORING_BACKEND=scalar`` -> ``select_fast`` + ``_commit``),
    the differential-testing reference the fused kernel must match
    digest for digest;
  - ``event``: the event-faithful reference core as it stands today
    (already carrying the shared O(1) satisfaction windows and the
    registry capability snapshots);
  - ``seed_baseline``: the event core with the *pre-engine* hot path
    reconstructed -- per-read ``mean(deque)`` satisfaction
    recomputation, eagerly formatted trace payloads, and a per-query
    ``can_serve`` scan over every registered provider -- i.e. what
    every mediation cost before this engine landed.

* **Policy dimension** -- the same fast-vs-event split for every
  allocation technique: since every policy implements ``select_fast``,
  ``engine="fast"`` covers the economic / capacity / simple baselines
  on the hot path, and this matrix tracks what that is worth.

* **N-providers scaling axis** -- fast-engine throughput as the
  population grows (120 -> 10000): with the indexed registry the
  per-mediation cost should scale with ``|Kn|``, not ``N``.

* **Federation axis** -- fast-engine throughput with the population
  sharded across K consistent-hash mediators
  (:mod:`repro.federation`), N scaled to 100k with K grown
  proportionally: per-mediation cost should stay flat because every
  query routes O(1) to a home shard holding ~N/K providers.

* **Registry lookup** -- ``capable_providers`` under topic-restricted
  capabilities: the incremental per-topic index + snapshot cache
  versus the pre-index linear scan, with background churn forcing
  periodic snapshot rebuilds.

* **Digest parity** -- byte-identical ``ExperimentResult`` JSON
  digests between the fast and event engines on a mixed scenario
  (autonomous churn + crash injection + result deadlines + two
  policies), the property that makes the fast default safe.

The timing loop isolates the mediation pipeline: queries are
pre-constructed, ``mediate`` runs in a tight loop, and the execution
drain (provider service, result return) is timed separately and
reported as ``end_to_end`` throughput.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Dict, Iterable, Optional, Sequence

import repro.core.scoring as _scoring
from repro.allocation.factory import make_policy
from repro.core.engine import FastMediator, FastNetwork
from repro.core.intentions import PreferenceUtilizationIntentions
from repro.core.mediator import Mediator
from repro.core.satisfaction import (
    ConsumerSatisfactionTracker,
    NEUTRAL_SATISFACTION,
    ProviderSatisfactionTracker,
    intention_to_unit,
)
from repro.core.sbqa import SbQAConfig, SbQAPolicy
from repro.des.network import FixedLatency, Network
from repro.des.rng import RandomRoot, RandomStream
from repro.des.scheduler import Simulator
from repro.des.tracing import NULL_RECORDER, TraceRecorder
from repro.system.consumer import Consumer
from repro.system.provider import Provider
from repro.system.query import Query
from repro.system.registry import SystemRegistry

#: Layout tag written into the bench record / BENCH_core.json.
#: Version 2 added the policy matrix, the N-providers scaling axis and
#: the registry-lookup section.  Version 3 added the scoring-backend
#: split (``fast`` = fused SoA kernel, ``fast_scalar`` = the scalar
#: oracle path) and the three-way parity record.  Version 4 extended
#: the scaling axis to 10000 providers, added ``speedup.scaling_ratio``
#: (the flatness gate) and the ``federation`` section (sharded
#: multi-mediator throughput, N scaled to 100k with K shards).
#: Version 5 added the ``parallel_federation`` section (process-parallel
#: shard-group execution, slice-max methodology) and
#: ``speedup.parallel_vs_serial``.
BENCH_VERSION = 5

#: Engines measured by the throughput kernel, in reporting order.
#: ``fast`` runs the fused structure-of-arrays kernel (the default when
#: numpy is importable); ``fast_scalar`` pins the fast engine to the
#: scalar select_fast/_commit oracle path (SBQA_SCORING_BACKEND=scalar).
CONFIGURATIONS = ("fast", "fast_scalar", "event", "seed_baseline")

#: Policies measured by the policy matrix, in reporting order.
#: (boinc-shares is benchable too -- the builder grants every provider
#: a share for the bench consumer -- but is omitted from the default
#: matrix to keep full-bench wall time in check.)
MATRIX_POLICIES = ("sbqa", "economic", "capacity", "shortest-queue", "random")

#: Default population sizes of the scaling axis.
SCALING_PROVIDERS = (120, 500, 2000, 10000)

#: Default (n_providers, shards) points of the federation section: K
#: grows proportionally with N so the per-shard population stays near
#: the flat-mediator working set (~2000), which is the scaling claim --
#: mediations/s at N=100k/K=50 should stay within 20% of N=2000/K=1.
FEDERATION_POINTS = ((2000, 1), (10000, 5), (100000, 50))


# ----------------------------------------------------------------------
# Seed-baseline reconstruction
# ----------------------------------------------------------------------


class SeedConsumerTracker(ConsumerSatisfactionTracker):
    """Pre-engine Definition-1 window: re-sums the deque on every read."""

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        if not self._satisfactions:
            return default
        return sum(self._satisfactions) / len(self._satisfactions)


class SeedProviderTracker(ProviderSatisfactionTracker):
    """Pre-engine Definition-2 window: filters + re-sums on every read."""

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        if not self._proposals:
            return default
        performed = [intention for intention, done in self._proposals if done]
        if not performed:
            return 0.0
        return sum(intention_to_unit(i) for i in performed) / len(performed)


class SeedTraceCost(TraceRecorder):
    """Enabled-but-dropping recorder: reproduces the pre-engine cost of
    building every trace payload f-string whether or not anyone
    listens (tracing only became lazy with the engine PR)."""

    def __init__(self) -> None:
        super().__init__(enabled=True)

    def record(self, time: float, category: str, message: str, **data) -> None:
        return None


class SeedRegistry(SystemRegistry):
    """Pre-engine capability lookup: one ``can_serve`` call (and dict
    probe) per registered provider per query, even when no provider
    declares topic restrictions."""

    def capable_snapshot(self, topic):
        # The seed baseline predates indexes and snapshots entirely:
        # one can_serve call (and dict probe) per registered provider
        # per lookup, plus the list build.
        return [
            p
            for p in self._providers.values()
            if p.online and self.can_serve(p, topic)
        ]

    def capable_providers(self, query):
        return self.capable_snapshot(query.topic)


class SeedProvider(Provider):
    """Pre-engine load read: ``utilization`` chained through the
    ``backlog_seconds`` property instead of inlining the arithmetic."""

    @property
    def utilization(self) -> float:
        return min(1.0, self.backlog_seconds / self.saturation_horizon)


class SeedRandomStream(RandomStream):
    """Pre-engine stage-1 sampling: defensive population copy plus the
    stdlib ``random.sample`` (one ``_randbelow`` frame per drawn
    index).  Draw-for-draw identical to the inlined replica."""

    def sample(self, items, k):
        if k < 0:
            raise ValueError(f"sample size must be non-negative, got {k}")
        k = min(k, len(items))
        return self._rng.sample(list(items), k)


# ----------------------------------------------------------------------
# The mediation-bound system
# ----------------------------------------------------------------------


def build_mediation_system(
    configuration: str,
    policy: str = "sbqa",
    n_providers: int = 120,
    k: int = 20,
    kn: int = 10,
    memory: int = 100,
    seed: int = 13,
    shards: int = 1,
    consumers: int = 1,
):
    """One consumer, ``n_providers`` volunteers, a mediator.

    Mirrors the population builder's sharing discipline (one intention
    model instance across providers) and the paper-scale defaults
    (``k=20, kn=10``, 100-interaction windows).  ``configuration``
    selects the engine per :data:`CONFIGURATIONS`; ``policy`` selects
    the allocation technique (every provider carries a resource share
    for the bench consumer so the boinc-shares baseline is benchable
    too).  The seed-baseline reconstruction exists for SbQA only.

    ``shards > 1`` fronts the population with a consistent-hash
    federation (:mod:`repro.federation`): the returned mediator is the
    :class:`~repro.federation.mediator.FederatedMediator` facade and
    each ``mediate`` pays the O(1) route before the home shard's
    kernel.  The seed baseline predates federation and rejects it.

    ``consumers > 1`` builds ``c0..c{C-1}`` so query topics spread
    across a federation's shards (the parallel-federation axis needs
    per-shard traffic); the return value is then
    ``(sim, mediator, [consumer, ...])`` instead of a single consumer.
    With the default ``consumers=1`` the build is unchanged
    draw-for-draw.
    """
    if configuration not in CONFIGURATIONS:
        raise ValueError(
            f"unknown configuration {configuration!r}; "
            f"valid: {', '.join(CONFIGURATIONS)}"
        )
    fast = configuration in ("fast", "fast_scalar")
    seed_baseline = configuration == "seed_baseline"
    if seed_baseline and policy != "sbqa":
        raise ValueError("the seed-baseline reconstruction is SbQA-only")
    if seed_baseline and shards > 1:
        raise ValueError("the seed-baseline reconstruction predates federation")

    sim = Simulator()
    latency = FixedLatency(0.05)
    network = (FastNetwork if fast else Network)(sim, latency)
    registry = (SeedRegistry if seed_baseline else SystemRegistry)()
    root = RandomRoot(seed)
    stream = root.stream("hotpath/prefs")
    shared_model = PreferenceUtilizationIntentions()
    provider_cls = SeedProvider if seed_baseline else Provider
    # Draw every provider's attributes in id order first, so the RNG
    # stream is identical whatever the construction order below.
    draws = [
        (stream.uniform(0.5, 2.0), stream.uniform(-1.0, 1.0))
        for _ in range(n_providers)
    ]
    build_order = range(n_providers)
    if shards > 1:
        # Allocate each shard's provider objects contiguously.  A real
        # federation gives every mediator its own process, so its
        # working set is dense; simulating K shards in one interpreter
        # heap would otherwise scatter a shard's ~N/K providers across
        # all N and pay the locality penalty for a topology the system
        # doesn't have.  Registration below stays in id order, so the
        # registry (and the K=1 flat path) is unchanged.
        from repro.federation import FederationConfig, ShardMap

        shard_map = ShardMap(FederationConfig(shards=shards))
        build_order = sorted(
            range(n_providers),
            key=lambda i: (shard_map.shard_of_provider(f"p{i:03d}"), i),
        )
    consumer_ids = [f"c{j}" for j in range(consumers)]
    providers: list = [None] * n_providers
    for i in build_order:
        capacity, preference = draws[i]
        providers[i] = provider_cls(
            sim,
            network,
            participant_id=f"p{i:03d}",
            capacity=capacity,
            preferences={cid: preference for cid in consumer_ids},
            intention_model=shared_model,
            memory=memory,
            resource_shares={cid: 1.0 for cid in consumer_ids},
        )
    for provider in providers:
        registry.add_provider(provider)
        if seed_baseline:
            provider.tracker = SeedProviderTracker(memory=memory)
    consumer_objs = []
    for cid in consumer_ids:
        consumer = Consumer(
            sim,
            network,
            participant_id=cid,
            preferences={
                p.participant_id: stream.uniform(-1.0, 1.0) for p in providers
            },
            memory=memory,
        )
        if seed_baseline:
            consumer.tracker = SeedConsumerTracker(memory=memory)
        registry.add_consumer(consumer)
        consumer_objs.append(consumer)
    consumer = consumer_objs[0]

    def _make_policy(policy_root):
        if policy == "sbqa":
            knbest_stream = policy_root.stream("hotpath/knbest")
            if seed_baseline:
                knbest_stream = SeedRandomStream(
                    knbest_stream.seed, name=knbest_stream.name
                )
            return SbQAPolicy(SbQAConfig(k=k, kn=kn), knbest_stream)
        return make_policy(policy, policy_root, sbqa=SbQAConfig(k=k, kn=kn))

    # FastMediator reads the scoring backend once at construction, so
    # pinning the scalar oracle path only needs a temporary override
    # around the constructor (every shard constructor, when federated).
    previous_backend = _scoring._DEFAULT_BACKEND
    if configuration == "fast_scalar":
        _scoring._DEFAULT_BACKEND = "python"
    try:
        if shards > 1:
            from repro.federation import FederationConfig, build_federation

            mediator = build_federation(
                "fast" if fast else "event",
                sim,
                network,
                registry,
                FederationConfig(shards=shards),
                _make_policy,
                root,
                keep_records=False,
            )
        else:
            mediator_cls = FastMediator if fast else Mediator
            mediator = mediator_cls(
                sim,
                network,
                registry,
                _make_policy(root),
                keep_records=False,
                trace=SeedTraceCost() if seed_baseline else NULL_RECORDER,
            )
    finally:
        _scoring._DEFAULT_BACKEND = previous_backend
    for member in consumer_objs:
        member.attach_mediator(mediator)
    if consumers > 1:
        return sim, mediator, consumer_objs
    return sim, mediator, consumer


# ----------------------------------------------------------------------
# Throughput measurement
# ----------------------------------------------------------------------


def _one_sample(configuration: str, mediations: int, **system_kwargs):
    """One timed pass: (mediate seconds, drain seconds)."""
    import gc

    sim, mediator, consumer = build_mediation_system(
        configuration, **system_kwargs
    )
    queries = [
        Query(
            consumer=consumer,
            topic="c0",
            service_demand=10.0,
            n_results=2,
            issued_at=0.0,
        )
        for _ in range(mediations)
    ]
    mediate = mediator.mediate
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for query in queries:
            mediate(query)
        mediate_seconds = time.perf_counter() - start
        drain_start = time.perf_counter()
        sim.run()
        drain_seconds = time.perf_counter() - drain_start
    finally:
        if gc_was_enabled:
            gc.enable()
    return mediate_seconds, drain_seconds


def measure_throughput(
    configurations=CONFIGURATIONS,
    mediations: int = 4000,
    repeats: int = 3,
    **system_kwargs,
) -> Dict[str, Dict[str, float]]:
    """Best-of-``repeats`` mediation throughput per configuration.

    Samples are interleaved round-robin across the configurations (a
    machine-load burst then degrades every configuration's round, not
    one configuration's whole block) and taken with the garbage
    collector paused.  Returns, per configuration, mediations/second
    for the mediate loop alone (``mediate_per_s``) and with the
    execution drain included (``end_to_end_per_s``).
    """
    best: Dict[str, Dict[str, float]] = {
        configuration: {"mediate_per_s": 0.0, "end_to_end_per_s": 0.0}
        for configuration in configurations
    }
    # One untimed warm-up round lets allocator pools and code paths
    # settle before any sample counts.
    for configuration in configurations:
        _one_sample(configuration, min(mediations, 500), **system_kwargs)
    for _ in range(repeats):
        for configuration in configurations:
            mediate_seconds, drain_seconds = _one_sample(
                configuration, mediations, **system_kwargs
            )
            row = best[configuration]
            row["mediate_per_s"] = max(
                row["mediate_per_s"], mediations / mediate_seconds
            )
            row["end_to_end_per_s"] = max(
                row["end_to_end_per_s"],
                mediations / (mediate_seconds + drain_seconds),
            )
    return best


def measure_policy_matrix(
    policies: Sequence[str] = MATRIX_POLICIES,
    mediations: int = 2000,
    repeats: int = 2,
    n_providers: int = 120,
) -> Dict[str, Dict[str, object]]:
    """Fast-vs-event throughput for every allocation technique.

    Every policy has a ``select_fast``, so the fast engine covers the
    whole matrix; this measures what that is worth per technique.
    """
    matrix: Dict[str, Dict[str, object]] = {}
    for policy in policies:
        rows = measure_throughput(
            configurations=("fast", "event"),
            mediations=mediations,
            repeats=repeats,
            policy=policy,
            n_providers=n_providers,
        )
        matrix[policy] = {
            "fast": rows["fast"],
            "event": rows["event"],
            "fast_vs_event": rows["fast"]["mediate_per_s"]
            / rows["event"]["mediate_per_s"],
        }
    return matrix


def measure_scaling(
    provider_counts: Sequence[int] = SCALING_PROVIDERS,
    mediations: int = 2000,
    repeats: int = 2,
    policy: str = "sbqa",
) -> Dict[str, Dict[str, object]]:
    """Fast/event throughput along the population-size axis.

    With the indexed registry the per-mediation cost is bound by the
    working set (``|Kn|``), not the population, so throughput should
    stay roughly flat from 120 to 2000 providers.
    """
    scaling: Dict[str, Dict[str, object]] = {}
    for n in provider_counts:
        rows = measure_throughput(
            configurations=("fast", "event"),
            mediations=mediations,
            repeats=repeats,
            policy=policy,
            n_providers=n,
        )
        scaling[str(n)] = {"fast": rows["fast"], "event": rows["event"]}
    return scaling


def measure_federation(
    points: Sequence[Sequence[int]] = FEDERATION_POINTS,
    mediations: int = 2000,
    repeats: int = 2,
    policy: str = "sbqa",
) -> Dict[str, object]:
    """Fast-engine throughput along the sharded (N, K) axis.

    Each point builds an ``n_providers`` population fronted by a
    ``shards``-way consistent-hash federation and measures the same
    tight mediate loop as the flat sections -- so every sample pays the
    O(1) route plus the home shard's fused kernel over its ~N/K slice.
    ``flat_ratio`` is the headline flatness gate: throughput at the
    largest point over throughput at the smallest (>= 0.8 means the
    federation holds the per-mediation cost flat while N grows 50x).
    """
    rows: Dict[str, object] = {}
    for n, shards in points:
        measured = measure_throughput(
            configurations=("fast",),
            mediations=mediations,
            repeats=repeats,
            policy=policy,
            n_providers=n,
            shards=shards,
        )["fast"]
        rows[str(n)] = {"n_providers": n, "shards": shards, **measured}
    first = rows[str(points[0][0])]["mediate_per_s"]
    last = rows[str(points[-1][0])]["mediate_per_s"]
    return {"points": rows, "flat_ratio": last / first}


def measure_parallel_federation(
    n_providers: int = 100_000,
    shards: int = 50,
    worker_counts: Sequence[int] = (1, 2, 4, 8),
    mediations: int = 2000,
    repeats: int = 2,
    policy: str = "sbqa",
) -> Dict[str, object]:
    """Parallel shard-group throughput by the **slice-max** method.

    The process-parallel runtime (:mod:`repro.federation.parallel`)
    partitions the K shards into worker groups; each worker mediates
    only the queries homed on its group.  Because shard states are
    disjoint, the parallel wall-clock of the mediate phase is the
    slowest group's slice.  This bench measures exactly that quantity
    without requiring idle cores: each group's query slice is timed in
    isolation (sequentially, same process, fresh best-of-``repeats``
    passes) and the parallel rate is ``total mediations / max slice
    seconds`` -- the critical path a ``workers``-core host would see.
    The record carries ``"mode": "slice-max"`` to flag the methodology;
    it reports achievable speedup of the mediation phase, not a wall
    clock observed on this host.

    Traffic comes from ``3 * shards`` consumers (round-robin), so every
    shard sees queries and the consistent-hash imbalance across
    groups is part of the measurement.
    """
    from repro.federation import FederationConfig, ShardMap
    from repro.federation.parallel import plan_groups

    consumers = 3 * shards
    shard_map = ShardMap(FederationConfig(shards=shards))
    home = {
        f"c{j}": shard_map.shard_of_topic(f"c{j}") for j in range(consumers)
    }

    def _queries(consumer_objs):
        return [
            Query(
                consumer=consumer_objs[i % len(consumer_objs)],
                topic=consumer_objs[i % len(consumer_objs)].participant_id,
                service_demand=10.0,
                n_results=2,
                issued_at=0.0,
            )
            for i in range(mediations)
        ]

    def _slice_seconds(groups):
        """One build; best-of-``repeats`` mediate seconds per group."""
        import gc

        sim, mediator, consumer_objs = build_mediation_system(
            "fast",
            policy=policy,
            n_providers=n_providers,
            shards=shards,
            consumers=consumers,
        )
        mediate = mediator.mediate
        # Small untimed warm-up so allocator pools settle per build.
        for query in _queries(consumer_objs)[: min(200, mediations)]:
            mediate(query)
        seconds = []
        for owned in groups:
            owned_set = set(owned)
            best = float("inf")
            for _ in range(repeats):
                queries = [
                    q for q in _queries(consumer_objs)
                    if home[q.topic] in owned_set
                ]
                gc.collect()
                gc.disable()
                try:
                    start = time.perf_counter()
                    for query in queries:
                        mediate(query)
                    best = min(best, time.perf_counter() - start)
                finally:
                    gc.enable()
            seconds.append(best)
        return seconds

    all_shards = tuple(range(shards))
    serial_seconds = _slice_seconds([all_shards])[0]
    serial_per_s = mediations / serial_seconds
    rows: Dict[str, object] = {}
    best_speedup = 1.0
    for workers in worker_counts:
        groups = plan_groups(shards, workers)
        max_slice = max(_slice_seconds(groups))
        per_s = mediations / max_slice
        speedup = per_s / serial_per_s
        best_speedup = max(best_speedup, speedup)
        rows[str(workers)] = {
            "workers": workers,
            "groups": len(groups),
            "max_slice_s": max_slice,
            "mediate_per_s": per_s,
            "speedup": speedup,
        }
    return {
        "mode": "slice-max",
        "n_providers": n_providers,
        "shards": shards,
        "consumers": consumers,
        "mediations": mediations,
        "serial": {
            "mediate_per_s": serial_per_s,
            "seconds": serial_seconds,
        },
        "workers": rows,
        "best_speedup": best_speedup,
    }


# ----------------------------------------------------------------------
# Registry-lookup measurement (indexed vs pre-index scan)
# ----------------------------------------------------------------------


def _build_capability_population(
    registry: SystemRegistry,
    n_providers: int,
    n_topics: int = 8,
    unrestricted_every: int = 4,
):
    """A topic-restricted population registered into ``registry``.

    Every ``unrestricted_every``-th provider serves all topics (the
    merge path); the rest are restricted to one of ``n_topics`` topics
    round-robin, so each topic's capable set is ~``N / n_topics``.
    """
    sim = Simulator()
    network = Network(sim, FixedLatency(0.05))
    providers = []
    for i in range(n_providers):
        provider = Provider(sim, network, participant_id=f"p{i:04d}")
        if i % unrestricted_every == 0:
            registry.add_provider(provider)
        else:
            registry.add_provider(provider, topics=[f"t{i % n_topics}"])
        providers.append(provider)
    topics = [f"t{i}" for i in range(n_topics)]
    return providers, topics


def measure_registry_lookup(
    n_providers: int,
    lookups: int = 20000,
    churn_every: int = 256,
    n_topics: int = 8,
) -> Dict[str, float]:
    """``capable_providers`` lookups/second: indexed vs pre-index scan.

    Both sides answer the same cycle of topic lookups over the same
    topic-restricted population; every ``churn_every`` lookups one
    provider toggles offline/online, forcing the indexed side to
    rebuild its snapshot (the scan side pays the full price every
    lookup regardless).
    """
    import gc

    def _run(registry_cls) -> float:
        registry = registry_cls()
        providers, topics = _build_capability_population(
            registry, n_providers, n_topics=n_topics
        )
        snapshot = registry.capable_snapshot  # bound method under test
        n_t = len(topics)
        churn_source = providers[1]  # topic-restricted member
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for i in range(lookups):
                snapshot(topics[i % n_t])
                if i % churn_every == 0:
                    churn_source.online = not churn_source.online
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        return lookups / elapsed

    indexed_per_s = _run(SystemRegistry)
    scan_per_s = _run(SeedRegistry)
    return {
        "indexed_per_s": indexed_per_s,
        "scan_per_s": scan_per_s,
        "speedup": indexed_per_s / scan_per_s,
    }


def measure_registry_scaling(
    provider_counts: Sequence[int] = SCALING_PROVIDERS,
    lookups: int = 20000,
    churn_every: int = 256,
) -> Dict[str, Dict[str, float]]:
    """The registry-lookup comparison along the population axis.

    The scan side is O(N) per lookup, so the lookup count shrinks as N
    grows (bounded total scan work) to keep large-N rows affordable.
    """
    return {
        str(n): measure_registry_lookup(
            n,
            lookups=max(2000, min(lookups, 20_000_000 // max(1, n))),
            churn_every=churn_every,
        )
        for n in provider_counts
    }


# ----------------------------------------------------------------------
# Digest parity
# ----------------------------------------------------------------------


def _mixed_spec(engine: str, duration: float, n_providers: int):
    """The mixed parity scenario: churn + crashes + two policies."""
    from repro.api.builder import Experiment

    return (
        Experiment.builder()
        .named("engine-parity-mixed")
        .seed(20090301)
        .duration(duration)
        .providers(n_providers)
        .policy("sbqa")
        .policy("capacity")
        .autonomous()
        .failures(mttf=4000.0, repair_time=120.0, result_timeout=240.0)
        .replications(2)
        .engine(engine)
        .build()
    )


def check_digest_parity(
    duration: float = 600.0, n_providers: int = 80
) -> Dict[str, object]:
    """Three-way ``ExperimentResult`` digests on the mixed scenario.

    Byte-compares the JSON digests (the spec serialization deliberately
    omits the engine, so any difference is a result difference) across

    * ``engine="fast"`` with the fused SoA kernel (ambient backend),
    * ``engine="fast"`` pinned to the scalar oracle backend, and
    * ``engine="event"``.

    ``identical`` is the fast/event engine contract;
    ``scalar_identical`` is the fused-kernel/scalar-oracle contract
    (the bench-level face of tests/oracle/); ``sha256`` is the shared
    digest all three produced when parity holds.
    """
    import hashlib

    from repro.api.session import Session

    digests = {}
    for engine in ("fast", "event"):
        result = Session(_mixed_spec(engine, duration, n_providers)).run(
            keep_runs=False
        )
        digests[engine] = result.to_json()
    previous_backend = _scoring._DEFAULT_BACKEND
    _scoring._DEFAULT_BACKEND = "python"
    try:
        digests["fast_scalar"] = (
            Session(_mixed_spec("fast", duration, n_providers))
            .run(keep_runs=False)
            .to_json()
        )
    finally:
        _scoring._DEFAULT_BACKEND = previous_backend
    identical = digests["fast"] == digests["event"]
    scalar_identical = digests["fast"] == digests["fast_scalar"]
    return {
        "scenario": "engine-parity-mixed",
        "duration": duration,
        "n_providers": n_providers,
        "identical": identical,
        "scalar_identical": scalar_identical,
        "sha256": hashlib.sha256(digests["fast"].encode("utf-8")).hexdigest(),
    }


# ----------------------------------------------------------------------
# The bench record
# ----------------------------------------------------------------------


def run_bench(
    smoke: bool = False,
    mediations: Optional[int] = None,
    repeats: Optional[int] = None,
    check_parity: bool = True,
    policies: Optional[Iterable[str]] = None,
    scale_providers: Optional[Iterable[int]] = None,
    max_n: Optional[int] = None,
    shards: Optional[int] = None,
) -> Dict[str, object]:
    """Run the whole bench; returns the BENCH_core.json record.

    ``policies`` overrides the policy-matrix set (default
    :data:`MATRIX_POLICIES`; smoke trims to sbqa + economic);
    ``scale_providers`` overrides the population axis (default
    :data:`SCALING_PROVIDERS`; smoke trims to 120 + 600).

    ``max_n`` caps both population axes: scaling/registry points above
    it are dropped (``max_n`` itself joins the grid when it exceeds
    every default point), and federation points above it are dropped
    down to at least the smallest.  ``shards`` pins every federation
    point to that shard count instead of the proportional default
    schedule (:data:`FEDERATION_POINTS`).
    """
    if mediations is None:
        mediations = 1200 if smoke else 4000
    if repeats is None:
        repeats = 2 if smoke else 3
    parity_duration = 240.0 if smoke else 600.0
    parity_providers = 50 if smoke else 80
    if policies is None:
        policies = ("sbqa", "economic") if smoke else MATRIX_POLICIES
    else:
        policies = tuple(policies)
    if scale_providers is None:
        scale_providers = (120, 600) if smoke else SCALING_PROVIDERS
    else:
        scale_providers = tuple(int(n) for n in scale_providers)
    federation_points = ((120, 1), (600, 4)) if smoke else FEDERATION_POINTS
    parallel_n = 600 if smoke else 100_000
    parallel_shards = 4 if smoke else 50
    parallel_workers = (1, 2) if smoke else (1, 2, 4, 8)
    if max_n is not None:
        parallel_n = min(parallel_n, max_n)
    if shards is not None:
        parallel_shards = shards
    if max_n is not None:
        kept = tuple(n for n in scale_providers if n <= max_n)
        if not kept or max_n > max(scale_providers):
            kept += (max_n,)
        scale_providers = kept
        fed_kept = tuple(p for p in federation_points if p[0] <= max_n)
        federation_points = fed_kept or federation_points[:1]
    if shards is not None:
        federation_points = tuple((n, shards) for n, _ in federation_points)
    matrix_mediations = max(400, mediations // 2)
    matrix_repeats = max(1, repeats - 1)
    lookups = 6000 if smoke else 20000

    throughput = measure_throughput(mediations=mediations, repeats=repeats)

    fast = throughput["fast"]["mediate_per_s"]
    fast_scalar = throughput["fast_scalar"]["mediate_per_s"]
    event = throughput["event"]["mediate_per_s"]
    seed_baseline = throughput["seed_baseline"]["mediate_per_s"]
    record: Dict[str, object] = {
        "bench_version": BENCH_VERSION,
        "bench": "core_hotpath",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "scenario": {
            "n_providers": 120,
            "k": 20,
            "kn": 10,
            "memory": 100,
            "latency": "fixed 0.05s",
            "mediations": mediations,
            "repeats": repeats,
        },
        "throughput": throughput,
        "speedup": {
            # The PR-4 tentpole claim: fast engine vs the pre-engine hot
            # path (which now also reconstructs the pre-index registry).
            "fast_vs_seed": fast / seed_baseline,
            # The engine split alone (both sides share the O(1) windows
            # and the registry snapshots).
            "fast_vs_event": fast / event,
            # The fused SoA kernel vs the scalar oracle path of the same
            # fast engine: what the vectorized default is worth.
            "fused_vs_scalar": fast / fast_scalar,
            "event_vs_seed": event / seed_baseline,
            # The batched-result-drain claim: how close end-to-end
            # throughput sits to pure mediation throughput.
            "end_to_end_ratio": throughput["fast"]["end_to_end_per_s"] / fast,
        },
        "policies": measure_policy_matrix(
            policies, mediations=matrix_mediations, repeats=matrix_repeats
        ),
        "scaling": measure_scaling(
            scale_providers,
            mediations=matrix_mediations,
            repeats=matrix_repeats,
        ),
        "federation": measure_federation(
            federation_points,
            mediations=matrix_mediations,
            repeats=matrix_repeats,
        ),
        "parallel_federation": measure_parallel_federation(
            n_providers=parallel_n,
            shards=parallel_shards,
            worker_counts=parallel_workers,
            mediations=matrix_mediations,
            repeats=matrix_repeats,
        ),
        "registry": measure_registry_scaling(scale_providers, lookups=lookups),
    }
    record["speedup"]["parallel_vs_serial"] = record["parallel_federation"][
        "best_speedup"
    ]
    scaling = record["scaling"]
    low, high = min(scale_providers), max(scale_providers)
    # The flat-mediator flatness gate: fast-engine throughput at the
    # largest population over the smallest (CI enforces a floor).
    record["speedup"]["scaling_ratio"] = (
        scaling[str(high)]["fast"]["mediate_per_s"]
        / scaling[str(low)]["fast"]["mediate_per_s"]
    )
    if check_parity:
        record["parity"] = check_digest_parity(
            duration=parity_duration, n_providers=parity_providers
        )
    return record


def format_report(record: Dict[str, object]) -> str:
    """Human-readable rendering of one bench record."""
    lines = [
        f"core hot-path bench ({record['mode']}, python {record['python']})",
        "",
    ]
    throughput = record["throughput"]
    for configuration in CONFIGURATIONS:
        row = throughput[configuration]
        lines.append(
            f"  {configuration:<14} {row['mediate_per_s']:>10,.0f} mediations/s"
            f"   ({row['end_to_end_per_s']:>9,.0f}/s end-to-end)"
        )
    speedup = record["speedup"]
    lines += [
        "",
        f"  fast vs seed baseline: {speedup['fast_vs_seed']:.2f}x",
        f"  fast vs event engine:  {speedup['fast_vs_event']:.2f}x",
    ]
    if "fused_vs_scalar" in speedup:
        lines.append(
            f"  fused vs scalar path:  {speedup['fused_vs_scalar']:.2f}x"
        )
    lines.append(
        f"  end-to-end / mediate:  {speedup['end_to_end_ratio']:.0%}"
    )
    matrix = record.get("policies")
    if matrix:
        lines += ["", "  policy matrix (mediations/s, fast | event):"]
        for policy, row in matrix.items():
            lines.append(
                f"    {policy:<16} {row['fast']['mediate_per_s']:>10,.0f} | "
                f"{row['event']['mediate_per_s']:>10,.0f}"
                f"   ({row['fast_vs_event']:.2f}x)"
            )
    scaling = record.get("scaling")
    if scaling:
        lines += ["", "  scaling axis (fast engine, mediations/s):"]
        for n, row in scaling.items():
            lines.append(
                f"    N={n:<6} {row['fast']['mediate_per_s']:>10,.0f} mediate"
                f"   {row['fast']['end_to_end_per_s']:>10,.0f} end-to-end"
            )
        if "scaling_ratio" in speedup:
            lines.append(
                f"    flatness (max-N / min-N): {speedup['scaling_ratio']:.2f}x"
            )
    federation = record.get("federation")
    if federation:
        lines += ["", "  federation axis (fast engine, mediations/s):"]
        for n, row in federation["points"].items():
            lines.append(
                f"    N={n:<7} K={row['shards']:<3}"
                f" {row['mediate_per_s']:>10,.0f} mediate"
                f"   {row['end_to_end_per_s']:>10,.0f} end-to-end"
            )
        lines.append(
            f"    flatness (largest / smallest): {federation['flat_ratio']:.2f}x"
        )
    parallel = record.get("parallel_federation")
    if parallel:
        lines += [
            "",
            f"  parallel federation (slice-max, N={parallel['n_providers']},"
            f" K={parallel['shards']}):",
            f"    serial   {parallel['serial']['mediate_per_s']:>10,.0f}"
            " mediations/s",
        ]
        for row in parallel["workers"].values():
            lines.append(
                f"    W={row['workers']:<4}"
                f" {row['mediate_per_s']:>10,.0f} mediations/s"
                f"   ({row['speedup']:.2f}x)"
            )
        lines.append(
            f"    best speedup vs serial: {parallel['best_speedup']:.2f}x"
        )
    registry = record.get("registry")
    if registry:
        lines += ["", "  capable_providers lookup (indexed vs scan):"]
        for n, row in registry.items():
            lines.append(
                f"    N={n:<6} {row['indexed_per_s']:>12,.0f}/s vs "
                f"{row['scan_per_s']:>10,.0f}/s   ({row['speedup']:.1f}x)"
            )
    parity = record.get("parity")
    if parity is not None:
        status = "identical" if parity["identical"] else "DIVERGED"
        lines.append("")
        lines.append(
            f"  fast/event digests:    {status} "
            f"(mixed scenario, sha256 {str(parity['sha256'])[:12]}...)"
        )
        if "scalar_identical" in parity:
            scalar_status = (
                "identical" if parity["scalar_identical"] else "DIVERGED"
            )
            lines.append(f"  fused/scalar digests:  {scalar_status}")
    return "\n".join(lines)


def write_record(record: Dict[str, object], path) -> None:
    """Write one bench record as stable, diff-friendly JSON."""
    from pathlib import Path

    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    Path(path).write_text(text, encoding="utf-8")
