"""The metrics hub: one object that observes a whole simulation run.

Wiring (done by :mod:`repro.experiments.runner`):

* the **mediator** calls :meth:`MetricsHub.record_mediation` for every
  query (success or failure);
* every **consumer** registers the hub's :meth:`record_completion` as a
  completion listener;
* the **churn monitor** registers :meth:`record_departure`;
* :meth:`start_sampling` schedules a periodic sweep that snapshots
  satisfaction, utilization, population and throughput -- the on-line
  curves of Figure 2b.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.analysis.stats import gini, mean, stdev
from repro.des.events import make_repeating
from repro.des.scheduler import Simulator
from repro.metrics.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.autonomy import Departure, Rejoin
    from repro.system.failures import Crash
    from repro.system.query import AllocationRecord
    from repro.system.registry import SystemRegistry


class MetricsHub:
    """Collects counters, distributions and sampled series for one run."""

    def __init__(self) -> None:
        # counters
        self.queries_issued = 0
        self.queries_allocated = 0
        self.queries_failed = 0
        self.queries_completed = 0
        self.issued_by_consumer: Dict[str, int] = {}
        self.failed_by_consumer: Dict[str, int] = {}
        self.completed_by_consumer: Dict[str, int] = {}

        # distributions
        self.response_times: List[float] = []
        self.response_times_by_consumer: Dict[str, List[float]] = {}
        self.consultation_delays: List[float] = []

        # events
        self.departures: List["Departure"] = []
        self.rejoins: List["Rejoin"] = []
        self.crashes: List["Crash"] = []
        self.queries_timed_out = 0
        self.timed_out_by_consumer: Dict[str, int] = {}

        # sampled series (populated by start_sampling)
        self.consumer_satisfaction = TimeSeries("consumer_satisfaction")
        self.provider_satisfaction = TimeSeries("provider_satisfaction")
        self.utilization_mean = TimeSeries("utilization_mean")
        self.utilization_stdev = TimeSeries("utilization_stdev")
        self.utilization_gini = TimeSeries("utilization_gini")
        self.providers_online = TimeSeries("providers_online")
        self.consumers_online = TimeSeries("consumers_online")
        self.total_capacity = TimeSeries("total_capacity")
        self.throughput = TimeSeries("throughput")
        self.response_time_series = TimeSeries("response_time_mean")

        # named participant groups (per-project consumers, provider
        # archetypes, focal probes) sampled alongside the global series
        self.group_satisfaction: Dict[str, TimeSeries] = {}
        self._groups: Dict[str, Tuple[str, List[str]]] = {}

        # optional per-provider snapshots (departure-prediction analysis)
        self.provider_snapshots: List[Tuple[float, Dict[str, float]]] = []
        self._snapshot_providers = False

        self._completions_at_last_sample = 0
        self._rt_window: List[float] = []
        self._sample_interval: Optional[float] = None

    # ------------------------------------------------------------------
    # Event-driven records
    # ------------------------------------------------------------------

    def record_mediation(self, record: "AllocationRecord") -> None:
        """One query passed through the mediator."""
        consumer_id = record.query.consumer_id
        self.queries_issued += 1
        self.issued_by_consumer[consumer_id] = (
            self.issued_by_consumer.get(consumer_id, 0) + 1
        )
        if record.is_failure:
            self.queries_failed += 1
            self.failed_by_consumer[consumer_id] = (
                self.failed_by_consumer.get(consumer_id, 0) + 1
            )
        else:
            self.queries_allocated += 1
            self.consultation_delays.append(record.consultation_delay)

    def record_completion(self, record: "AllocationRecord") -> None:
        """All results of one query arrived at its consumer."""
        rt = record.response_time
        if rt is None:
            raise ValueError(
                f"completion recorded for incomplete query {record.query.qid}"
            )
        consumer_id = record.query.consumer_id
        self.queries_completed += 1
        self.completed_by_consumer[consumer_id] = (
            self.completed_by_consumer.get(consumer_id, 0) + 1
        )
        self.response_times.append(rt)
        self.response_times_by_consumer.setdefault(consumer_id, []).append(rt)
        self._rt_window.append(rt)

    def record_departure(self, departure: "Departure") -> None:
        """A participant left by dissatisfaction."""
        self.departures.append(departure)

    def record_rejoin(self, rejoin: "Rejoin") -> None:
        """A departed participant returned (rejoin extension)."""
        self.rejoins.append(rejoin)

    def record_timeout(self, record: "AllocationRecord") -> None:
        """A consumer wrote off a query whose results never arrived."""
        consumer_id = record.query.consumer_id
        self.queries_timed_out += 1
        self.timed_out_by_consumer[consumer_id] = (
            self.timed_out_by_consumer.get(consumer_id, 0) + 1
        )

    def record_crash(self, crash: "Crash") -> None:
        """A provider failed abruptly (failure-injection extension)."""
        self.crashes.append(crash)

    def enable_provider_snapshots(self) -> None:
        """Record every provider's satisfaction at each sweep.

        Off by default (memory); the departure-prediction analysis of
        Scenario 2 needs it to ask "who was dissatisfied at time t, and
        did they leave afterwards?".  Departed providers are included
        (they keep their last satisfaction).
        """
        self._snapshot_providers = True

    # ------------------------------------------------------------------
    # Participant groups
    # ------------------------------------------------------------------

    def register_group(self, name: str, kind: str, participant_ids: List[str]) -> None:
        """Track the mean satisfaction of a named participant group.

        ``kind`` is ``"consumer"`` or ``"provider"``; the group is
        sampled on every sweep (offline members included -- a departed
        member keeps its last satisfaction, which is what the
        "predicting departures" analysis of Scenario 2 looks at).
        """
        if kind not in ("consumer", "provider"):
            raise ValueError(f"kind must be 'consumer' or 'provider', got {kind!r}")
        if name in self._groups:
            raise ValueError(f"duplicate group name {name!r}")
        self._groups[name] = (kind, list(participant_ids))
        self.group_satisfaction[name] = TimeSeries(f"group:{name}")

    # ------------------------------------------------------------------
    # Periodic sampling
    # ------------------------------------------------------------------

    def start_sampling(
        self,
        sim: Simulator,
        registry: "SystemRegistry",
        interval: float = 10.0,
    ) -> None:
        """Schedule the periodic metric sweep (first sample at t=now)."""
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval}")
        self._sample_interval = interval

        def sample() -> None:
            self.sample_once(sim.now, registry)

        tick = make_repeating(sim.schedule_in, interval, sample)
        sim.schedule_in(0.0, tick, label="metrics:first-sample")

    def sample_once(self, now: float, registry: "SystemRegistry") -> None:
        """Snapshot every sampled series at time ``now``."""
        online_providers = registry.online_providers()
        online_consumers = registry.online_consumers()

        self.consumer_satisfaction.append(
            now, mean([c.satisfaction for c in online_consumers], default=0.0)
        )
        self.provider_satisfaction.append(
            now, mean([p.satisfaction for p in online_providers], default=0.0)
        )
        utilizations = [p.utilization for p in online_providers]
        self.utilization_mean.append(now, mean(utilizations))
        self.utilization_stdev.append(now, stdev(utilizations))
        self.utilization_gini.append(now, gini(utilizations) if utilizations else 0.0)
        self.providers_online.append(now, float(len(online_providers)))
        self.consumers_online.append(now, float(len(online_consumers)))
        self.total_capacity.append(now, registry.total_capacity(online_only=True))

        if self._snapshot_providers:
            snapshot = {p.participant_id: p.satisfaction for p in registry.providers}
            self.provider_snapshots.append((now, snapshot))

        for name, (kind, ids) in self._groups.items():
            if kind == "consumer":
                members = [registry.consumer(pid) for pid in ids]
            else:
                members = [registry.provider(pid) for pid in ids]
            self.group_satisfaction[name].append(
                now, mean([m.satisfaction for m in members], default=0.0)
            )

        window_completions = self.queries_completed - self._completions_at_last_sample
        self._completions_at_last_sample = self.queries_completed
        if self._sample_interval:
            self.throughput.append(now, window_completions / self._sample_interval)
        self.response_time_series.append(now, mean(self._rt_window, default=0.0))
        self._rt_window = []

    # ------------------------------------------------------------------
    # Derived accessors
    # ------------------------------------------------------------------

    @property
    def failure_rate(self) -> float:
        """Fraction of issued queries that could not be allocated."""
        if self.queries_issued == 0:
            return 0.0
        return self.queries_failed / self.queries_issued

    def departures_by_kind(self) -> Dict[str, int]:
        """Count of departures per participant kind."""
        out: Dict[str, int] = {}
        for departure in self.departures:
            out[departure.kind] = out.get(departure.kind, 0) + 1
        return out

    def series_map(self) -> Dict[str, List[Tuple[float, float]]]:
        """All sampled series as plain data (plots, CSV export)."""
        named = [
            self.consumer_satisfaction,
            self.provider_satisfaction,
            self.utilization_mean,
            self.utilization_stdev,
            self.utilization_gini,
            self.providers_online,
            self.consumers_online,
            self.total_capacity,
            self.throughput,
            self.response_time_series,
        ]
        out = {series.name: series.points() for series in named}
        for series in self.group_satisfaction.values():
            out[series.name] = series.points()
        return out

    def __repr__(self) -> str:
        return (
            f"MetricsHub(issued={self.queries_issued}, completed={self.queries_completed}, "
            f"failed={self.queries_failed}, departures={len(self.departures)})"
        )
