"""Append-only time series with the handful of operations reports need."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple


class TimeSeries:
    """A named sequence of ``(t, value)`` samples, non-decreasing in t."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        """Add one sample; timestamps must not go backwards."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({self._times[-1]:.6g} -> {t:.6g})"
            )
        self._times.append(t)
        self._values.append(value)

    # -- access -----------------------------------------------------------

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def points(self) -> List[Tuple[float, float]]:
        """All samples as ``(t, value)`` pairs."""
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or None when empty."""
        return self._values[-1] if self._values else None

    def value_at(self, t: float) -> Optional[float]:
        """Last value sampled at or before ``t`` (step interpolation)."""
        result = None
        for time, value in zip(self._times, self._values):
            if time > t:
                break
            result = value
        return result

    def window(self, t_lo: float, t_hi: float) -> List[Tuple[float, float]]:
        """Samples with ``t_lo <= t <= t_hi``."""
        if t_hi < t_lo:
            raise ValueError(f"empty window: [{t_lo}, {t_hi}]")
        return [
            (t, v) for t, v in zip(self._times, self._values) if t_lo <= t <= t_hi
        ]

    def mean(self, t_lo: Optional[float] = None, t_hi: Optional[float] = None) -> float:
        """Mean value over an optional time window (0 when empty)."""
        if t_lo is None and t_hi is None:
            values: Sequence[float] = self._values
        else:
            lo = self._times[0] if t_lo is None and self._times else (t_lo or 0.0)
            hi = self._times[-1] if t_hi is None and self._times else (t_hi or 0.0)
            values = [v for _, v in self.window(lo, hi)]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of samples -- the steady-state
        estimate reports use (0 when empty)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._values:
            return 0.0
        count = max(1, int(len(self._values) * fraction))
        chunk = self._values[-count:]
        return sum(chunk) / len(chunk)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self)}, last={self.last})"
