"""Append-only time series with the handful of operations reports need,
plus constant-memory streaming quantile accumulators (P²) for the
long-lived serving mode, where holding every response time in a list --
what :class:`~repro.metrics.collectors.MetricsHub` does for finite runs
-- would grow without bound."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class TimeSeries:
    """A named sequence of ``(t, value)`` samples, non-decreasing in t."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        """Add one sample; timestamps must not go backwards."""
        if self._times and t < self._times[-1]:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({self._times[-1]:.6g} -> {t:.6g})"
            )
        self._times.append(t)
        self._values.append(value)

    # -- access -----------------------------------------------------------

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def points(self) -> List[Tuple[float, float]]:
        """All samples as ``(t, value)`` pairs."""
        return list(zip(self._times, self._values))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def last(self) -> Optional[float]:
        """Most recent value, or None when empty."""
        return self._values[-1] if self._values else None

    def value_at(self, t: float) -> Optional[float]:
        """Last value sampled at or before ``t`` (step interpolation)."""
        result = None
        for time, value in zip(self._times, self._values):
            if time > t:
                break
            result = value
        return result

    def window(self, t_lo: float, t_hi: float) -> List[Tuple[float, float]]:
        """Samples with ``t_lo <= t <= t_hi``."""
        if t_hi < t_lo:
            raise ValueError(f"empty window: [{t_lo}, {t_hi}]")
        return [
            (t, v) for t, v in zip(self._times, self._values) if t_lo <= t <= t_hi
        ]

    def mean(self, t_lo: Optional[float] = None, t_hi: Optional[float] = None) -> float:
        """Mean value over an optional time window (0 when empty)."""
        if t_lo is None and t_hi is None:
            values: Sequence[float] = self._values
        else:
            lo = self._times[0] if t_lo is None and self._times else (t_lo or 0.0)
            hi = self._times[-1] if t_hi is None and self._times else (t_hi or 0.0)
            values = [v for _, v in self.window(lo, hi)]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean of the last ``fraction`` of samples -- the steady-state
        estimate reports use (0 when empty)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if not self._values:
            return 0.0
        count = max(1, int(len(self._values) * fraction))
        chunk = self._values[-count:]
        return sum(chunk) / len(chunk)

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self)}, last={self.last})"


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain &
    Chlamtac, CACM 1985): five markers, O(1) memory and update.

    Exact (it simply sorts) until five observations have arrived; after
    that the markers track the target quantile with parabolic
    interpolation.  Accuracy is ample for live dashboards -- the serve
    subsystem's ``/metrics`` endpoint feeds every response time and
    ingress latency through one of these instead of keeping unbounded
    sample lists.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(x)
            heights.sort()
            return

        # locate the cell k with q[k] <= x < q[k+1], stretching extremes
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= heights[k + 1]:
                k += 1

        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._increments[i]

        # adjust the three middle markers towards their desired positions
        for i in (1, 2, 3):
            d = desired[i] - positions[i]
            if (d >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                d <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> Optional[float]:
        """Current estimate (None when empty; exact for n <= 5)."""
        count = self._count
        if count == 0:
            return None
        heights = self._heights
        if count <= 5:
            # exact: linear-interpolated order statistic over the
            # sorted buffer, matching numpy's default percentile
            rank = self.q * (count - 1)
            lo = int(rank)
            hi = min(lo + 1, count - 1)
            frac = rank - lo
            return heights[lo] * (1.0 - frac) + heights[hi] * frac
        return heights[2]

    def __repr__(self) -> str:
        value = self.value()
        shown = "none" if value is None else f"{value:.6g}"
        return f"P2Quantile(q={self.q}, n={self._count}, value={shown})"


#: The quantile set live serving dashboards report.
DEFAULT_QUANTILES = (0.50, 0.95, 0.99)


class QuantileSet:
    """A named bundle of :class:`P2Quantile` accumulators over one
    stream of observations (p50/p95/p99 by default), with min/max/mean
    tracked exactly."""

    __slots__ = ("name", "_accumulators", "_count", "_total", "_min", "_max")

    def __init__(
        self, name: str, quantiles: Sequence[float] = DEFAULT_QUANTILES
    ) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.name = name
        self._accumulators = [P2Quantile(q) for q in quantiles]
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, x: float) -> None:
        """Fold one observation into every tracked quantile."""
        x = float(x)
        self._count += 1
        self._total += x
        if self._min is None or x < self._min:
            self._min = x
        if self._max is None or x > self._max:
            self._max = x
        for accumulator in self._accumulators:
            accumulator.add(x)

    def __len__(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate for one tracked quantile (KeyError if untracked)."""
        for accumulator in self._accumulators:
            if accumulator.q == q:
                return accumulator.value()
        raise KeyError(f"quantile {q} is not tracked by {self.name!r}")

    def snapshot(self) -> Dict[str, Optional[float]]:
        """JSON-friendly view: count, mean, min/max and every quantile
        keyed as ``p50`` / ``p95`` / ``p99`` (trailing zeros trimmed)."""
        out: Dict[str, Optional[float]] = {
            "count": self._count,
            "mean": self.mean if self._count else None,
            "min": self._min,
            "max": self._max,
        }
        for accumulator in self._accumulators:
            key = f"{accumulator.q * 100:g}".replace(".", "_")
            out[f"p{key}"] = accumulator.value()
        return out

    def __repr__(self) -> str:
        tracked = ", ".join(f"{a.q:g}" for a in self._accumulators)
        return f"QuantileSet({self.name!r}, n={self._count}, q=[{tracked}])"
