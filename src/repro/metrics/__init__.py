"""Measurement: everything the demo GUIs displayed, as data.

* :mod:`repro.metrics.series` -- append-only ``(t, value)`` time series
  with resampling/window helpers;
* :mod:`repro.metrics.collectors` -- the :class:`MetricsHub` wired into
  the mediator, consumers and the churn monitor; it samples
  satisfaction, utilization and population on a fixed interval, and
  accumulates response times, completions, failures and departures;
* :mod:`repro.metrics.summary` -- :class:`RunSummary`, the flat record
  of one simulation run that scenario reports and benches consume.
"""

from repro.metrics.series import DEFAULT_QUANTILES, P2Quantile, QuantileSet, TimeSeries
from repro.metrics.collectors import MetricsHub
from repro.metrics.summary import (
    ConsumerSummary,
    RunSummary,
    build_summary,
    summary_digest,
    summary_payload,
)

__all__ = [
    "TimeSeries",
    "P2Quantile",
    "QuantileSet",
    "DEFAULT_QUANTILES",
    "MetricsHub",
    "RunSummary",
    "ConsumerSummary",
    "build_summary",
    "summary_digest",
    "summary_payload",
]
