"""Flat per-run summaries consumed by scenario reports and benches."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.analysis.stats import gini, mean, percentile, stdev

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.mediator import Mediator
    from repro.des.network import Network
    from repro.metrics.collectors import MetricsHub
    from repro.system.registry import SystemRegistry


@dataclass(frozen=True)
class ConsumerSummary:
    """Per-consumer outcome of one run."""

    consumer_id: str
    online: bool
    satisfaction: float
    issued: int
    completed: int
    failed: int
    mean_response_time: float


@dataclass(frozen=True)
class RunSummary:
    """Everything a scenario comparison table needs about one run.

    The ``*_final`` satisfaction figures are the participants' state at
    the end of the run; the ``*_mean`` figures average the sampled
    series over the whole run (closer to what the on-line GUI curves
    conveyed).  ``tail_*`` metrics average the last quarter of the run
    -- the steady state after warmup and churn transients.
    """

    policy: str
    duration: float

    queries_issued: int = 0
    queries_completed: int = 0
    queries_failed: int = 0
    queries_timed_out: int = 0
    failure_rate: float = 0.0
    provider_crashes: int = 0
    queries_lost_to_crashes: int = 0

    mean_response_time: float = 0.0
    p95_response_time: float = 0.0
    p99_response_time: float = 0.0
    tail_response_time: float = 0.0
    throughput: float = 0.0

    consumer_satisfaction_final: float = 0.0
    consumer_satisfaction_mean: float = 0.0
    provider_satisfaction_final: float = 0.0
    provider_satisfaction_mean: float = 0.0

    providers_total: int = 0
    providers_remaining: int = 0
    consumers_total: int = 0
    consumers_remaining: int = 0
    provider_departures: int = 0
    consumer_departures: int = 0
    provider_rejoins: int = 0
    consumer_rejoins: int = 0
    capacity_remaining_fraction: float = 1.0

    #: Long-run mean of the [12]-style allocation satisfaction over
    #: consumers: how close the mediator got to the best allocation the
    #: candidate pool allowed (1.0 = optimal given what was available).
    consumer_allocation_satisfaction: float = 0.0

    utilization_mean: float = 0.0
    utilization_gini: float = 0.0
    work_gini: float = 0.0

    network_messages: int = 0
    coordination_messages: int = 0
    mean_consultation_delay: float = 0.0

    consumers: List[ConsumerSummary] = field(default_factory=list)

    @property
    def providers_remaining_fraction(self) -> float:
        """Share of the provider population still online at run end."""
        if self.providers_total == 0:
            return 0.0
        return self.providers_remaining / self.providers_total

    def as_dict(self) -> Dict[str, object]:
        """Flat dict (per-consumer breakdown excluded) for tables/CSV."""
        return {
            "policy": self.policy,
            "duration": self.duration,
            "issued": self.queries_issued,
            "completed": self.queries_completed,
            "failed": self.queries_failed,
            "timed_out": self.queries_timed_out,
            "failure_rate": self.failure_rate,
            "provider_crashes": self.provider_crashes,
            "queries_lost_to_crashes": self.queries_lost_to_crashes,
            "mean_rt": self.mean_response_time,
            "p95_rt": self.p95_response_time,
            "p99_rt": self.p99_response_time,
            "tail_rt": self.tail_response_time,
            "throughput": self.throughput,
            "consumer_sat_final": self.consumer_satisfaction_final,
            "consumer_sat_mean": self.consumer_satisfaction_mean,
            "provider_sat_final": self.provider_satisfaction_final,
            "provider_sat_mean": self.provider_satisfaction_mean,
            "providers_remaining": self.providers_remaining,
            "providers_remaining_fraction": self.providers_remaining_fraction,
            "consumers_remaining": self.consumers_remaining,
            "provider_departures": self.provider_departures,
            "consumer_departures": self.consumer_departures,
            "provider_rejoins": self.provider_rejoins,
            "consumer_rejoins": self.consumer_rejoins,
            "capacity_remaining_fraction": self.capacity_remaining_fraction,
            "consumer_allocation_satisfaction": self.consumer_allocation_satisfaction,
            "utilization_mean": self.utilization_mean,
            "utilization_gini": self.utilization_gini,
            "work_gini": self.work_gini,
            "network_messages": self.network_messages,
            "coordination_messages": self.coordination_messages,
            "mean_consultation_delay": self.mean_consultation_delay,
        }


def summary_payload(summary: "RunSummary") -> Dict[str, object]:
    """The digestable content of one run: flat aggregates plus the
    per-consumer breakdown, all JSON scalars, in deterministic order."""
    payload = summary.as_dict()
    payload["consumers"] = [
        {
            "consumer_id": c.consumer_id,
            "online": c.online,
            "satisfaction": c.satisfaction,
            "issued": c.issued,
            "completed": c.completed,
            "failed": c.failed,
            "mean_response_time": c.mean_response_time,
        }
        for c in summary.consumers
    ]
    return payload


def summary_digest(summary: "RunSummary") -> str:
    """Hex SHA-256 over the canonical JSON of :func:`summary_payload`.

    Float values are serialized through ``repr`` (via ``json.dumps``),
    so two digests agree only when every satisfaction, response-time
    and utilization figure matches to the last ulp -- the "bit-for-bit"
    equivalence bar used by engine parity and trace-replay parity.
    """
    text = json.dumps(summary_payload(summary), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_summary(
    policy_name: str,
    duration: float,
    hub: "MetricsHub",
    registry: "SystemRegistry",
    mediator: "Mediator",
    network: "Network",
) -> RunSummary:
    """Assemble the :class:`RunSummary` of a finished run."""
    departures = hub.departures_by_kind()
    rejoins: Dict[str, int] = {}
    for rejoin in hub.rejoins:
        rejoins[rejoin.kind] = rejoins.get(rejoin.kind, 0) + 1
    initial_capacity = registry.total_capacity(online_only=False)
    remaining_capacity = registry.total_capacity(online_only=True)

    consumers = [
        ConsumerSummary(
            consumer_id=c.participant_id,
            online=c.online,
            satisfaction=c.satisfaction,
            issued=c.stats.queries_issued,
            completed=c.stats.queries_completed,
            failed=c.stats.queries_failed,
            mean_response_time=c.stats.mean_response_time,
        )
        for c in registry.consumers
    ]

    work_done = [p.stats.work_units_done for p in registry.providers]

    return RunSummary(
        policy=policy_name,
        duration=duration,
        queries_issued=hub.queries_issued,
        queries_completed=hub.queries_completed,
        queries_failed=hub.queries_failed,
        queries_timed_out=hub.queries_timed_out,
        failure_rate=hub.failure_rate,
        provider_crashes=len(hub.crashes),
        queries_lost_to_crashes=sum(c.queries_lost for c in hub.crashes),
        mean_response_time=mean(hub.response_times),
        p95_response_time=percentile(hub.response_times, 95),
        p99_response_time=percentile(hub.response_times, 99),
        tail_response_time=hub.response_time_series.tail_mean(0.25),
        throughput=hub.queries_completed / duration if duration > 0 else 0.0,
        consumer_satisfaction_final=hub.consumer_satisfaction.last or 0.0,
        consumer_satisfaction_mean=hub.consumer_satisfaction.mean(),
        provider_satisfaction_final=hub.provider_satisfaction.last or 0.0,
        provider_satisfaction_mean=hub.provider_satisfaction.mean(),
        providers_total=len(registry.providers),
        providers_remaining=len(registry.online_providers()),
        consumers_total=len(registry.consumers),
        consumers_remaining=len(registry.online_consumers()),
        provider_departures=departures.get("provider", 0),
        consumer_departures=departures.get("consumer", 0),
        provider_rejoins=rejoins.get("provider", 0),
        consumer_rejoins=rejoins.get("consumer", 0),
        capacity_remaining_fraction=(
            remaining_capacity / initial_capacity if initial_capacity > 0 else 0.0
        ),
        consumer_allocation_satisfaction=mean(
            [c.tracker.allocation_satisfaction() for c in registry.consumers]
        ),
        utilization_mean=hub.utilization_mean.mean(),
        utilization_gini=hub.utilization_gini.tail_mean(0.25),
        work_gini=gini(work_done) if work_done else 0.0,
        network_messages=network.messages_sent,
        coordination_messages=mediator.coordination_messages,
        mean_consultation_delay=mean(hub.consultation_delays),
        consumers=consumers,
    )
