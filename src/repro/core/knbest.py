"""The KnBest provider-selection strategy [11].

Given the full capable set ``P_q``, KnBest narrows the mediation to a
small working set in two stages:

1. **Stage 1 (exploration):** draw ``K``, a uniform random sample of
   ``k`` providers from ``P_q``.  Randomness guarantees every provider
   keeps receiving proposals in the long run -- without it, an
   interest-driven mediator would starve unpopular providers entirely.
2. **Stage 2 (load-awareness):** keep ``Kn``, the ``kn`` *least
   utilized* providers of ``K``.  This is where query load enters the
   process: heavily loaded providers drop out before intentions are
   even consulted.

The mediator then consults only ``Kn`` (bounding the per-query message
cost to ``O(kn)``) and allocates the query to the ``min(n, kn)``
best-scored members.  Varying ``k`` and ``kn`` tunes the process
between pure load balancing (``kn`` small relative to ``k``) and pure
interest matching (``kn = k``), which Scenario 6 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple, TypeVar

from repro.des.rng import RandomStream


class UtilizationAware(Protocol):
    """Anything with a ``participant_id`` and a current ``utilization``."""

    @property
    def participant_id(self) -> str: ...  # pragma: no cover - protocol

    @property
    def utilization(self) -> float: ...  # pragma: no cover - protocol


P = TypeVar("P", bound=UtilizationAware)


@dataclass(frozen=True)
class KnBestSelection:
    """Outcome of the two KnBest stages for one query."""

    sampled: Tuple  # the set K (stage 1)
    working: Tuple  # the set Kn (stage 2), least utilized first

    @property
    def k_effective(self) -> int:
        """|K| -- may be below k when few providers are online."""
        return len(self.sampled)

    @property
    def kn_effective(self) -> int:
        """|Kn| -- may be below kn when |K| < kn."""
        return len(self.working)


class KnBestSelector:
    """Two-stage KnBest selection with deterministic tie-breaking.

    Parameters
    ----------
    k:
        Stage-1 sample size (candidate pool).
    kn:
        Stage-2 working-set size; must satisfy ``1 <= kn <= k``.
    stream:
        Seeded random stream used for the stage-1 sample, so runs are
        reproducible.
    """

    def __init__(self, k: int, kn: int, stream: RandomStream) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 1 <= kn <= k:
            raise ValueError(f"kn must satisfy 1 <= kn <= k, got kn={kn}, k={k}")
        self.k = k
        self.kn = kn
        self._stream = stream

    def select(self, candidates: Sequence[P]) -> KnBestSelection:
        """Run both stages over the capable set ``P_q``.

        ``candidates`` may be any sequence -- in particular the
        registry's reusable ``capable_snapshot`` tuple, which stage 1
        samples without a defensive copy (the stream's inlined sampler
        indexes lists and tuples in place).  When fewer than ``k``
        candidates exist the whole set is sampled (the strategy
        degrades gracefully as providers depart); the working set is
        then the ``min(kn, |K|)`` least utilized.  Utilization ties
        break on ``participant_id`` so that a seeded run is bit-for-bit
        reproducible.
        """
        sampled: List[P] = self._stream.sample(candidates, self.k)
        by_load = sorted(sampled, key=lambda p: (p.utilization, p.participant_id))
        working = by_load[: self.kn]
        return KnBestSelection(sampled=tuple(sampled), working=tuple(working))

    def sample_working(
        self, candidates: Sequence[P]
    ) -> Tuple[int, List[P], List[float]]:
        """Both stages without the :class:`KnBestSelection` wrapper.

        The hot-path form used by ``SbQAPolicy.select_fast``: same
        random draws, same load sort, same tie-breaking as
        :meth:`select`, returning ``(|K|, Kn, utilizations-of-Kn)``
        directly.  Decorate-sort replaces the per-element key lambda
        (tuples compare in C; ``participant_id`` is unique, so the
        provider in slot 3 never participates in a comparison), and the
        stage-2 utilizations are handed back so intention models reading
        load at this same instant reuse them instead of recomputing.
        """
        sampled: List[P] = self._stream.sample(candidates, self.k)
        decorated = [(p.utilization, p.participant_id, p) for p in sampled]
        decorated.sort()
        kn = self.kn
        working = [row[2] for row in decorated[:kn]]
        loads = [row[0] for row in decorated[:kn]]
        return len(sampled), working, loads

    def sample_working_ordinals(
        self, candidates: Sequence[P], ranks: Sequence[int]
    ) -> Tuple[int, List[Tuple[float, int, int]]]:
        """Both stages in snapshot-ordinal space (the SoA kernel's form).

        ``ranks[s]`` must be the position of ``candidates[s]`` in the
        ``participant_id``-sorted order of the snapshot.  Integer ranks
        are order-isomorphic to the id strings within one snapshot, so
        the ``(utilization, rank)`` sort breaks ties exactly like
        :meth:`sample_working`'s ``(utilization, participant_id)`` sort
        -- the oracle tests assert this isomorphism -- while comparing
        machine ints instead of strings.  Stage 1 draws *indices*
        through :meth:`RandomStream.sample_indices`, which consumes the
        identical ``getrandbits`` sequence as sampling the elements.

        Returns ``(|K|, working)`` where ``working`` is the stage-2
        list of ``(utilization, rank, ordinal)`` rows, least utilized
        first.
        """
        indices = self._stream.sample_indices(len(candidates), self.k)
        decorated = [
            (candidates[s].utilization, ranks[s], s) for s in indices
        ]
        decorated.sort()
        return len(indices), decorated[: self.kn]

    def __repr__(self) -> str:
        return f"KnBestSelector(k={self.k}, kn={self.kn})"
