"""Intention models: how participants value queries and each other.

Intentions are the inputs of the whole process: values in [-1, 1] where
1 means "I very much want this" and -1 "I refuse if possible".  The
demo paper keeps their computation abstract (it lives in [11]/[12]) but
states what they may depend on:

* a **consumer**'s intention towards a provider may reflect its static
  *preferences* (e.g. trust) and the provider's *reputation* or
  expected quality of service;
* a **provider**'s intention towards a query may reflect its
  *preferences* (topics, relationships) and its current *load*.

Accordingly this module offers, for each side, a pure-preference model,
a blended model with a tunable trade-off, and a performance-only model
(the Scenario 5 configuration where "projects are interested only in
response times and volunteers in their load").

# reconstruction: the exact blending formulas are not in the demo
# paper; these linear blends honour every stated constraint (range,
# monotonicity in preference, monotonicity in load/performance) and the
# blend weight is exposed so experiments can sweep it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.consumer import Consumer
    from repro.system.provider import Provider
    from repro.system.query import Query


def clamp_intention(value: float) -> float:
    """Clamp an arbitrary float into the legal intention range [-1, 1]."""
    if value > 1.0:
        return 1.0
    if value < -1.0:
        return -1.0
    return value


# ----------------------------------------------------------------------
# Consumer side: CI_q[p]
# ----------------------------------------------------------------------


class ConsumerIntentionModel:
    """Strategy: the consumer's intention to allocate ``query`` to ``provider``."""

    name = "consumer-intention"

    def intention(self, consumer: "Consumer", query: "Query", provider: "Provider") -> float:
        raise NotImplementedError

    def intentions(
        self,
        consumer: "Consumer",
        query: "Query",
        providers: "Sequence[Provider]",
    ) -> List[float]:
        """``CI_q[p]`` for a whole candidate set.

        The batch form the mediation hot path consults; equivalent to
        calling :meth:`intention` per provider (the default does exactly
        that), with built-in models overriding it to hoist the blend
        weights and dict lookups out of the loop.  Overrides must keep
        the per-provider arithmetic identical -- values are asserted
        bit-equal to the scalar form by the parity tests.
        """
        return [self.intention(consumer, query, provider) for provider in providers]


class PreferenceIntentions(ConsumerIntentionModel):
    """Context-independent intentions: the consumer's static preference."""

    name = "preference"

    def intention(self, consumer: "Consumer", query: "Query", provider: "Provider") -> float:
        return clamp_intention(consumer.preference_for(provider.participant_id))

    def intentions(
        self,
        consumer: "Consumer",
        query: "Query",
        providers: "Sequence[Provider]",
    ) -> List[float]:
        preferences = consumer.preferences
        default_preference = consumer.default_preference
        return [
            clamp_intention(
                preferences.get(provider.participant_id, default_preference)
            )
            for provider in providers
        ]

    def __repr__(self) -> str:
        return "PreferenceIntentions()"


class ReputationBlendIntentions(ConsumerIntentionModel):
    """Preference traded against observed provider performance.

    ``intention = (1 - alpha) * preference + alpha * (2 * reputation - 1)``

    where ``reputation`` in [0, 1] is the consumer's own running
    estimate of the provider's responsiveness
    (:meth:`repro.system.consumer.Consumer.reputation_of`).  ``alpha``
    is the flexibility the SQLB paper grants consumers: how much they
    trade their preferences for providers' reputation.
    """

    name = "reputation-blend"

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = alpha

    def intention(self, consumer: "Consumer", query: "Query", provider: "Provider") -> float:
        preference = consumer.preference_for(provider.participant_id)
        reputation = consumer.reputation_of(provider.participant_id)
        blended = (1.0 - self.alpha) * preference + self.alpha * (2.0 * reputation - 1.0)
        return clamp_intention(blended)

    def intentions(
        self,
        consumer: "Consumer",
        query: "Query",
        providers: "Sequence[Provider]",
    ) -> List[float]:
        # Same formula as intention() with the weights resolved once and
        # preference_for / reputation_of unrolled to their dict lookups.
        alpha = self.alpha
        preference_weight = 1.0 - alpha
        preferences = consumer.preferences
        default_preference = consumer.default_preference
        rt_ewma = consumer._rt_ewma
        rt_reference = consumer.rt_reference
        out = []
        for provider in providers:
            pid = provider.participant_id
            preference = preferences.get(pid, default_preference)
            ewma = rt_ewma.get(pid)
            reputation = 0.5 if ewma is None else rt_reference / (rt_reference + ewma)
            blended = preference_weight * preference + alpha * (2.0 * reputation - 1.0)
            if blended > 1.0:
                blended = 1.0
            elif blended < -1.0:
                blended = -1.0
            out.append(blended)
        return out

    def __repr__(self) -> str:
        return f"ReputationBlendIntentions(alpha={self.alpha})"


class ResponseTimeIntentions(ReputationBlendIntentions):
    """Scenario 5 consumers: interested *only* in response times."""

    name = "response-time-only"

    def __init__(self) -> None:
        super().__init__(alpha=1.0)

    def __repr__(self) -> str:
        return "ResponseTimeIntentions()"


# ----------------------------------------------------------------------
# Provider side: PI_q[p]
# ----------------------------------------------------------------------


class ProviderIntentionModel:
    """Strategy: the provider's intention to perform ``query``."""

    name = "provider-intention"

    def intention(self, provider: "Provider", query: "Query") -> float:
        raise NotImplementedError

    def intentions(
        self,
        providers: "Sequence[Provider]",
        query: "Query",
        utilizations: "Optional[Sequence[float]]" = None,
    ) -> List[float]:
        """``PI_q[p]`` for several providers sharing this model.

        Batch form for the mediation hot path (only used when every
        provider in the set carries this very model instance).  The
        default delegates per provider; overrides must keep the
        arithmetic identical to :meth:`intention`.  ``utilizations``,
        when given, holds each provider's ``utilization`` read at the
        current instant (KnBest stage 2 just computed them) so
        load-aware models can reuse the values.
        """
        return [self.intention(provider, query) for provider in providers]


class ProviderPreferenceIntentions(ProviderIntentionModel):
    """Context-independent intentions: the provider's static preference
    for the issuing consumer / topic, ignoring load entirely."""

    name = "preference"

    def intention(self, provider: "Provider", query: "Query") -> float:
        return clamp_intention(provider.preference_for(query))

    def intentions(
        self,
        providers: "Sequence[Provider]",
        query: "Query",
        utilizations: "Optional[Sequence[float]]" = None,
    ) -> List[float]:
        return [
            clamp_intention(provider.preference_for(query))
            for provider in providers
        ]

    def __repr__(self) -> str:
        return "ProviderPreferenceIntentions()"


class PreferenceUtilizationIntentions(ProviderIntentionModel):
    """Preference traded against current utilization.

    ``intention = (1 - beta) * preference + beta * (1 - 2 * utilization)``

    At ``utilization = 0`` the load term contributes +1 (an idle
    provider wants work -- the BOINC volunteer whose donated resources
    would otherwise sit wasted), at ``utilization = 1`` it contributes
    -1 (a saturated provider wants no more).  ``beta`` is the
    flexibility the SQLB paper grants providers: how much they trade
    their preferences for their utilization.
    """

    name = "preference-utilization"

    def __init__(self, beta: float = 0.5) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = beta

    def intention(self, provider: "Provider", query: "Query") -> float:
        preference = provider.preference_for(query)
        load_term = 1.0 - 2.0 * provider.utilization
        blended = (1.0 - self.beta) * preference + self.beta * load_term
        return clamp_intention(blended)

    def intentions(
        self,
        providers: "Sequence[Provider]",
        query: "Query",
        utilizations: "Optional[Sequence[float]]" = None,
    ) -> List[float]:
        # Same formula as intention() with the blend weight hoisted and
        # the (time-identical) utilizations reused when supplied.
        beta = self.beta
        preference_weight = 1.0 - beta
        if utilizations is None:
            utilizations = [provider.utilization for provider in providers]
        out = []
        for provider, utilization in zip(providers, utilizations):
            preference = provider.preference_for(query)
            load_term = 1.0 - 2.0 * utilization
            blended = preference_weight * preference + beta * load_term
            if blended > 1.0:
                blended = 1.0
            elif blended < -1.0:
                blended = -1.0
            out.append(blended)
        return out

    def __repr__(self) -> str:
        return f"PreferenceUtilizationIntentions(beta={self.beta})"


class LoadOnlyIntentions(PreferenceUtilizationIntentions):
    """Scenario 5 providers: interested *only* in their load."""

    name = "load-only"

    def __init__(self) -> None:
        super().__init__(beta=1.0)

    def __repr__(self) -> str:
        return "LoadOnlyIntentions()"


def make_consumer_intention_model(spec) -> ConsumerIntentionModel:
    """Coerce a config value into a consumer intention model.

    Accepts a model instance, one of the strings ``"preference"``,
    ``"reputation-blend"``, ``"response-time-only"``, or a declarative
    dict like ``{"model": "reputation-blend", "alpha": 0.3}`` (the form
    :func:`consumer_intentions_to_spec` emits for serialized specs).
    """
    if isinstance(spec, ConsumerIntentionModel):
        return spec
    if isinstance(spec, dict):
        kwargs = dict(spec)
        name = kwargs.pop("model", None)
        if name is None:
            raise ValueError(
                f"consumer intention dict needs a 'model' key, got {spec!r}"
            )
        key = str(name).lower()
        if key == "preference":
            return PreferenceIntentions(**kwargs)
        if key == "reputation-blend":
            return ReputationBlendIntentions(**kwargs)
        if key == "response-time-only":
            return ResponseTimeIntentions(**kwargs)
        raise ValueError(f"unknown consumer intention model {name!r}")
    if isinstance(spec, str):
        key = spec.lower()
        if key == "preference":
            return PreferenceIntentions()
        if key == "reputation-blend":
            return ReputationBlendIntentions()
        if key == "response-time-only":
            return ResponseTimeIntentions()
        raise ValueError(f"unknown consumer intention model {spec!r}")
    raise TypeError(f"cannot build a consumer intention model from {spec!r}")


def make_provider_intention_model(spec) -> ProviderIntentionModel:
    """Coerce a config value into a provider intention model.

    Accepts a model instance, one of the strings ``"preference"``,
    ``"preference-utilization"``, ``"load-only"``, or a declarative
    dict like ``{"model": "preference-utilization", "beta": 0.1}``.
    """
    if isinstance(spec, ProviderIntentionModel):
        return spec
    if isinstance(spec, dict):
        kwargs = dict(spec)
        name = kwargs.pop("model", None)
        if name is None:
            raise ValueError(
                f"provider intention dict needs a 'model' key, got {spec!r}"
            )
        key = str(name).lower()
        if key == "preference":
            return ProviderPreferenceIntentions(**kwargs)
        if key == "preference-utilization":
            return PreferenceUtilizationIntentions(**kwargs)
        if key == "load-only":
            return LoadOnlyIntentions(**kwargs)
        raise ValueError(f"unknown provider intention model {name!r}")
    if isinstance(spec, str):
        key = spec.lower()
        if key == "preference":
            return ProviderPreferenceIntentions()
        if key == "preference-utilization":
            return PreferenceUtilizationIntentions()
        if key == "load-only":
            return LoadOnlyIntentions()
        raise ValueError(f"unknown provider intention model {spec!r}")
    raise TypeError(f"cannot build a provider intention model from {spec!r}")


def consumer_intentions_to_spec(spec) -> dict:
    """Canonical declarative (JSON-friendly) form of a consumer model.

    The inverse of the dict branch of
    :func:`make_consumer_intention_model`; custom model classes outside
    the registry cannot be serialized and raise ``TypeError``.
    """
    model = make_consumer_intention_model(spec)
    if isinstance(model, ResponseTimeIntentions):
        return {"model": "response-time-only"}
    if isinstance(model, ReputationBlendIntentions):
        return {"model": "reputation-blend", "alpha": model.alpha}
    if isinstance(model, PreferenceIntentions):
        return {"model": "preference"}
    raise TypeError(
        f"cannot serialize custom consumer intention model {model!r}; "
        "declarative specs support the built-in models only"
    )


def provider_intentions_to_spec(spec) -> dict:
    """Canonical declarative (JSON-friendly) form of a provider model."""
    model = make_provider_intention_model(spec)
    if isinstance(model, LoadOnlyIntentions):
        return {"model": "load-only"}
    if isinstance(model, PreferenceUtilizationIntentions):
        return {"model": "preference-utilization", "beta": model.beta}
    if isinstance(model, ProviderPreferenceIntentions):
        return {"model": "preference"}
    raise TypeError(
        f"cannot serialize custom provider intention model {model!r}; "
        "declarative specs support the built-in models only"
    )
