"""The satisfaction model (Section II of the paper).

Participants judge the mediator *in the long run*, over a sliding
window of their ``k`` last interactions with the system:

* A **consumer** ``c`` obtains, for each query ``q``, the per-query
  satisfaction of Equation 1::

      delta_s(c, q) = (1 / n) * sum_{p in P̂_q} (CI_q[p] + 1) / 2

  where ``n`` is the number of results it required and ``P̂_q`` the set
  of providers that performed ``q``.  Its long-run satisfaction
  (Definition 1) is the mean of the per-query values over the ``k``
  last queries.

* A **provider** ``p`` tracks the intentions it expressed for the ``k``
  last queries *proposed* to it; its satisfaction (Definition 2) is the
  mean of ``(PPI_p[q] + 1) / 2`` over the subset ``SQ^k_p`` of those
  queries it actually *performed*, and 0 when it performed none of
  them.

Both notions live in [0, 1]; the closer to 1, the more satisfied the
participant.  Participants decide to stay or leave based on these
values (Scenario 2), which is why the model "may have a deep impact on
the system".

This module also implements the two companion notions from the SQLB
paper [12] that the demo paper mentions but does not restate:
*adequation* (how well the system could possibly serve the participant)
and *allocation satisfaction* (how close the mediator's allocation got
to that possible best).  They are reconstructions faithful to [12]'s
intent and are used by the analysis layer, never by the allocation
decision itself.

Both trackers keep *incremental* window aggregates: appends update
rolling sums in O(1) and reads are O(1), instead of re-summing the
whole window on every read.  Reads dominate writes system-wide (the
mediation hot loop reads one provider satisfaction per consulted
provider per query, churn checks and metric sweeps read every
participant), so this is the first layer of the hot-path engine.
Until the window wraps, the rolling sum accumulates in exactly the
order a left-to-right re-summation would, so values are bit-identical
to the naive form; once eviction starts, the sums are refreshed from
the window contents every ``memory`` evictions, which bounds
floating-point drift to a few ulps, and means are clamped into the
mathematically guaranteed [0, 1] range.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

#: Default length of the interaction window ("the k last interactions").
#: The paper assumes all participants use the same k for simplicity.
DEFAULT_MEMORY = 100

#: Satisfaction reported before any interaction happened.  The paper
#: leaves the cold-start value unspecified; 0.5 is the neutral midpoint
#: and keeps Equation 2's omega at 1/2 until evidence accumulates.
NEUTRAL_SATISFACTION = 0.5


def intention_to_unit(intention: float) -> float:
    """Map an intention in [-1, 1] to the unit interval: ``(i + 1) / 2``.

    This is the transformation applied inside Equation 1 and
    Definition 2.
    """
    if not -1.0 <= intention <= 1.0:
        raise ValueError(f"intention must be in [-1, 1], got {intention}")
    return (intention + 1.0) / 2.0


def consumer_query_satisfaction(
    performer_intentions: Iterable[float],
    n_results: int,
) -> float:
    """Equation 1: per-query satisfaction of a consumer.

    Parameters
    ----------
    performer_intentions:
        ``CI_q[p]`` for every provider ``p`` that performed ``q``
        (values in [-1, 1]).
    n_results:
        ``n``, the number of results the consumer required.  Dividing
        by ``n`` (not by the number of performers) means missing
        results -- fewer providers allocated than requested -- directly
        depress satisfaction.

    Returns
    -------
    float
        Value in [0, 1].  Allocating more than ``n`` providers cannot
        push it above 1 because the mediator allocates at most
        ``min(n, kn)``; the function still clamps defensively.
    """
    if n_results < 1:
        raise ValueError(f"n_results must be >= 1, got {n_results}")
    total = 0.0
    for intention in performer_intentions:
        total += intention_to_unit(intention)
    return min(1.0, total / n_results)


def adequation(candidate_intentions: Sequence[float], n_results: int) -> float:
    """Best per-query satisfaction achievable given the candidate set.

    Reconstruction of the *adequation* notion of [12]: the satisfaction
    Equation 1 would yield had the mediator allocated the ``n`` most
    wanted providers among those able to perform the query.  Used to
    normalise satisfaction into *allocation satisfaction* -- a mediator
    should not be blamed for an inadequate provider population.
    """
    if n_results < 1:
        raise ValueError(f"n_results must be >= 1, got {n_results}")
    best = sorted(candidate_intentions, reverse=True)[:n_results]
    return consumer_query_satisfaction(best, n_results)


def allocation_satisfaction(achieved: float, achievable: float) -> float:
    """How close the mediator got to the best possible allocation.

    Reconstruction of [12]'s allocation-satisfaction notion: the ratio
    of achieved per-query satisfaction to the adequation, clamped to
    [0, 1].  When nothing was achievable (adequation 0), the mediator
    is not at fault and the value is defined as 1.
    """
    if not 0.0 <= achieved <= 1.0:
        raise ValueError(f"achieved satisfaction must be in [0, 1], got {achieved}")
    if not 0.0 <= achievable <= 1.0:
        raise ValueError(f"achievable satisfaction must be in [0, 1], got {achievable}")
    if achievable == 0.0:
        return 1.0
    return min(1.0, achieved / achievable)


def _clamp_unit(value: float) -> float:
    """Clamp a rolling mean into [0, 1] (guards accumulated ulp drift)."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


class ConsumerSatisfactionTracker:
    """Definition 1: sliding-window mean of per-query satisfactions.

    The window holds the satisfactions of the ``k`` last queries the
    consumer issued (the set ``IQ^k_c``).  It also retains the matching
    adequation values so the analysis layer can compute long-run
    allocation satisfaction.

    All three window means (satisfaction, adequation, allocation
    satisfaction) are maintained as rolling sums, so reads -- the hot
    operation -- are O(1) regardless of the window length.
    """

    def __init__(self, memory: int = DEFAULT_MEMORY) -> None:
        if memory < 1:
            raise ValueError(f"memory must be >= 1, got {memory}")
        self.memory = memory
        self._satisfactions: Deque[float] = deque(maxlen=memory)
        self._adequations: Deque[float] = deque(maxlen=memory)
        self.total_recorded = 0
        self._sat_sum = 0.0
        self._adq_sum = 0.0
        self._ratio_sum = 0.0
        self._evictions_since_rebuild = 0

    def record_query(self, satisfaction: float, adequation_value: float = 1.0) -> None:
        """Record the outcome of one query (Equation 1 value + adequation)."""
        if not 0.0 <= satisfaction <= 1.0:
            raise ValueError(f"satisfaction must be in [0, 1], got {satisfaction}")
        if not 0.0 <= adequation_value <= 1.0:
            raise ValueError(f"adequation must be in [0, 1], got {adequation_value}")
        satisfactions = self._satisfactions
        if len(satisfactions) == self.memory:
            # The deques evict in lockstep; fold the departing entry out
            # of each rolling sum before folding the new one in.
            evicted_sat = satisfactions[0]
            evicted_adq = self._adequations[0]
            self._sat_sum -= evicted_sat
            self._adq_sum -= evicted_adq
            self._ratio_sum -= allocation_satisfaction(evicted_sat, evicted_adq)
            self._evictions_since_rebuild += 1
        satisfactions.append(satisfaction)
        self._adequations.append(adequation_value)
        self._sat_sum += satisfaction
        self._adq_sum += adequation_value
        self._ratio_sum += allocation_satisfaction(satisfaction, adequation_value)
        self.total_recorded += 1
        if self._evictions_since_rebuild >= self.memory:
            self._rebuild_sums()

    def _rebuild_sums(self) -> None:
        """Re-sum the window left-to-right, discarding rolling drift."""
        self._sat_sum = sum(self._satisfactions)
        self._adq_sum = sum(self._adequations)
        self._ratio_sum = sum(
            allocation_satisfaction(s, a)
            for s, a in zip(self._satisfactions, self._adequations)
        )
        self._evictions_since_rebuild = 0

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        """Long-run satisfaction delta_s(c); ``default`` before any query."""
        n = len(self._satisfactions)
        if not n:
            return default
        return _clamp_unit(self._sat_sum / n)

    def allocation_satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        """Long-run mean of per-query allocation satisfaction."""
        n = len(self._satisfactions)
        if not n:
            return default
        return _clamp_unit(self._ratio_sum / n)

    def adequation(self, default: float = NEUTRAL_SATISFACTION) -> float:
        """Long-run mean adequation of the system for this consumer."""
        n = len(self._adequations)
        if not n:
            return default
        return _clamp_unit(self._adq_sum / n)

    @property
    def observations(self) -> int:
        """Number of queries currently inside the window."""
        return len(self._satisfactions)

    def reset(self) -> None:
        """Forget the window (a rejoining participant starts afresh)."""
        self._satisfactions.clear()
        self._adequations.clear()
        self._sat_sum = 0.0
        self._adq_sum = 0.0
        self._ratio_sum = 0.0
        self._evictions_since_rebuild = 0

    def __repr__(self) -> str:
        return (
            f"ConsumerSatisfactionTracker(memory={self.memory}, "
            f"observations={self.observations}, "
            f"satisfaction={self.satisfaction():.3f})"
        )


class ProviderSatisfactionTracker:
    """Definition 2: satisfaction over the k last *proposed* queries.

    Every query the mediator proposes to the provider (for SbQA, every
    query for which the provider was in the consulted set ``Kn``; for
    direct-allocation baselines, every query it received) appends one
    entry ``(PPI_p[q], performed?)``.  Satisfaction is the mean of
    ``(PPI + 1) / 2`` over *performed* entries inside the window and
    exactly 0 when the window contains proposals but no performed query
    -- a provider that is consulted yet never chosen is maximally
    dissatisfied, which is what drives departure in Scenario 2.

    Window entries are plain ``(intention, performed)`` tuples -- not a
    named tuple -- so the fast engine's fused kernel can append them
    without a class ``__new__`` on the hottest write path; anything
    reading ``_proposals`` directly indexes positionally.
    """

    def __init__(self, memory: int = DEFAULT_MEMORY) -> None:
        if memory < 1:
            raise ValueError(f"memory must be >= 1, got {memory}")
        self.memory = memory
        self._proposals: Deque[Tuple[float, bool]] = deque(maxlen=memory)
        self.total_proposed = 0
        self.total_performed = 0
        self._performed_in_window = 0
        self._performed_unit_sum = 0.0
        self._evictions_since_rebuild = 0

    def record_proposal(self, intention: float, performed: bool) -> None:
        """Record one proposed query and whether this provider performs it."""
        if not -1.0 <= intention <= 1.0:
            raise ValueError(f"intention must be in [-1, 1], got {intention}")
        proposals = self._proposals
        if len(proposals) == self.memory:
            evicted = proposals[0]
            if evicted[1]:
                self._performed_in_window -= 1
                self._performed_unit_sum -= (evicted[0] + 1.0) / 2.0
            self._evictions_since_rebuild += 1
        proposals.append((intention, performed))
        self.total_proposed += 1
        if performed:
            self.total_performed += 1
            self._performed_in_window += 1
            self._performed_unit_sum += (intention + 1.0) / 2.0
        if self._evictions_since_rebuild >= self.memory:
            self._rebuild_sums()

    def _rebuild_sums(self) -> None:
        """Re-sum the performed window left-to-right, discarding drift."""
        self._performed_in_window = 0
        self._performed_unit_sum = 0.0
        for intention, performed in self._proposals:
            if performed:
                self._performed_in_window += 1
                self._performed_unit_sum += (intention + 1.0) / 2.0
        self._evictions_since_rebuild = 0

    def satisfaction(self, default: float = NEUTRAL_SATISFACTION) -> float:
        """delta_s(p) per Definition 2; ``default`` before any proposal."""
        if not self._proposals:
            return default
        performed = self._performed_in_window
        if not performed:
            return 0.0
        return _clamp_unit(self._performed_unit_sum / performed)

    def performed_fraction(self) -> float:
        """Share of window proposals the provider performed (diagnostic)."""
        if not self._proposals:
            return 0.0
        return self._performed_in_window / len(self._proposals)

    @property
    def observations(self) -> int:
        """Number of proposals currently inside the window."""
        return len(self._proposals)

    def window_entries(self) -> List[Tuple[float, bool]]:
        """Copy of the window contents (oldest first); used by analysis."""
        return list(self._proposals)

    def reset(self) -> None:
        """Forget the window (a rejoining participant starts afresh)."""
        self._proposals.clear()
        self._performed_in_window = 0
        self._performed_unit_sum = 0.0
        self._evictions_since_rebuild = 0

    def __repr__(self) -> str:
        return (
            f"ProviderSatisfactionTracker(memory={self.memory}, "
            f"observations={self.observations}, "
            f"satisfaction={self.satisfaction():.3f})"
        )
